"""Planar geometry primitives shared by all spatial indexes.

The metaverse twin model tracks entities in a 2-D plane (the paper's
exercises, malls, and city grids are all ground-plane scenarios); altitude,
where needed, rides in record payloads.  Points and boxes are immutable so
they can key dictionaries and live safely inside index nodes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.errors import ConfigurationError


@dataclass(frozen=True)
class Point:
    """A 2-D point."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        return Point(self.x + dx, self.y + dy)


@dataclass(frozen=True)
class BBox:
    """An axis-aligned bounding box, inclusive on all edges."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_min > self.x_max or self.y_min > self.y_max:
            raise ConfigurationError(f"degenerate bbox: {self}")

    @classmethod
    def from_points(cls, points: list[Point]) -> "BBox":
        if not points:
            raise ConfigurationError("cannot bound an empty point set")
        return cls(
            min(p.x for p in points),
            min(p.y for p in points),
            max(p.x for p in points),
            max(p.y for p in points),
        )

    @classmethod
    def around(cls, center: Point, radius: float) -> "BBox":
        """The square box circumscribing a radius-``radius`` disk."""
        if radius < 0:
            raise ConfigurationError("radius must be >= 0")
        return cls(
            center.x - radius, center.y - radius, center.x + radius, center.y + radius
        )

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.x_min + self.x_max) / 2, (self.y_min + self.y_max) / 2)

    def contains_point(self, point: Point) -> bool:
        return (
            self.x_min <= point.x <= self.x_max
            and self.y_min <= point.y <= self.y_max
        )

    def contains_box(self, other: "BBox") -> bool:
        return (
            self.x_min <= other.x_min
            and self.y_min <= other.y_min
            and self.x_max >= other.x_max
            and self.y_max >= other.y_max
        )

    def intersects(self, other: "BBox") -> bool:
        return not (
            other.x_min > self.x_max
            or other.x_max < self.x_min
            or other.y_min > self.y_max
            or other.y_max < self.y_min
        )

    def union(self, other: "BBox") -> "BBox":
        return BBox(
            min(self.x_min, other.x_min),
            min(self.y_min, other.y_min),
            max(self.x_max, other.x_max),
            max(self.y_max, other.y_max),
        )

    def enlargement(self, other: "BBox") -> float:
        """Area growth needed to also cover ``other`` (R-tree choose-leaf)."""
        return self.union(other).area - self.area

    def min_distance_to(self, point: Point) -> float:
        """Minimum distance from ``point`` to this box (0 if inside)."""
        dx = max(self.x_min - point.x, 0.0, point.x - self.x_max)
        dy = max(self.y_min - point.y, 0.0, point.y - self.y_max)
        return math.hypot(dx, dy)


@dataclass(frozen=True)
class Velocity:
    """A velocity vector in units per second."""

    vx: float
    vy: float

    @property
    def speed(self) -> float:
        return math.hypot(self.vx, self.vy)


def predicted_position(origin: Point, velocity: Velocity, dt: float) -> Point:
    """Linear dead-reckoning: where a mover will be after ``dt`` seconds."""
    return Point(origin.x + velocity.vx * dt, origin.y + velocity.vy * dt)

"""HDoV-style visibility tree for virtual walkthroughs (paper Sec. IV-F; [70], [71]).

In a virtual walkthrough only a tiny fraction of a large scene is visible at
any viewpoint, and distant objects can be rendered at coarse level-of-detail
(LOD).  The hierarchical degree-of-visibility tree couples a spatial
hierarchy (here a quadtree) with per-node visibility summaries so a
walkthrough client fetches only visible objects, each at the LOD its degree
of visibility warrants — cutting per-frame bytes by orders of magnitude
versus fetching the full scene (experiment E7).

Degree of visibility of an object at distance ``d`` is modelled as the
apparent size ``radius / d`` (clamped to 1), the standard projected-extent
proxy.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigurationError
from .geometry import BBox, Point
from ..obs.profiling import timed


@dataclass(frozen=True)
class SceneObject:
    """A renderable object with progressive LOD representations.

    ``lod_bytes`` lists the transfer size of each representation from
    coarsest (index 0) to finest; the finest is the "full fidelity" asset.
    """

    object_id: str
    position: Point
    radius: float
    lod_bytes: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ConfigurationError("object radius must be positive")
        if not self.lod_bytes or any(b <= 0 for b in self.lod_bytes):
            raise ConfigurationError("lod_bytes must be non-empty and positive")
        if list(self.lod_bytes) != sorted(self.lod_bytes):
            raise ConfigurationError("lod_bytes must be ascending (coarse to fine)")

    @property
    def finest_bytes(self) -> int:
        return self.lod_bytes[-1]


@dataclass(frozen=True)
class VisibleObject:
    """Query result: an object, its chosen LOD, and the transfer cost."""

    obj: SceneObject
    dov: float
    lod_level: int
    transfer_bytes: int


class _QuadNode:
    __slots__ = ("box", "objects", "children", "max_radius", "count")

    def __init__(self, box: BBox) -> None:
        self.box = box
        self.objects: list[SceneObject] = []
        self.children: list[_QuadNode] | None = None
        self.max_radius = 0.0  # visibility summary: largest object below
        self.count = 0


class HDoVTree:
    """Quadtree with degree-of-visibility pruning and LOD selection.

    ``dov_thresholds`` maps degree-of-visibility to LOD level: an object with
    DoV below ``dov_thresholds[0]`` is culled entirely; between thresholds
    ``i`` and ``i+1`` it is fetched at LOD ``i``; above the last threshold at
    the finest LOD.  Interior nodes store the max object radius beneath them,
    so whole subtrees whose *best possible* DoV is below the cull threshold
    are pruned without visiting their objects — the "hierarchical" in HDoV.
    """

    def __init__(
        self,
        domain: BBox,
        leaf_capacity: int = 16,
        dov_thresholds: tuple[float, ...] = (0.002, 0.01, 0.05),
        max_depth: int = 10,
    ) -> None:
        if leaf_capacity < 1:
            raise ConfigurationError("leaf_capacity must be >= 1")
        if not dov_thresholds or list(dov_thresholds) != sorted(dov_thresholds):
            raise ConfigurationError("dov_thresholds must be ascending, non-empty")
        self.domain = domain
        self.leaf_capacity = leaf_capacity
        self.dov_thresholds = dov_thresholds
        self.max_depth = max_depth
        self._root = _QuadNode(domain)
        self.nodes_visited = 0  # instrumentation for pruning assertions
        # Dynamic-scene support (the paper: "a more robust and dynamic
        # structure to cater to the frequent updates"): the tree stores
        # possibly-stale copies; ``_objects`` holds the live instance per id
        # and queries skip stale copies.  Rebuilds amortize the garbage.
        self._objects: dict[str, SceneObject] = {}
        self._stale = 0

    def __len__(self) -> int:
        return len(self._objects)

    # -- construction and updates -----------------------------------------------

    def insert(self, obj: SceneObject) -> None:
        if not self.domain.contains_point(obj.position):
            raise ConfigurationError(f"{obj.object_id} lies outside the domain")
        if obj.object_id in self._objects:
            raise ConfigurationError(f"duplicate object {obj.object_id!r}")
        self._objects[obj.object_id] = obj
        self._insert(self._root, obj, depth=0)

    def remove(self, object_id: str) -> None:
        """Remove an object (lazy: its tree copy becomes garbage)."""
        if object_id not in self._objects:
            raise ConfigurationError(f"unknown object {object_id!r}")
        del self._objects[object_id]
        self._stale += 1
        self._maybe_rebuild()

    def update_position(self, object_id: str, position: Point) -> None:
        """Move an object; O(log n) insert plus one unit of garbage."""
        current = self._objects.get(object_id)
        if current is None:
            raise ConfigurationError(f"unknown object {object_id!r}")
        if not self.domain.contains_point(position):
            raise ConfigurationError("new position outside the domain")
        moved = SceneObject(
            object_id=object_id,
            position=position,
            radius=current.radius,
            lod_bytes=current.lod_bytes,
        )
        self._objects[object_id] = moved
        self._insert(self._root, moved, depth=0)
        self._stale += 1
        self._maybe_rebuild()

    def _maybe_rebuild(self) -> None:
        if self._stale > max(16, len(self._objects) // 4):
            self.rebuild()

    def rebuild(self) -> None:
        """Rebuild the quadtree from the live object set."""
        self._root = _QuadNode(self.domain)
        self._stale = 0
        for obj in self._objects.values():
            self._insert(self._root, obj, depth=0)

    def _insert(self, node: _QuadNode, obj: SceneObject, depth: int) -> None:
        node.count += 1
        node.max_radius = max(node.max_radius, obj.radius)
        if node.children is None:
            node.objects.append(obj)
            if len(node.objects) > self.leaf_capacity and depth < self.max_depth:
                self._split(node, depth)
            return
        child = self._child_for(node, obj.position)
        self._insert(child, obj, depth + 1)

    def _split(self, node: _QuadNode, depth: int) -> None:
        box = node.box
        cx, cy = box.center.x, box.center.y
        node.children = [
            _QuadNode(BBox(box.x_min, box.y_min, cx, cy)),
            _QuadNode(BBox(cx, box.y_min, box.x_max, cy)),
            _QuadNode(BBox(box.x_min, cy, cx, box.y_max)),
            _QuadNode(BBox(cx, cy, box.x_max, box.y_max)),
        ]
        objects, node.objects = node.objects, []
        for obj in objects:
            child = self._child_for(node, obj.position)
            self._insert(child, obj, depth + 1)

    def _child_for(self, node: _QuadNode, point: Point) -> _QuadNode:
        assert node.children is not None
        cx, cy = node.box.center.x, node.box.center.y
        idx = (1 if point.x > cx else 0) + (2 if point.y > cy else 0)
        return node.children[idx]

    # -- visibility query -------------------------------------------------------

    @staticmethod
    def degree_of_visibility(obj_radius: float, distance: float) -> float:
        """Apparent size of a ``obj_radius`` object at ``distance``."""
        if distance <= obj_radius:
            return 1.0
        return min(1.0, obj_radius / distance)

    def _lod_for(self, dov: float, lod_count: int) -> int | None:
        """LOD level for a DoV, or None if culled."""
        if dov < self.dov_thresholds[0]:
            return None
        level = 0
        for threshold in self.dov_thresholds[1:]:
            if dov >= threshold:
                level += 1
        return min(level, lod_count - 1)

    @timed("spatial.hdov_query_visible")
    def query_visible(self, viewpoint: Point, view_radius: float) -> list[VisibleObject]:
        """Visible objects around ``viewpoint``, each with its chosen LOD."""
        if view_radius <= 0:
            raise ConfigurationError("view_radius must be positive")
        self.nodes_visited = 0
        out: list[VisibleObject] = []
        view_box = BBox.around(viewpoint, view_radius)
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.nodes_visited += 1
            if node.count == 0 or not node.box.intersects(view_box):
                continue
            # Hierarchical prune: even the largest object below this node,
            # at the node's closest approach, would fall under the cull DoV.
            nearest = node.box.min_distance_to(viewpoint)
            if nearest > 0:
                best_dov = self.degree_of_visibility(node.max_radius, nearest)
                if best_dov < self.dov_thresholds[0]:
                    continue
            if node.children is not None:
                stack.extend(node.children)
            for obj in node.objects:
                if self._objects.get(obj.object_id) is not obj:
                    continue  # stale copy of a moved/removed object
                distance = obj.position.distance_to(viewpoint)
                if distance > view_radius:
                    continue
                dov = self.degree_of_visibility(obj.radius, distance)
                level = self._lod_for(dov, len(obj.lod_bytes))
                if level is None:
                    continue
                out.append(
                    VisibleObject(
                        obj=obj,
                        dov=dov,
                        lod_level=level,
                        transfer_bytes=obj.lod_bytes[level],
                    )
                )
        return out

    def walkthrough_bytes(self, path: list[Point], view_radius: float) -> int:
        """Total transfer for a walkthrough, fetching deltas per step.

        An object already fetched at a given (or finer) LOD is not fetched
        again; moving closer upgrades pay only the finer level's bytes.
        """
        fetched: dict[str, int] = {}
        total = 0
        for viewpoint in path:
            for visible in self.query_visible(viewpoint, view_radius):
                have = fetched.get(visible.obj.object_id)
                if have is None or visible.lod_level > have:
                    total += visible.transfer_bytes
                    fetched[visible.obj.object_id] = visible.lod_level
        return total

    def full_scene_bytes(self) -> int:
        """Baseline: fetch every object at finest LOD (no visibility culling)."""
        return sum(obj.finest_bytes for obj in self._objects.values())

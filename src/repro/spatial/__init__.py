"""Spatial indexing: geometry, B+-tree, grid, R-tree, Bx moving-object
index, HDoV visibility tree, and trajectory storage."""

from .btree import BPlusTree, BTreeMultimap
from .bxtree import BxTree, interleave_bits
from .geometry import BBox, Point, Velocity, predicted_position
from .grid import GridIndex
from .hdov import HDoVTree, SceneObject, VisibleObject
from .rtree import RTree
from .trajectory import Trajectory, TrajectorySample, TrajectoryStore

__all__ = [
    "BBox",
    "BPlusTree",
    "BTreeMultimap",
    "BxTree",
    "GridIndex",
    "HDoVTree",
    "Point",
    "RTree",
    "SceneObject",
    "Trajectory",
    "TrajectorySample",
    "TrajectoryStore",
    "Velocity",
    "VisibleObject",
    "interleave_bits",
    "predicted_position",
]

"""Uniform grid index over points.

The workhorse for update-intensive location data: O(1) insert/remove/move
and region queries that touch only overlapping cells.  Used directly for
physical-space location streams and as the incremental substrate for moving
continuous queries (Sec. IV-G).
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Hashable, Iterator

from ..core.errors import ConfigurationError, KeyNotFoundError
from .geometry import BBox, Point

Cell = tuple[int, int]


class GridIndex:
    """A uniform grid mapping object ids to points."""

    def __init__(self, cell_size: float = 50.0) -> None:
        if cell_size <= 0:
            raise ConfigurationError("cell_size must be positive")
        self.cell_size = cell_size
        self._cells: dict[Cell, set[Hashable]] = defaultdict(set)
        self._positions: dict[Hashable, Point] = {}

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, object_id: Hashable) -> bool:
        return object_id in self._positions

    def cell_of(self, point: Point) -> Cell:
        return (
            math.floor(point.x / self.cell_size),
            math.floor(point.y / self.cell_size),
        )

    # -- mutation -------------------------------------------------------------

    def insert(self, object_id: Hashable, point: Point) -> None:
        if object_id in self._positions:
            self.move(object_id, point)
            return
        self._positions[object_id] = point
        self._cells[self.cell_of(point)].add(object_id)

    def move(self, object_id: Hashable, point: Point) -> None:
        """Update an object's position; cheap when it stays in its cell."""
        old = self._positions.get(object_id)
        if old is None:
            raise KeyNotFoundError(object_id)
        old_cell = self.cell_of(old)
        new_cell = self.cell_of(point)
        self._positions[object_id] = point
        if old_cell != new_cell:
            self._cells[old_cell].discard(object_id)
            if not self._cells[old_cell]:
                del self._cells[old_cell]
            self._cells[new_cell].add(object_id)

    def remove(self, object_id: Hashable) -> None:
        point = self._positions.pop(object_id, None)
        if point is None:
            raise KeyNotFoundError(object_id)
        cell = self.cell_of(point)
        self._cells[cell].discard(object_id)
        if not self._cells[cell]:
            del self._cells[cell]

    def position(self, object_id: Hashable) -> Point:
        try:
            return self._positions[object_id]
        except KeyError:
            raise KeyNotFoundError(object_id) from None

    # -- queries ----------------------------------------------------------------

    def _cells_overlapping(self, box: BBox) -> Iterator[Cell]:
        x0 = math.floor(box.x_min / self.cell_size)
        x1 = math.floor(box.x_max / self.cell_size)
        y0 = math.floor(box.y_min / self.cell_size)
        y1 = math.floor(box.y_max / self.cell_size)
        for cx in range(x0, x1 + 1):
            for cy in range(y0, y1 + 1):
                if (cx, cy) in self._cells:
                    yield (cx, cy)

    def query_range(self, box: BBox) -> list[Hashable]:
        """Object ids whose position lies inside ``box``."""
        out = []
        for cell in self._cells_overlapping(box):
            for object_id in self._cells[cell]:
                if box.contains_point(self._positions[object_id]):
                    out.append(object_id)
        return out

    def query_radius(self, center: Point, radius: float) -> list[Hashable]:
        """Object ids within ``radius`` of ``center``."""
        if radius < 0:
            raise ConfigurationError("radius must be >= 0")
        box = BBox.around(center, radius)
        out = []
        for cell in self._cells_overlapping(box):
            for object_id in self._cells[cell]:
                if self._positions[object_id].distance_to(center) <= radius:
                    out.append(object_id)
        return out

    def nearest(self, center: Point, k: int = 1) -> list[Hashable]:
        """The ``k`` nearest objects to ``center`` (expanding ring search)."""
        if k < 1:
            raise ConfigurationError("k must be >= 1")
        if not self._positions:
            return []
        # Expand the search radius ring by ring until k candidates are safe:
        # every object within distance r is found once the ring covers r.
        radius = self.cell_size
        while True:
            candidates = self.query_radius(center, radius)
            if len(candidates) >= k or radius > self._max_extent(center):
                candidates.sort(key=lambda oid: self._positions[oid].distance_to(center))
                return candidates[:k]
            radius *= 2

    def _max_extent(self, center: Point) -> float:
        """A radius guaranteed to cover every indexed object."""
        extent = 0.0
        for point in self._positions.values():
            extent = max(extent, point.distance_to(center))
        return extent + self.cell_size

    def objects_in_cell(self, cell: Cell) -> set[Hashable]:
        return set(self._cells.get(cell, set()))

    @property
    def occupied_cells(self) -> int:
        return len(self._cells)

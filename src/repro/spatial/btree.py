"""In-memory B+-tree.

The general ordered index the platform uses wherever sorted access matters:
it underlies the Bx-style moving-object index (:mod:`repro.spatial.bxtree`)
and is available directly for one-dimensional attributes.  Leaves are
chained for fast range scans, the property the paper's update-intensive
indexing discussion ([47], [22]) relies on.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterator

from ..core.errors import ConfigurationError, KeyNotFoundError


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.keys: list[Any] = []
        self.children: list[_Node] = []   # interior only
        self.values: list[Any] = []       # leaf only
        self.next_leaf: _Node | None = None


class BPlusTree:
    """A B+-tree mapping orderable keys to values.

    ``order`` is the maximum number of keys per node; nodes split at
    ``order + 1`` keys.  Duplicate keys overwrite (it is a map, not a
    multimap); use composite keys for multimap behaviour.
    """

    def __init__(self, order: int = 32) -> None:
        if order < 3:
            raise ConfigurationError("order must be >= 3")
        self.order = order
        self._root = _Node(is_leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # -- lookup -------------------------------------------------------------

    def _find_leaf(self, key: Any) -> _Node:
        node = self._root
        while not node.is_leaf:
            idx = bisect_right(node.keys, key)
            node = node.children[idx]
        return node

    def get(self, key: Any) -> Any:
        leaf = self._find_leaf(key)
        idx = bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        raise KeyNotFoundError(key)

    def get_or(self, key: Any, default: Any = None) -> Any:
        try:
            return self.get(key)
        except KeyNotFoundError:
            return default

    def __contains__(self, key: Any) -> bool:
        leaf = self._find_leaf(key)
        idx = bisect_left(leaf.keys, key)
        return idx < len(leaf.keys) and leaf.keys[idx] == key

    def range(self, lo: Any, hi: Any) -> Iterator[tuple[Any, Any]]:
        """Yield (key, value) with lo <= key <= hi in ascending key order."""
        leaf = self._find_leaf(lo)
        idx = bisect_left(leaf.keys, lo)
        while leaf is not None:
            while idx < len(leaf.keys):
                if leaf.keys[idx] > hi:
                    return
                yield leaf.keys[idx], leaf.values[idx]
                idx += 1
            leaf = leaf.next_leaf
            idx = 0

    def items(self) -> Iterator[tuple[Any, Any]]:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        while node is not None:
            yield from zip(node.keys, node.values)
            node = node.next_leaf

    def keys(self) -> Iterator[Any]:
        for key, _ in self.items():
            yield key

    # -- mutation -------------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        """Insert or overwrite ``key``."""
        root = self._root
        split = self._insert(root, key, value)
        if split is not None:
            sep_key, right = split
            new_root = _Node(is_leaf=False)
            new_root.keys = [sep_key]
            new_root.children = [root, right]
            self._root = new_root

    def _insert(self, node: _Node, key: Any, value: Any) -> tuple[Any, _Node] | None:
        if node.is_leaf:
            idx = bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                node.values[idx] = value
                return None
            node.keys.insert(idx, key)
            node.values.insert(idx, value)
            self._size += 1
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        idx = bisect_right(node.keys, key)
        split = self._insert(node.children[idx], key, value)
        if split is None:
            return None
        sep_key, right = split
        node.keys.insert(idx, sep_key)
        node.children.insert(idx + 1, right)
        if len(node.keys) > self.order:
            return self._split_interior(node)
        return None

    def _split_leaf(self, node: _Node) -> tuple[Any, _Node]:
        mid = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_interior(self, node: _Node) -> tuple[Any, _Node]:
        mid = len(node.keys) // 2
        sep_key = node.keys[mid]
        right = _Node(is_leaf=False)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep_key, right

    def delete(self, key: Any) -> None:
        """Remove ``key``; raises :class:`KeyNotFoundError` if absent.

        Deletion is lazy (no rebalancing): entries are removed from leaves
        and underfull nodes are tolerated.  Update-intensive moving-object
        workloads delete and reinsert constantly, and lazy deletion keeps
        those paths cheap; a full rebuild (``rebuilt()``) restores balance.
        """
        leaf = self._find_leaf(key)
        idx = bisect_left(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            raise KeyNotFoundError(key)
        leaf.keys.pop(idx)
        leaf.values.pop(idx)
        self._size -= 1

    def rebuilt(self) -> "BPlusTree":
        """A fresh, balanced tree with the same contents."""
        tree = BPlusTree(order=self.order)
        for key, value in self.items():
            tree.insert(key, value)
        return tree

    # -- introspection --------------------------------------------------------

    def depth(self) -> int:
        depth = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            depth += 1
        return depth


class BTreeMultimap:
    """A multimap built from a B+-tree with composite (key, seq) entries."""

    def __init__(self, order: int = 32) -> None:
        self._tree = BPlusTree(order=order)
        self._seq = 0

    def insert(self, key: Any, value: Any) -> None:
        self._tree.insert((key, self._seq), value)
        self._seq += 1

    def get_all(self, key: Any) -> list[Any]:
        return [v for _, v in self._tree.range((key, -1), (key, self._seq + 1))]

    def range(self, lo: Any, hi: Any) -> Iterator[tuple[Any, Any]]:
        for (key, _), value in self._tree.range((lo, -1), (hi, self._seq + 1)):
            yield key, value

    def remove(self, key: Any, value: Any) -> bool:
        """Remove one entry equal to (key, value); returns True if found."""
        for composite, candidate in list(self._tree.range((key, -1), (key, self._seq + 1))):
            if candidate == value:
                self._tree.delete(composite)
                return True
        return False

    def __len__(self) -> int:
        return len(self._tree)

"""Trajectory storage, interpolation, and simplification (paper Sec. IV-F).

"The metaverse would have a huge amount of trajectory and virtual
walkthrough data" — this module stores per-object time-ordered position
samples, answers time-slice and time-range queries with linear
interpolation, and compresses trajectories with Douglas-Peucker
simplification so storage grows with path complexity rather than sample
count.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Hashable

from ..core.errors import ConfigurationError, KeyNotFoundError
from .geometry import BBox, Point


@dataclass(frozen=True)
class TrajectorySample:
    """One (time, position) sample."""

    t: float
    point: Point


class Trajectory:
    """A time-ordered sequence of position samples for one object."""

    def __init__(self) -> None:
        self._times: list[float] = []
        self._points: list[Point] = []

    def __len__(self) -> int:
        return len(self._times)

    def append(self, t: float, point: Point) -> None:
        """Append a sample; timestamps must be strictly increasing."""
        if self._times and t <= self._times[-1]:
            raise ConfigurationError(
                f"samples must be strictly increasing in time ({t} <= {self._times[-1]})"
            )
        self._times.append(t)
        self._points.append(point)

    @property
    def start_time(self) -> float:
        if not self._times:
            raise ConfigurationError("empty trajectory")
        return self._times[0]

    @property
    def end_time(self) -> float:
        if not self._times:
            raise ConfigurationError("empty trajectory")
        return self._times[-1]

    def samples(self) -> list[TrajectorySample]:
        return [TrajectorySample(t, p) for t, p in zip(self._times, self._points)]

    def position_at(self, t: float) -> Point:
        """Linearly interpolated position at time ``t`` (clamped at ends)."""
        if not self._times:
            raise ConfigurationError("empty trajectory")
        if t <= self._times[0]:
            return self._points[0]
        if t >= self._times[-1]:
            return self._points[-1]
        idx = bisect_right(self._times, t)
        t0, t1 = self._times[idx - 1], self._times[idx]
        p0, p1 = self._points[idx - 1], self._points[idx]
        frac = (t - t0) / (t1 - t0)
        return Point(p0.x + frac * (p1.x - p0.x), p0.y + frac * (p1.y - p0.y))

    def slice(self, t_start: float, t_end: float) -> list[TrajectorySample]:
        """Samples with t_start <= t <= t_end."""
        if t_start > t_end:
            raise ConfigurationError("t_start must not exceed t_end")
        i = bisect_left(self._times, t_start)
        j = bisect_right(self._times, t_end)
        return [
            TrajectorySample(t, p)
            for t, p in zip(self._times[i:j], self._points[i:j])
        ]

    def length(self) -> float:
        """Total path length."""
        return sum(
            self._points[i].distance_to(self._points[i + 1])
            for i in range(len(self._points) - 1)
        )

    def simplified(self, tolerance: float) -> "Trajectory":
        """Douglas-Peucker simplification with perpendicular ``tolerance``."""
        if tolerance < 0:
            raise ConfigurationError("tolerance must be >= 0")
        if len(self._times) <= 2:
            out = Trajectory()
            for t, p in zip(self._times, self._points):
                out.append(t, p)
            return out
        keep = [False] * len(self._times)
        keep[0] = keep[-1] = True
        stack = [(0, len(self._times) - 1)]
        while stack:
            lo, hi = stack.pop()
            if hi <= lo + 1:
                continue
            worst_dist, worst_idx = -1.0, -1
            for idx in range(lo + 1, hi):
                dist = _perpendicular_distance(
                    self._points[idx], self._points[lo], self._points[hi]
                )
                if dist > worst_dist:
                    worst_dist, worst_idx = dist, idx
            if worst_dist > tolerance:
                keep[worst_idx] = True
                stack.append((lo, worst_idx))
                stack.append((worst_idx, hi))
        out = Trajectory()
        for flag, t, p in zip(keep, self._times, self._points):
            if flag:
                out.append(t, p)
        return out


def _perpendicular_distance(point: Point, start: Point, end: Point) -> float:
    dx, dy = end.x - start.x, end.y - start.y
    norm = (dx * dx + dy * dy) ** 0.5
    if norm == 0.0:
        return point.distance_to(start)
    return abs(dy * point.x - dx * point.y + end.x * start.y - end.y * start.x) / norm


class TrajectoryStore:
    """A collection of trajectories with cross-object spatio-temporal queries."""

    def __init__(self) -> None:
        self._trajectories: dict[Hashable, Trajectory] = {}

    def __len__(self) -> int:
        return len(self._trajectories)

    def __contains__(self, object_id: Hashable) -> bool:
        return object_id in self._trajectories

    def append(self, object_id: Hashable, t: float, point: Point) -> None:
        self._trajectories.setdefault(object_id, Trajectory()).append(t, point)

    def trajectory(self, object_id: Hashable) -> Trajectory:
        try:
            return self._trajectories[object_id]
        except KeyError:
            raise KeyNotFoundError(object_id) from None

    def objects_in_region_during(
        self, box: BBox, t_start: float, t_end: float
    ) -> list[Hashable]:
        """Objects with at least one sample inside ``box`` during the window."""
        out = []
        for object_id, trajectory in self._trajectories.items():
            if any(
                box.contains_point(sample.point)
                for sample in trajectory.slice(t_start, t_end)
            ):
                out.append(object_id)
        return out

    def positions_at(self, t: float) -> dict[Hashable, Point]:
        """Interpolated positions of all objects active at time ``t``."""
        out: dict[Hashable, Point] = {}
        for object_id, trajectory in self._trajectories.items():
            if len(trajectory) and trajectory.start_time <= t <= trajectory.end_time:
                out[object_id] = trajectory.position_at(t)
        return out

    def total_samples(self) -> int:
        return sum(len(t) for t in self._trajectories.values())

    def simplified(self, tolerance: float) -> "TrajectoryStore":
        out = TrajectoryStore()
        for object_id, trajectory in self._trajectories.items():
            out._trajectories[object_id] = trajectory.simplified(tolerance)
        return out

"""Bx-style moving-object index (paper Sec. IV-F; [47], [22]).

A B+-tree over space-filling-curve keys with time-phased labels, in the
spirit of the Bx-tree of Jensen, Lin and Ooi: each moving object is indexed
at the position *predicted for its phase's label timestamp* using a Z-order
(Morton) key, so position updates are plain B+-tree delete/insert — the
property that makes the structure update-intensive-friendly, unlike R-tree
maintenance.  Range queries enlarge the search window by the maximum object
speed times the time gap to each phase's label timestamp, probe the covered
curve cells, and filter candidates at their dead-reckoned positions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable

from ..core.errors import ConfigurationError, KeyNotFoundError
from .btree import BPlusTree
from .geometry import BBox, Point, Velocity, predicted_position


def interleave_bits(x: int, y: int, bits: int) -> int:
    """Morton/Z-order interleave of two ``bits``-bit integers."""
    z = 0
    for i in range(bits):
        z |= ((x >> i) & 1) << (2 * i)
        z |= ((y >> i) & 1) << (2 * i + 1)
    return z


@dataclass
class _MotionState:
    point: Point
    velocity: Velocity
    update_time: float
    phase: int
    key: tuple[int, int, Hashable]


class BxTree:
    """Moving-object index over Z-order keys with time-phased labels.

    Parameters
    ----------
    domain:
        The spatial extent being indexed; positions outside are clamped.
    resolution_bits:
        The curve grid is ``2^resolution_bits`` cells per axis.
    phase_interval:
        Label timestamps are the phase boundaries ``k * phase_interval``;
        an update at time t is indexed at the *next* boundary.
    max_speed:
        Upper bound on object speed, used to enlarge query windows.
    """

    def __init__(
        self,
        domain: BBox,
        resolution_bits: int = 8,
        phase_interval: float = 30.0,
        max_speed: float = 10.0,
        order: int = 64,
    ) -> None:
        if not 2 <= resolution_bits <= 16:
            raise ConfigurationError("resolution_bits must be in [2, 16]")
        if phase_interval <= 0 or max_speed < 0:
            raise ConfigurationError("invalid phase_interval/max_speed")
        self.domain = domain
        self.resolution_bits = resolution_bits
        self.cells_per_axis = 1 << resolution_bits
        self.phase_interval = phase_interval
        self.max_speed = max_speed
        self._tree = BPlusTree(order=order)
        self._objects: dict[Hashable, _MotionState] = {}
        self._phase_counts: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, object_id: Hashable) -> bool:
        return object_id in self._objects

    # -- key computation ------------------------------------------------------

    def _cell(self, point: Point) -> tuple[int, int]:
        fx = (point.x - self.domain.x_min) / max(self.domain.width, 1e-12)
        fy = (point.y - self.domain.y_min) / max(self.domain.height, 1e-12)
        cx = min(self.cells_per_axis - 1, max(0, int(fx * self.cells_per_axis)))
        cy = min(self.cells_per_axis - 1, max(0, int(fy * self.cells_per_axis)))
        return cx, cy

    def _zvalue(self, point: Point) -> int:
        cx, cy = self._cell(point)
        return interleave_bits(cx, cy, self.resolution_bits)

    def _phase_of(self, timestamp: float) -> int:
        return int(math.ceil(timestamp / self.phase_interval))

    def _label_time(self, phase: int) -> float:
        return phase * self.phase_interval

    # -- updates --------------------------------------------------------------

    def update(
        self,
        object_id: Hashable,
        point: Point,
        velocity: Velocity,
        now: float,
    ) -> None:
        """Insert or refresh an object's motion state at time ``now``."""
        if velocity.speed > self.max_speed * (1 + 1e-9):
            raise ConfigurationError(
                f"object speed {velocity.speed:.3f} exceeds max_speed {self.max_speed}"
            )
        if object_id in self._objects:
            self._delete_entry(object_id)
        phase = self._phase_of(now)
        label_pos = predicted_position(point, velocity, self._label_time(phase) - now)
        key = (phase, self._zvalue(label_pos), object_id)
        state = _MotionState(point, velocity, now, phase, key)
        self._tree.insert(key, state)
        self._objects[object_id] = state
        self._phase_counts[phase] = self._phase_counts.get(phase, 0) + 1

    def remove(self, object_id: Hashable) -> None:
        if object_id not in self._objects:
            raise KeyNotFoundError(object_id)
        self._delete_entry(object_id)

    def _delete_entry(self, object_id: Hashable) -> None:
        state = self._objects.pop(object_id)
        self._tree.delete(state.key)
        self._phase_counts[state.phase] -= 1
        if self._phase_counts[state.phase] == 0:
            del self._phase_counts[state.phase]

    def position_at(self, object_id: Hashable, t: float) -> Point:
        """Dead-reckoned position of ``object_id`` at time ``t``."""
        state = self._objects.get(object_id)
        if state is None:
            raise KeyNotFoundError(object_id)
        return predicted_position(state.point, state.velocity, t - state.update_time)

    # -- queries ------------------------------------------------------------------

    def query_range(self, box: BBox, t: float) -> list[Hashable]:
        """Objects whose dead-reckoned position at time ``t`` is inside ``box``."""
        results: list[Hashable] = []
        seen: set[Hashable] = set()
        for phase in list(self._phase_counts):
            dt = abs(self._label_time(phase) - t)
            margin = self.max_speed * dt
            enlarged = BBox(
                box.x_min - margin,
                box.y_min - margin,
                box.x_max + margin,
                box.y_max + margin,
            )
            for object_id, state in self._probe_phase(phase, enlarged):
                if object_id in seen:
                    continue
                pos = predicted_position(
                    state.point, state.velocity, t - state.update_time
                )
                if box.contains_point(pos):
                    seen.add(object_id)
                    results.append(object_id)
        return results

    def _probe_phase(self, phase: int, box: BBox) -> list[tuple[Hashable, _MotionState]]:
        """Probe every curve cell overlapping ``box`` within one phase."""
        lo_cx, lo_cy = self._cell(Point(box.x_min, box.y_min))
        hi_cx, hi_cy = self._cell(Point(box.x_max, box.y_max))
        out: list[tuple[Hashable, _MotionState]] = []
        for cx in range(lo_cx, hi_cx + 1):
            for cy in range(lo_cy, hi_cy + 1):
                z = interleave_bits(cx, cy, self.resolution_bits)
                lo_key = (phase, z, _MIN_ID)
                hi_key = (phase, z, _MAX_ID)
                for key, state in self._tree.range(lo_key, hi_key):
                    out.append((key[2], state))
        return out

    @property
    def active_phases(self) -> list[int]:
        return sorted(self._phase_counts)


class _MinId:
    """Sorts before every object id."""

    def __lt__(self, other: object) -> bool:
        return True

    def __gt__(self, other: object) -> bool:
        return False


class _MaxId:
    """Sorts after every object id."""

    def __lt__(self, other: object) -> bool:
        return False

    def __gt__(self, other: object) -> bool:
        return True


_MIN_ID = _MinId()
_MAX_ID = _MaxId()

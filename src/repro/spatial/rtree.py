"""R-tree with quadratic split (Guttman).

The read-optimized spatial index: good at static range and nearest-neighbour
queries over rectangles, but expensive under the update-intensive workloads
the paper highlights (Sec. IV-F) — experiment E6 quantifies exactly that
trade-off against the grid and Bx-style indexes.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any

from ..core.errors import ConfigurationError, KeyNotFoundError
from .geometry import BBox, Point
from ..obs.profiling import timed


class _Entry:
    __slots__ = ("box", "child", "object_id")

    def __init__(self, box: BBox, child: "_RNode | None" = None, object_id: Any = None):
        self.box = box
        self.child = child
        self.object_id = object_id


class _RNode:
    __slots__ = ("entries", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.entries: list[_Entry] = []

    def bbox(self) -> BBox:
        box = self.entries[0].box
        for entry in self.entries[1:]:
            box = box.union(entry.box)
        return box


class RTree:
    """An R-tree mapping object ids to bounding boxes."""

    def __init__(self, max_entries: int = 8) -> None:
        if max_entries < 4:
            raise ConfigurationError("max_entries must be >= 4")
        self.max_entries = max_entries
        self.min_entries = max(2, max_entries // 2)
        self._root = _RNode(is_leaf=True)
        self._size = 0
        self._boxes: dict[Any, BBox] = {}

    def __len__(self) -> int:
        return self._size

    def __contains__(self, object_id: Any) -> bool:
        return object_id in self._boxes

    # -- insertion ------------------------------------------------------------

    def insert(self, object_id: Any, box: BBox) -> None:
        if object_id in self._boxes:
            self.remove(object_id)
        self._boxes[object_id] = box
        entry = _Entry(box, object_id=object_id)
        split = self._insert(self._root, entry)
        if split is not None:
            left, right = split
            new_root = _RNode(is_leaf=False)
            new_root.entries = [
                _Entry(left.bbox(), child=left),
                _Entry(right.bbox(), child=right),
            ]
            self._root = new_root
        self._size += 1

    def insert_point(self, object_id: Any, point: Point) -> None:
        self.insert(object_id, BBox(point.x, point.y, point.x, point.y))

    def _insert(self, node: _RNode, entry: _Entry) -> tuple[_RNode, _RNode] | None:
        if node.is_leaf:
            node.entries.append(entry)
        else:
            best = min(
                node.entries,
                key=lambda e: (e.box.enlargement(entry.box), e.box.area),
            )
            assert best.child is not None
            split = self._insert(best.child, entry)
            best.box = best.box.union(entry.box)
            if split is not None:
                left, right = split
                node.entries.remove(best)
                node.entries.append(_Entry(left.bbox(), child=left))
                node.entries.append(_Entry(right.bbox(), child=right))
        if len(node.entries) > self.max_entries:
            return self._quadratic_split(node)
        return None

    def _quadratic_split(self, node: _RNode) -> tuple[_RNode, _RNode]:
        entries = node.entries
        # Pick the pair wasting the most area as seeds.
        worst, seeds = -1.0, (0, 1)
        for i, j in itertools.combinations(range(len(entries)), 2):
            waste = (
                entries[i].box.union(entries[j].box).area
                - entries[i].box.area
                - entries[j].box.area
            )
            if waste > worst:
                worst, seeds = waste, (i, j)
        left = _RNode(is_leaf=node.is_leaf)
        right = _RNode(is_leaf=node.is_leaf)
        left.entries.append(entries[seeds[0]])
        right.entries.append(entries[seeds[1]])
        remaining = [e for idx, e in enumerate(entries) if idx not in seeds]
        for pos, entry in enumerate(remaining):
            unassigned = len(remaining) - pos
            # Force assignment when a side needs every remaining entry to
            # reach min_entries.
            if len(left.entries) + unassigned <= self.min_entries:
                left.entries.append(entry)
                continue
            if len(right.entries) + unassigned <= self.min_entries:
                right.entries.append(entry)
                continue
            growth_l = left.bbox().enlargement(entry.box)
            growth_r = right.bbox().enlargement(entry.box)
            if growth_l < growth_r or (
                growth_l == growth_r and len(left.entries) <= len(right.entries)
            ):
                left.entries.append(entry)
            else:
                right.entries.append(entry)
        return left, right

    # -- removal ----------------------------------------------------------------

    def remove(self, object_id: Any) -> None:
        """Remove by id; reinserts orphaned entries (condense-tree)."""
        box = self._boxes.pop(object_id, None)
        if box is None:
            raise KeyNotFoundError(object_id)
        orphans: list[_Entry] = []
        removed = self._remove(self._root, object_id, box, orphans)
        if not removed:  # pragma: no cover - defensive, box map keeps us honest
            raise KeyNotFoundError(object_id)
        self._size -= 1
        if not self._root.is_leaf and len(self._root.entries) == 1:
            child = self._root.entries[0].child
            if child is not None:
                self._root = child
        for orphan in orphans:
            if orphan.object_id is not None:
                self._boxes.pop(orphan.object_id, None)
                self._size -= 1
                self.insert(orphan.object_id, orphan.box)

    def _remove(
        self, node: _RNode, object_id: Any, box: BBox, orphans: list[_Entry]
    ) -> bool:
        if node.is_leaf:
            for entry in node.entries:
                if entry.object_id == object_id:
                    node.entries.remove(entry)
                    return True
            return False
        for entry in list(node.entries):
            if entry.box.intersects(box) and entry.child is not None:
                if self._remove(entry.child, object_id, box, orphans):
                    if len(entry.child.entries) < self.min_entries and entry.child.is_leaf:
                        orphans.extend(entry.child.entries)
                        node.entries.remove(entry)
                    elif entry.child.entries:
                        entry.box = entry.child.bbox()
                    else:
                        node.entries.remove(entry)
                    return True
        return False

    # -- queries ------------------------------------------------------------------

    @timed("spatial.rtree_query_range")
    def query_range(self, box: BBox) -> list[Any]:
        """Object ids whose boxes intersect ``box``."""
        out: list[Any] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                if entry.box.intersects(box):
                    if node.is_leaf:
                        out.append(entry.object_id)
                    elif entry.child is not None:
                        stack.append(entry.child)
        return out

    @timed("spatial.rtree_nearest")
    def nearest(self, point: Point, k: int = 1) -> list[Any]:
        """Best-first k-nearest-neighbour search."""
        if k < 1:
            raise ConfigurationError("k must be >= 1")
        counter = itertools.count()
        heap: list[tuple[float, int, _RNode | None, Any]] = [
            (0.0, next(counter), self._root, None)
        ]
        found: list[Any] = []
        while heap and len(found) < k:
            dist, _, node, object_id = heapq.heappop(heap)
            if node is None:
                found.append(object_id)
                continue
            for entry in node.entries:
                d = entry.box.min_distance_to(point)
                if node.is_leaf:
                    heapq.heappush(heap, (d, next(counter), None, entry.object_id))
                else:
                    heapq.heappush(heap, (d, next(counter), entry.child, None))
        return found

    def bbox_of(self, object_id: Any) -> BBox:
        try:
            return self._boxes[object_id]
        except KeyError:
            raise KeyNotFoundError(object_id) from None

    def depth(self) -> int:
        depth = 1
        node = self._root
        while not node.is_leaf:
            assert node.entries[0].child is not None
            node = node.entries[0].child
            depth += 1
        return depth

    @classmethod
    def bulk_load(cls, items: list[tuple[Any, BBox]], max_entries: int = 8) -> "RTree":
        """Sort-tile-recursive-flavoured bulk load (x then y ordering)."""
        tree = cls(max_entries=max_entries)
        ordered = sorted(items, key=lambda kv: (kv[1].center.x, kv[1].center.y))
        for object_id, box in ordered:
            tree.insert(object_id, box)
        return tree

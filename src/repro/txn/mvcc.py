"""Multi-version concurrency control with snapshot isolation.

The cloud layer of the disaggregated architecture (paper Fig. 7) runs
"transaction/query executors"; this module provides their concurrency
control.  Readers never block: each transaction reads the committed state
as of its begin timestamp.  Writers buffer locally and commit under
first-committer-wins — a concurrent committed write to the same key aborts
the later transaction with :class:`WriteConflictError`, giving snapshot
isolation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterator

from ..core.errors import KeyNotFoundError, TransactionAborted, WriteConflictError
from ..core.metrics import MetricsRegistry
from ..obs.tracing import NoopTracer, Tracer

_DELETED = object()


@dataclass
class _Version:
    commit_ts: int
    value: Any  # _DELETED marks a deleted version


class MVStore:
    """Versioned key-value state shared by transactions."""

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self._versions: dict[str, list[_Version]] = {}
        self._commit_counter = itertools.count(1)
        self.last_commit_ts = 0
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NoopTracer()

    # -- version access -----------------------------------------------------

    def read_at(self, key: str, snapshot_ts: int) -> Any:
        """Latest committed value for ``key`` visible at ``snapshot_ts``."""
        for version in reversed(self._versions.get(key, [])):
            if version.commit_ts <= snapshot_ts:
                if version.value is _DELETED:
                    raise KeyNotFoundError(key)
                return version.value
        raise KeyNotFoundError(key)

    def exists_at(self, key: str, snapshot_ts: int) -> bool:
        try:
            self.read_at(key, snapshot_ts)
        except KeyNotFoundError:
            return False
        return True

    def latest_commit_of(self, key: str) -> int:
        """Commit timestamp of the newest version of ``key`` (0 if none)."""
        versions = self._versions.get(key)
        return versions[-1].commit_ts if versions else 0

    def scan_at(self, snapshot_ts: int) -> Iterator[tuple[str, Any]]:
        """All live (key, value) pairs at ``snapshot_ts``, sorted by key."""
        for key in sorted(self._versions):
            try:
                yield key, self.read_at(key, snapshot_ts)
            except KeyNotFoundError:
                continue

    # -- commit ------------------------------------------------------------

    def apply_commit(self, writes: dict[str, Any], deletes: set[str]) -> int:
        """Install a write set atomically; returns the new commit ts."""
        commit_ts = next(self._commit_counter)
        self.last_commit_ts = commit_ts
        for key, value in writes.items():
            self._versions.setdefault(key, []).append(_Version(commit_ts, value))
        for key in deletes:
            self._versions.setdefault(key, []).append(_Version(commit_ts, _DELETED))
        self.metrics.counter("mvcc.commits").inc()
        return commit_ts

    def vacuum(self, horizon_ts: int) -> int:
        """Drop versions unreadable by any snapshot >= ``horizon_ts``.

        For each key, every version except the newest one at-or-below the
        horizon can be discarded.  Returns the number of versions removed.
        """
        removed = 0
        for key, versions in list(self._versions.items()):
            keep_from = 0
            for idx, version in enumerate(versions):
                if version.commit_ts <= horizon_ts:
                    keep_from = idx
            kept = versions[keep_from:]
            # A sole deleted version below the horizon can vanish entirely.
            if len(kept) == 1 and kept[0].value is _DELETED and kept[0].commit_ts <= horizon_ts:
                removed += len(versions)
                del self._versions[key]
                continue
            removed += len(versions) - len(kept)
            self._versions[key] = kept
        return removed

    def version_count(self) -> int:
        return sum(len(v) for v in self._versions.values())


class Transaction:
    """A snapshot-isolation transaction over an :class:`MVStore`."""

    def __init__(self, store: MVStore, txn_id: int, snapshot_ts: int) -> None:
        self.store = store
        self.txn_id = txn_id
        self.snapshot_ts = snapshot_ts
        self.writes: dict[str, Any] = {}
        self.deletes: set[str] = set()
        self.read_keys: set[str] = set()
        self.status = "active"

    def _check_active(self) -> None:
        if self.status != "active":
            raise TransactionAborted(f"transaction {self.txn_id} is {self.status}")

    def read(self, key: str) -> Any:
        """Read ``key``: own writes first, then the snapshot."""
        self._check_active()
        self.read_keys.add(key)
        if key in self.writes:
            return self.writes[key]
        if key in self.deletes:
            raise KeyNotFoundError(key)
        return self.store.read_at(key, self.snapshot_ts)

    def read_or(self, key: str, default: Any = None) -> Any:
        try:
            return self.read(key)
        except KeyNotFoundError:
            return default

    def write(self, key: str, value: Any) -> None:
        self._check_active()
        self.deletes.discard(key)
        self.writes[key] = value

    def delete(self, key: str) -> None:
        self._check_active()
        self.writes.pop(key, None)
        self.deletes.add(key)

    @property
    def write_set(self) -> set[str]:
        return set(self.writes) | self.deletes


class TransactionManager:
    """Hands out transactions and enforces first-committer-wins at commit.

    ``metrics``/``tracer`` follow the repo-wide injection convention; when
    a store is constructed here they are passed through so that conflict
    counters land in the caller's registry instead of a private one.
    """

    def __init__(
        self,
        store: MVStore | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.store = store if store is not None else MVStore(metrics=metrics)
        self.metrics = metrics if metrics is not None else self.store.metrics
        self.tracer = tracer if tracer is not None else NoopTracer()
        self._txn_ids = itertools.count(1)
        self.aborts = 0
        self.commits = 0

    def begin(self) -> Transaction:
        return Transaction(
            self.store, next(self._txn_ids), self.store.last_commit_ts
        )

    def commit(self, txn: Transaction) -> int:
        """Commit ``txn``; raises :class:`WriteConflictError` on conflict."""
        with self.tracer.span("txn.commit"):
            if txn.status != "active":
                raise TransactionAborted(
                    f"transaction {txn.txn_id} is {txn.status}"
                )
            for key in txn.write_set:
                if self.store.latest_commit_of(key) > txn.snapshot_ts:
                    self.abort(txn)
                    self.store.metrics.counter("mvcc.conflicts").inc()
                    raise WriteConflictError(
                        f"txn {txn.txn_id}: key {key!r} modified since snapshot"
                    )
            commit_ts = self.store.apply_commit(txn.writes, txn.deletes)
            txn.status = "committed"
            self.commits += 1
            return commit_ts

    def abort(self, txn: Transaction) -> None:
        if txn.status == "active":
            txn.status = "aborted"
            self.aborts += 1

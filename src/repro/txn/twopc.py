"""Two-phase commit over the simulated network (paper Sec. IV-E1).

Decentralized metaverse databases need distributed transactions across data
centers; the paper notes they are "hard to process at scale ... due to the
network partition and non-negligible inter-data-center network latency".
This module implements the canonical blocking 2PC protocol over
:class:`~repro.net.simnet.SimulatedNetwork`, so experiments can measure
exactly that latency cost (message rounds x inter-DC RTT) and observe abort
behaviour under participant failure and partitions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from ..core.errors import TransactionAborted
from ..net.simnet import Message, SimulatedNetwork
from ..resilience.policies import Timeout

_txn_ids = itertools.count(1)


@dataclass
class DistributedTxn:
    """A transaction writing key -> value at multiple participants."""

    writes_by_participant: dict[str, dict[str, Any]]
    txn_id: int = field(default_factory=lambda: next(_txn_ids))


@dataclass
class TxnOutcome:
    txn_id: int
    committed: bool
    reason: str = ""
    prepare_latency: float = 0.0
    total_latency: float = 0.0


class Participant:
    """A resource manager holding a local key-value state.

    ``fail_prepares`` makes the participant vote NO (simulating a local
    integrity failure); ``crashed`` makes it silent (simulating a crash),
    which stalls the coordinator until its timeout.
    """

    def __init__(self, network: SimulatedNetwork, name: str) -> None:
        self.name = name
        self.network = network
        self.node = network.add_node(name)
        self.data: dict[str, Any] = {}
        self._staged: dict[int, Any] = {}  # txn_id -> staged resource
        self.fail_prepares = False
        self.crashed = False
        self.node.on("2pc.prepare", self._on_prepare)
        self.node.on("2pc.commit", self._on_commit)
        self.node.on("2pc.abort", self._on_abort)

    def _on_prepare(self, message: Message) -> None:
        if self.crashed:
            return
        txn_id = message.payload["txn_id"]
        writes = message.payload["writes"]
        if self.fail_prepares:
            vote = False
        else:
            vote = self._stage(txn_id, writes)
        self.node.send(
            message.src,
            "2pc.vote",
            {"txn_id": txn_id, "participant": self.name, "vote": vote},
        )

    def _on_commit(self, message: Message) -> None:
        if self.crashed:
            return
        txn_id = message.payload["txn_id"]
        staged = self._staged.pop(txn_id, None)
        if staged is not None:
            self._apply(txn_id, staged)
        self.node.send(message.src, "2pc.ack", {"txn_id": txn_id})

    def _on_abort(self, message: Message) -> None:
        if self.crashed:
            return
        txn_id = message.payload["txn_id"]
        staged = self._staged.pop(txn_id, None)
        if staged is not None:
            self._release(txn_id, staged)
        self.node.send(message.src, "2pc.ack", {"txn_id": txn_id})

    # -- resource-manager hooks (overridden by richer participants) --------

    def _stage(self, txn_id: int, writes: dict[str, Any]) -> bool:
        """Validate and stage a write set; the return value is the vote.

        The base participant is a plain dict store and always votes yes;
        subclasses (e.g. the cluster's shard participant) override the
        stage/apply/release trio to bind phase 1 and phase 2 to a real
        resource manager while inheriting the protocol driver unchanged.
        """
        self._staged[txn_id] = writes
        return True

    def _apply(self, txn_id: int, staged: Any) -> None:
        """Make a staged write set durable (phase-2 commit)."""
        self.data.update(staged)

    def _release(self, txn_id: int, staged: Any) -> None:
        """Undo a staged write set (phase-2 abort)."""

    @property
    def staged_count(self) -> int:
        return len(self._staged)


class Coordinator:
    """Drives 2PC rounds; one instance can coordinate many transactions."""

    def __init__(
        self,
        network: SimulatedNetwork,
        name: str = "coordinator",
        timeout_s: float = 5.0,
    ) -> None:
        self.name = name
        self.network = network
        self.node = network.add_node(name)
        self.timeout = Timeout(timeout_s)
        self.timeout_s = timeout_s
        self._votes: dict[int, dict[str, bool]] = {}
        self._acks: dict[int, set[str]] = {}
        self.node.on("2pc.vote", self._on_vote)
        self.node.on("2pc.ack", self._on_ack)
        self.outcomes: dict[int, TxnOutcome] = {}

    def _on_vote(self, message: Message) -> None:
        payload = message.payload
        self._votes.setdefault(payload["txn_id"], {})[payload["participant"]] = payload[
            "vote"
        ]

    def _on_ack(self, message: Message) -> None:
        self._acks.setdefault(message.payload["txn_id"], set()).add(message.src)

    def execute(self, txn: DistributedTxn) -> TxnOutcome:
        """Run the full protocol to completion on the shared scheduler.

        The call drives the event scheduler; when it returns, the decision
        has been made and (for reachable participants) applied.
        """
        scheduler = self.network.scheduler
        start = scheduler.clock.now
        participants = list(txn.writes_by_participant)
        self._votes[txn.txn_id] = {}
        self._acks[txn.txn_id] = set()

        # Phase 1: prepare.
        unreachable: list[str] = []
        for participant in participants:
            try:
                self.node.send(
                    participant,
                    "2pc.prepare",
                    {
                        "txn_id": txn.txn_id,
                        "writes": txn.writes_by_participant[participant],
                    },
                )
            except TransactionAborted:  # pragma: no cover - defensive
                unreachable.append(participant)
            except Exception:
                unreachable.append(participant)
        guard = self.timeout.guard(scheduler.clock, label="2pc.prepare")
        while (
            len(self._votes[txn.txn_id]) < len(participants) - len(unreachable)
            and not guard.expired
            and scheduler.next_event_time is not None
        ):
            scheduler.run_until(min(guard.at, scheduler.next_event_time))
        if guard.expired and len(self._votes[txn.txn_id]) < len(participants) - len(
            unreachable
        ):
            self.network.metrics.counter("twopc.prepare_timeouts").inc()
        prepare_latency = scheduler.clock.now - start

        votes = self._votes[txn.txn_id]
        all_yes = (
            not unreachable
            and len(votes) == len(participants)
            and all(votes.values())
        )

        # Phase 2: decision.
        decision_topic = "2pc.commit" if all_yes else "2pc.abort"
        for participant in participants:
            try:
                self.node.send(participant, decision_topic, {"txn_id": txn.txn_id})
            except Exception:
                pass
        guard = self.timeout.guard(scheduler.clock, label="2pc.decision")
        while (
            len(self._acks[txn.txn_id]) < len(participants)
            and not guard.expired
            and scheduler.next_event_time is not None
        ):
            scheduler.run_until(min(guard.at, scheduler.next_event_time))
        if guard.expired and len(self._acks[txn.txn_id]) < len(participants):
            self.network.metrics.counter("twopc.decision_timeouts").inc()

        reason = ""
        if not all_yes:
            if unreachable:
                reason = f"unreachable: {sorted(unreachable)}"
            elif len(votes) < len(participants):
                reason = "prepare timeout"
            else:
                noes = sorted(p for p, v in votes.items() if not v)
                reason = f"voted no: {noes}"
        outcome = TxnOutcome(
            txn_id=txn.txn_id,
            committed=all_yes,
            reason=reason,
            prepare_latency=prepare_latency,
            total_latency=scheduler.clock.now - start,
        )
        self.outcomes[txn.txn_id] = outcome
        return outcome

"""Transactions: MVCC snapshot isolation, 2PL locking, two-phase commit."""

from .locks import LockManager, LockMode
from .mvcc import MVStore, Transaction, TransactionManager
from .twopc import Coordinator, DistributedTxn, Participant, TxnOutcome

__all__ = [
    "Coordinator",
    "DistributedTxn",
    "LockManager",
    "LockMode",
    "MVStore",
    "Participant",
    "Transaction",
    "TransactionManager",
    "TxnOutcome",
]

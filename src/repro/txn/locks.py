"""Two-phase-locking lock manager with deadlock detection.

Strict 2PL is the alternative concurrency-control discipline offered by the
platform (MVCC being the other).  The lock table supports shared and
exclusive modes with upgrades; a waits-for graph is maintained and checked
on every blocked request, and a cycle aborts the *requesting* transaction
with :class:`DeadlockError` (the simplest deterministic victim policy).

The manager is simulation-friendly: "blocking" is explicit — a request
either grants immediately, or registers a wait and reports it, letting the
discrete-event caller decide what to do.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field

from ..core.errors import DeadlockError


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


@dataclass
class _LockState:
    holders: dict[int, LockMode] = field(default_factory=dict)
    waiters: list[tuple[int, LockMode]] = field(default_factory=list)


class LockManager:
    """Lock table keyed by resource name."""

    def __init__(self) -> None:
        self._locks: dict[str, _LockState] = defaultdict(_LockState)
        self._held_by_txn: dict[int, set[str]] = defaultdict(set)
        self.deadlocks_detected = 0

    # -- compatibility ------------------------------------------------------

    @staticmethod
    def _compatible(requested: LockMode, held: LockMode) -> bool:
        return requested is LockMode.SHARED and held is LockMode.SHARED

    def _can_grant(self, state: _LockState, txn_id: int, mode: LockMode) -> bool:
        for holder, held_mode in state.holders.items():
            if holder == txn_id:
                continue
            if not self._compatible(mode, held_mode):
                return False
        return True

    # -- acquire / release ----------------------------------------------------

    def acquire(self, txn_id: int, resource: str, mode: LockMode) -> bool:
        """Try to take ``resource`` in ``mode``.

        Returns True if granted.  If the request must wait, it is queued and
        False is returned — unless waiting would create a deadlock, in which
        case :class:`DeadlockError` is raised and nothing is queued.
        """
        state = self._locks[resource]
        current = state.holders.get(txn_id)
        if current is not None:
            if current is mode or current is LockMode.EXCLUSIVE:
                return True  # re-entrant / already stronger
            # Upgrade S -> X: grantable only if sole holder.
            if len(state.holders) == 1:
                state.holders[txn_id] = LockMode.EXCLUSIVE
                return True
        if self._can_grant(state, txn_id, mode) and not self._blocking_waiters(
            state, txn_id
        ):
            state.holders[txn_id] = self._strongest(current, mode)
            self._held_by_txn[txn_id].add(resource)
            return True
        # Would wait: check the waits-for graph with this edge added.
        blockers = self._blockers_of(state, txn_id, mode)
        if self._would_deadlock(txn_id, blockers):
            self.deadlocks_detected += 1
            raise DeadlockError(
                f"txn {txn_id} waiting on {resource!r} would deadlock"
            )
        state.waiters.append((txn_id, mode))
        return False

    @staticmethod
    def _strongest(current: LockMode | None, requested: LockMode) -> LockMode:
        if current is LockMode.EXCLUSIVE or requested is LockMode.EXCLUSIVE:
            return LockMode.EXCLUSIVE
        return LockMode.SHARED

    def _blocking_waiters(self, state: _LockState, txn_id: int) -> bool:
        """FIFO fairness: exclusive waiters block new shared grants."""
        return any(
            mode is LockMode.EXCLUSIVE and waiter != txn_id
            for waiter, mode in state.waiters
        )

    def _blockers_of(
        self, state: _LockState, txn_id: int, mode: LockMode
    ) -> set[int]:
        blockers = {
            holder
            for holder, held in state.holders.items()
            if holder != txn_id and not self._compatible(mode, held)
        }
        blockers |= {
            waiter
            for waiter, wmode in state.waiters
            if waiter != txn_id and wmode is LockMode.EXCLUSIVE
        }
        return blockers

    def release_all(self, txn_id: int) -> list[tuple[int, str]]:
        """Release every lock of ``txn_id``; grant eligible waiters.

        Returns the (txn_id, resource) pairs that were granted as a result,
        so the caller can resume those transactions.
        """
        granted: list[tuple[int, str]] = []
        for resource in list(self._held_by_txn.pop(txn_id, set())):
            state = self._locks[resource]
            state.holders.pop(txn_id, None)
            granted.extend(self._grant_waiters(resource))
        # Also drop any queued waits of this transaction.
        for state in self._locks.values():
            state.waiters = [(t, m) for t, m in state.waiters if t != txn_id]
        return granted

    def _grant_waiters(self, resource: str) -> list[tuple[int, str]]:
        state = self._locks[resource]
        granted = []
        while state.waiters:
            txn_id, mode = state.waiters[0]
            if not self._can_grant(state, txn_id, mode):
                break
            state.waiters.pop(0)
            state.holders[txn_id] = self._strongest(state.holders.get(txn_id), mode)
            self._held_by_txn[txn_id].add(resource)
            granted.append((txn_id, resource))
            if mode is LockMode.EXCLUSIVE:
                break
        return granted

    # -- deadlock detection ------------------------------------------------------

    def _wait_edges(self) -> dict[int, set[int]]:
        """Current waits-for graph: waiter -> holders/earlier-waiters."""
        edges: dict[int, set[int]] = defaultdict(set)
        for state in self._locks.values():
            for waiter, mode in state.waiters:
                edges[waiter] |= self._blockers_of(state, waiter, mode)
        return edges

    def _would_deadlock(self, txn_id: int, new_blockers: set[int]) -> bool:
        """Does adding edges txn_id -> new_blockers close a cycle?"""
        edges = self._wait_edges()
        edges[txn_id] = set(edges[txn_id]) | new_blockers
        # DFS from each blocker looking for a path back to txn_id.
        stack = list(new_blockers)
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if node == txn_id:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(edges.get(node, ()))
        return False

    # -- introspection ---------------------------------------------------------

    def holders_of(self, resource: str) -> dict[int, LockMode]:
        return dict(self._locks[resource].holders)

    def waiters_of(self, resource: str) -> list[tuple[int, LockMode]]:
        return list(self._locks[resource].waiters)

    def locks_held(self, txn_id: int) -> set[str]:
        return set(self._held_by_txn.get(txn_id, set()))

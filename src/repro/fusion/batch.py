"""Columnar observations for vectorized truth fusion (ROADMAP item 2).

:class:`ObservationBatch` is the fusion-side twin of
:class:`~repro.core.columns.RecordBatch`: one tick of *numeric* sensor
claims as parallel arrays.  :meth:`TruthFusion.fuse_batch
<repro.fusion.fuser.TruthFusion.fuse_batch>` runs the same iterative
trust-weighted EM loop as the per-record :meth:`fuse
<repro.fusion.fuser.TruthFusion.fuse>` but with every per-observation
step — weighting, per-group accumulation, agreement counting, trust
re-estimation — as ``numpy`` kernels over these columns.

The accumulation order is engineered to match the per-record path
bit-for-bit: observations keep their arrival order, ``np.bincount`` adds
each group's terms in exactly the sequence the Python loop would, and
scalar formulas reuse the same expressions — so ``fuse_batch`` returns
*equal* :class:`~repro.fusion.fuser.FusedValue` objects, not merely close
ones (asserted in ``tests/test_batch_hotpath.py``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.errors import ConfigurationError
from .sources import Observation


class ObservationBatch:
    """Numeric observations as parallel columns.

    ``entity_ids``/``attributes``/``sources`` are per-row string lists;
    ``values``/``confidences``/``timestamps`` are float64 arrays.  Only
    numeric claims columnarize — categorical fusion stays on the
    per-record path, which remains fully supported.
    """

    __slots__ = ("entity_ids", "attributes", "values", "sources",
                 "confidences", "timestamps")

    def __init__(
        self,
        entity_ids: Sequence[str],
        attributes: Sequence[str],
        values: np.ndarray | Sequence[float],
        sources: Sequence[str],
        timestamps: np.ndarray | Sequence[float] | None = None,
        confidences: np.ndarray | Sequence[float] | None = None,
    ) -> None:
        self.entity_ids = list(entity_ids)
        n = len(self.entity_ids)
        self.attributes = list(attributes)
        self.sources = list(sources)
        self.values = np.asarray(values, dtype=np.float64)
        self.timestamps = (
            np.zeros(n) if timestamps is None
            else np.asarray(timestamps, dtype=np.float64)
        )
        self.confidences = (
            np.ones(n) if confidences is None
            else np.asarray(confidences, dtype=np.float64)
        )
        for name, column in (
            ("attributes", self.attributes), ("values", self.values),
            ("sources", self.sources), ("timestamps", self.timestamps),
            ("confidences", self.confidences),
        ):
            if len(column) != n:
                raise ConfigurationError(f"{name} length mismatch")

    def __len__(self) -> int:
        return len(self.entity_ids)

    @classmethod
    def from_observations(
        cls, observations: Sequence[Observation]
    ) -> "ObservationBatch":
        """Columnarize numeric observations (order preserved)."""
        for obs in observations:
            if isinstance(obs.value, bool) or not isinstance(
                obs.value, (int, float)
            ):
                raise ConfigurationError(
                    "only numeric observations columnarize; fuse "
                    "categorical claims through the per-record path"
                )
        return cls(
            entity_ids=[o.entity_id for o in observations],
            attributes=[o.attribute for o in observations],
            values=[float(o.value) for o in observations],
            sources=[o.source for o in observations],
            timestamps=[o.timestamp for o in observations],
            confidences=[o.confidence for o in observations],
        )

    def to_observations(self) -> list[Observation]:
        """Expand into per-record form (the equivalence baseline)."""
        return [
            Observation(
                entity_id=e, attribute=a, value=v, source=s,
                timestamp=t, confidence=c,
            )
            for e, a, v, s, t, c in zip(
                self.entity_ids, self.attributes, self.values.tolist(),
                self.sources, self.timestamps.tolist(),
                self.confidences.tolist(),
            )
        ]

    # -- encoding -----------------------------------------------------------

    def group_codes(self) -> tuple[np.ndarray, list[tuple[str, str]]]:
        """Dense (entity, attribute) codes in first-appearance order —
        the same order the per-record path's ``defaultdict`` grouping
        produces, so downstream accumulators see identical sequences."""
        index: dict[tuple[str, str], int] = {}
        codes = np.empty(len(self.entity_ids), dtype=np.intp)
        for i, key in enumerate(zip(self.entity_ids, self.attributes)):
            code = index.get(key)
            if code is None:
                code = index.setdefault(key, len(index))
            codes[i] = code
        return codes, list(index)

    def source_codes(self) -> tuple[np.ndarray, list[str]]:
        """Dense source codes in first-appearance order."""
        index: dict[str, int] = {}
        codes = np.empty(len(self.sources), dtype=np.intp)
        for i, source in enumerate(self.sources):
            code = index.get(source)
            if code is None:
                code = index.setdefault(source, len(index))
            codes[i] = code
        return codes, list(index)

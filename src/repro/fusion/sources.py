"""Heterogeneous observation sources (paper Sec. IV-A, Fig. 6).

The library scenario: "information from both video camera and RFID readers
will be needed to ensure that the location of books are represented
accurately in the digital space", plus web reviews for enrichment.  Each
source here emits :class:`Observation` objects about entities, with a
source-specific noise model:

* :class:`RfidSource` — missed reads (false negatives), duplicate reads,
  and occasional cross-reads from adjacent antennas ([32], [46], [78]);
* :class:`VideoSource` — detections with a confusion matrix (an entity may
  be recognized as a similar one) and confidence scores;
* :class:`GpsSource` — Gaussian position noise and dropout;
* :class:`ReviewSource` — subjective text-derived ratings with per-reviewer
  bias.

All of this substitutes for real sensor hardware; the noise models are the
standard ones from the RFID-cleaning literature the paper cites, so the
downstream cleaning/fusion code paths are exercised faithfully.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from ..core.errors import ConfigurationError


@dataclass(frozen=True)
class Observation:
    """One source's claim about one entity attribute at one time."""

    entity_id: str
    attribute: str
    value: Any
    source: str
    timestamp: float
    confidence: float = 1.0


@dataclass
class GroundTruth:
    """The simulation's actual world state, used to score fusion accuracy."""

    locations: dict[str, str] = field(default_factory=dict)   # entity -> zone
    ratings: dict[str, float] = field(default_factory=dict)   # entity -> true score


class RfidSource:
    """Zone-level presence observations from RFID readers.

    Each ``read_cycle`` polls every entity: a tag in zone Z is reported with
    probability ``read_rate`` (missed otherwise), duplicated with
    probability ``dup_rate``, and mis-attributed to an adjacent zone with
    probability ``cross_read_rate``.
    """

    def __init__(
        self,
        name: str,
        zones: list[str],
        read_rate: float = 0.8,
        dup_rate: float = 0.1,
        cross_read_rate: float = 0.05,
        seed: int = 0,
    ) -> None:
        if not zones:
            raise ConfigurationError("need at least one zone")
        for rate in (read_rate, dup_rate, cross_read_rate):
            if not 0 <= rate <= 1:
                raise ConfigurationError("rates must be in [0, 1]")
        self.name = name
        self.zones = list(zones)
        self.read_rate = read_rate
        self.dup_rate = dup_rate
        self.cross_read_rate = cross_read_rate
        self._rng = random.Random(seed)

    def read_cycle(self, truth: GroundTruth, now: float) -> list[Observation]:
        out: list[Observation] = []
        for entity, zone in truth.locations.items():
            if self._rng.random() >= self.read_rate:
                continue  # missed read
            reported = zone
            if self._rng.random() < self.cross_read_rate:
                reported = self._adjacent_zone(zone)
            observation = Observation(
                entity_id=entity,
                attribute="location",
                value=reported,
                source=self.name,
                timestamp=now,
                confidence=0.9,
            )
            out.append(observation)
            if self._rng.random() < self.dup_rate:
                out.append(observation)
        return out

    def _adjacent_zone(self, zone: str) -> str:
        idx = self.zones.index(zone) if zone in self.zones else 0
        neighbors = [
            self.zones[i]
            for i in (idx - 1, idx + 1)
            if 0 <= i < len(self.zones) and self.zones[i] != zone
        ]
        return self._rng.choice(neighbors) if neighbors else zone


class VideoSource:
    """Zone-level detections from cameras with identity confusion.

    A camera observes a zone; each entity there is detected with
    ``detect_rate`` and, when detected, identified correctly with
    probability ``1 - confusion_rate`` (otherwise reported as a random other
    entity).  Confidence reflects the source's calibrated accuracy.
    """

    def __init__(
        self,
        name: str,
        detect_rate: float = 0.9,
        confusion_rate: float = 0.1,
        seed: int = 1,
    ) -> None:
        self.name = name
        self.detect_rate = detect_rate
        self.confusion_rate = confusion_rate
        self._rng = random.Random(seed)

    def observe(self, truth: GroundTruth, now: float) -> list[Observation]:
        entities = list(truth.locations)
        out: list[Observation] = []
        for entity, zone in truth.locations.items():
            if self._rng.random() >= self.detect_rate:
                continue
            reported_entity = entity
            confidence = 0.85
            if entities and self._rng.random() < self.confusion_rate:
                reported_entity = self._rng.choice(entities)
                confidence = 0.5
            out.append(
                Observation(
                    entity_id=reported_entity,
                    attribute="location",
                    value=zone,
                    source=self.name,
                    timestamp=now,
                    confidence=confidence,
                )
            )
        return out


class GpsSource:
    """Numeric position observations with Gaussian noise and dropout."""

    def __init__(
        self, name: str, sigma: float = 3.0, dropout: float = 0.05, seed: int = 2
    ) -> None:
        if sigma < 0 or not 0 <= dropout <= 1:
            raise ConfigurationError("invalid sigma/dropout")
        self.name = name
        self.sigma = sigma
        self.dropout = dropout
        self._rng = random.Random(seed)

    def observe_positions(
        self, positions: dict[str, tuple[float, float]], now: float
    ) -> list[Observation]:
        out = []
        for entity, (x, y) in positions.items():
            if self._rng.random() < self.dropout:
                continue
            out.append(
                Observation(
                    entity_id=entity,
                    attribute="position",
                    value=(
                        x + self._rng.gauss(0, self.sigma),
                        y + self._rng.gauss(0, self.sigma),
                    ),
                    source=self.name,
                    timestamp=now,
                    confidence=0.8,
                )
            )
        return out


class ReviewSource:
    """Subjective ratings: true score plus reviewer bias plus noise."""

    def __init__(self, name: str, bias: float = 0.0, sigma: float = 0.5, seed: int = 3) -> None:
        self.name = name
        self.bias = bias
        self.sigma = sigma
        self._rng = random.Random(seed)

    def review(self, truth: GroundTruth, now: float) -> list[Observation]:
        out = []
        for entity, score in truth.ratings.items():
            noisy = max(1.0, min(5.0, score + self.bias + self._rng.gauss(0, self.sigma)))
            out.append(
                Observation(
                    entity_id=entity,
                    attribute="rating",
                    value=noisy,
                    source=self.name,
                    timestamp=now,
                    confidence=0.6,
                )
            )
        return out

"""Truth inference over conflicting multi-source claims (paper Sec. IV-A).

"Fusion of information on a single entity requires a substantial amount of
inference over semantics that are extracted from multiple data sources."

Given cleaned observations, :class:`TruthFusion` resolves, per
(entity, attribute), a single fused value:

* categorical attributes — confidence-weighted voting with iterative source
  trustworthiness re-estimation (a TruthFinder-style EM loop: sources that
  agree with the consensus gain weight, so a systematically wrong source is
  discounted even if prolific);
* numeric attributes — trust-weighted mean with the same re-estimation,
  using agreement within a tolerance band.

Baselines for experiment E13: :func:`majority_vote` (unweighted) and
:func:`single_source` (best single source).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any

from ..core.errors import ConfigurationError, FusionError
from ..obs.profiling import timed
from .sources import Observation


@dataclass
class FusedValue:
    """The fused estimate for one (entity, attribute)."""

    entity_id: str
    attribute: str
    value: Any
    support: float        # total trust mass behind the winning value
    contributors: int     # observations that agreed


def _is_numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


class TruthFusion:
    """Iterative trust-weighted fusion engine."""

    def __init__(
        self,
        iterations: int = 5,
        numeric_tolerance: float = 1.0,
        initial_trust: float = 0.8,
    ) -> None:
        if iterations < 1:
            raise ConfigurationError("iterations must be >= 1")
        if numeric_tolerance < 0:
            raise ConfigurationError("numeric_tolerance must be >= 0")
        self.iterations = iterations
        self.numeric_tolerance = numeric_tolerance
        self.initial_trust = initial_trust
        self.source_trust: dict[str, float] = {}

    # -- public API -----------------------------------------------------------

    @timed("fusion.fuse")
    def fuse(self, observations: list[Observation]) -> dict[tuple[str, str], FusedValue]:
        """Fuse all observations; returns {(entity, attribute): FusedValue}."""
        if not observations:
            return {}
        groups: dict[tuple[str, str], list[Observation]] = defaultdict(list)
        sources = set()
        for obs in observations:
            groups[(obs.entity_id, obs.attribute)].append(obs)
            sources.add(obs.source)
        trust = {s: self.initial_trust for s in sources}
        fused: dict[tuple[str, str], FusedValue] = {}
        for _ in range(self.iterations):
            fused = {
                key: self._fuse_group(key, group, trust)
                for key, group in groups.items()
            }
            trust = self._reestimate_trust(groups, fused, trust)
        self.source_trust = trust
        return fused

    def fuse_one(self, observations: list[Observation]) -> FusedValue:
        """Fuse observations that all concern one (entity, attribute)."""
        fused = self.fuse(observations)
        if len(fused) != 1:
            raise FusionError(
                f"expected one (entity, attribute) group, got {len(fused)}"
            )
        return next(iter(fused.values()))

    # -- internals ---------------------------------------------------------------

    def _fuse_group(
        self,
        key: tuple[str, str],
        group: list[Observation],
        trust: dict[str, float],
    ) -> FusedValue:
        entity_id, attribute = key
        if all(_is_numeric(obs.value) for obs in group):
            weight_sum = 0.0
            value_sum = 0.0
            for obs in group:
                weight = trust[obs.source] * obs.confidence
                weight_sum += weight
                value_sum += weight * float(obs.value)
            value = value_sum / max(weight_sum, 1e-12)
            agreeing = sum(
                1
                for obs in group
                if abs(float(obs.value) - value) <= self.numeric_tolerance
            )
            return FusedValue(entity_id, attribute, value, weight_sum, agreeing)
        votes: dict[Any, float] = defaultdict(float)
        counts: dict[Any, int] = defaultdict(int)
        for obs in group:
            votes[obs.value] += trust[obs.source] * obs.confidence
            counts[obs.value] += 1
        winner = max(votes.items(), key=lambda kv: kv[1])
        return FusedValue(entity_id, attribute, winner[0], winner[1], counts[winner[0]])

    def _reestimate_trust(
        self,
        groups: dict[tuple[str, str], list[Observation]],
        fused: dict[tuple[str, str], FusedValue],
        trust: dict[str, float],
    ) -> dict[str, float]:
        agree: dict[str, float] = defaultdict(float)
        total: dict[str, float] = defaultdict(float)
        for key, group in groups.items():
            consensus = fused[key].value
            for obs in group:
                total[obs.source] += 1.0
                if _is_numeric(obs.value) and _is_numeric(consensus):
                    if abs(float(obs.value) - float(consensus)) <= self.numeric_tolerance:
                        agree[obs.source] += 1.0
                elif obs.value == consensus:
                    agree[obs.source] += 1.0
        new_trust = {}
        for source in trust:
            if total[source] == 0:
                new_trust[source] = trust[source]
            else:
                # Laplace-smoothed agreement rate, floored to keep every
                # source minimally audible.
                rate = (agree[source] + 1.0) / (total[source] + 2.0)
                new_trust[source] = max(0.05, rate)
        return new_trust


def majority_vote(observations: list[Observation]) -> dict[tuple[str, str], Any]:
    """Baseline: unweighted plurality per (entity, attribute)."""
    groups: dict[tuple[str, str], list[Any]] = defaultdict(list)
    for obs in observations:
        groups[(obs.entity_id, obs.attribute)].append(obs.value)
    out = {}
    for key, values in groups.items():
        if all(_is_numeric(v) for v in values):
            out[key] = sum(float(v) for v in values) / len(values)
        else:
            out[key] = max(set(values), key=values.count)
    return out


def single_source(
    observations: list[Observation], source: str
) -> dict[tuple[str, str], Any]:
    """Baseline: believe one source only (its last claim per entity/attr)."""
    out: dict[tuple[str, str], Any] = {}
    for obs in sorted(
        (o for o in observations if o.source == source), key=lambda o: o.timestamp
    ):
        out[(obs.entity_id, obs.attribute)] = obs.value
    return out


def accuracy_against_truth(
    fused: dict[tuple[str, str], Any],
    truth: dict[str, Any],
    attribute: str,
    numeric_tolerance: float = 1.0,
) -> float:
    """Fraction of entities whose fused ``attribute`` matches ground truth."""
    if not truth:
        raise FusionError("empty ground truth")
    correct = 0
    for entity, true_value in truth.items():
        value = fused.get((entity, attribute))
        if isinstance(value, FusedValue):
            value = value.value
        if value is None:
            continue
        if _is_numeric(true_value) and _is_numeric(value):
            correct += int(abs(float(value) - float(true_value)) <= numeric_tolerance)
        else:
            correct += int(value == true_value)
    return correct / len(truth)

"""Truth inference over conflicting multi-source claims (paper Sec. IV-A).

"Fusion of information on a single entity requires a substantial amount of
inference over semantics that are extracted from multiple data sources."

Given cleaned observations, :class:`TruthFusion` resolves, per
(entity, attribute), a single fused value:

* categorical attributes — confidence-weighted voting with iterative source
  trustworthiness re-estimation (a TruthFinder-style EM loop: sources that
  agree with the consensus gain weight, so a systematically wrong source is
  discounted even if prolific);
* numeric attributes — trust-weighted mean with the same re-estimation,
  using agreement within a tolerance band.

Baselines for experiment E13: :func:`majority_vote` (unweighted) and
:func:`single_source` (best single source).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from ..core.errors import ConfigurationError, FusionError
from ..obs.profiling import timed
from .sources import Observation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .batch import ObservationBatch


@dataclass
class FusedValue:
    """The fused estimate for one (entity, attribute)."""

    entity_id: str
    attribute: str
    value: Any
    support: float        # total trust mass behind the winning value
    contributors: int     # observations that agreed


def _is_numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


class TruthFusion:
    """Iterative trust-weighted fusion engine."""

    def __init__(
        self,
        iterations: int = 5,
        numeric_tolerance: float = 1.0,
        initial_trust: float = 0.8,
    ) -> None:
        if iterations < 1:
            raise ConfigurationError("iterations must be >= 1")
        if numeric_tolerance < 0:
            raise ConfigurationError("numeric_tolerance must be >= 0")
        self.iterations = iterations
        self.numeric_tolerance = numeric_tolerance
        self.initial_trust = initial_trust
        self.source_trust: dict[str, float] = {}

    # -- public API -----------------------------------------------------------

    @timed("fusion.fuse")
    def fuse(self, observations: list[Observation]) -> dict[tuple[str, str], FusedValue]:
        """Fuse all observations; returns {(entity, attribute): FusedValue}."""
        if not observations:
            return {}
        groups: dict[tuple[str, str], list[Observation]] = defaultdict(list)
        sources = set()
        for obs in observations:
            groups[(obs.entity_id, obs.attribute)].append(obs)
            sources.add(obs.source)
        trust = {s: self.initial_trust for s in sources}
        fused: dict[tuple[str, str], FusedValue] = {}
        for _ in range(self.iterations):
            fused = {
                key: self._fuse_group(key, group, trust)
                for key, group in groups.items()
            }
            trust = self._reestimate_trust(groups, fused, trust)
        self.source_trust = trust
        return fused

    @timed("fusion.fuse_batch")
    def fuse_batch(
        self, batch: "ObservationBatch"
    ) -> dict[tuple[str, str], FusedValue]:
        """Vectorized :meth:`fuse` over a columnar numeric batch.

        Runs the same EM loop with numpy kernels: per-observation weights
        in one multiply, per-group sums via ``np.bincount`` (which adds
        each group's terms in arrival order, exactly like the Python
        accumulator), agreement counting as one comparison, and trust
        re-estimation as two bincounts.  Returns *equal*
        :class:`FusedValue` objects to ``fuse(batch.to_observations())``
        — same floats, not merely close ones — so callers can mix paths.
        """
        if len(batch) == 0:
            return {}
        group_codes, group_keys = batch.group_codes()
        source_codes, source_names = batch.source_codes()
        n_groups = len(group_keys)
        n_sources = len(source_names)
        values = batch.values
        confidences = batch.confidences
        trust = np.full(n_sources, self.initial_trust, dtype=np.float64)
        total = np.bincount(source_codes, minlength=n_sources).astype(
            np.float64
        )
        fused_values = np.zeros(n_groups)
        weight_sums = np.zeros(n_groups)
        for _ in range(self.iterations):
            weights = trust[source_codes] * confidences
            weight_sums = np.bincount(
                group_codes, weights=weights, minlength=n_groups
            )
            value_sums = np.bincount(
                group_codes, weights=weights * values, minlength=n_groups
            )
            fused_values = value_sums / np.maximum(weight_sums, 1e-12)
            agrees = (
                np.abs(values - fused_values[group_codes])
                <= self.numeric_tolerance
            )
            agree = np.bincount(
                source_codes, weights=agrees.astype(np.float64),
                minlength=n_sources,
            )
            # Same Laplace-smoothed agreement rate as _reestimate_trust;
            # every source in the batch has total >= 1 by construction.
            trust = np.maximum(0.05, (agree + 1.0) / (total + 2.0))
        contributors = np.bincount(
            group_codes,
            weights=(
                np.abs(values - fused_values[group_codes])
                <= self.numeric_tolerance
            ).astype(np.float64),
            minlength=n_groups,
        )
        self.source_trust = {
            name: float(trust[i]) for i, name in enumerate(source_names)
        }
        fused_list = fused_values.tolist()
        support_list = weight_sums.tolist()
        contributor_list = contributors.tolist()
        return {
            key: FusedValue(
                key[0], key[1], fused_list[g], support_list[g],
                int(contributor_list[g]),
            )
            for g, key in enumerate(group_keys)
        }

    def fuse_one(self, observations: list[Observation]) -> FusedValue:
        """Fuse observations that all concern one (entity, attribute)."""
        fused = self.fuse(observations)
        if len(fused) != 1:
            raise FusionError(
                f"expected one (entity, attribute) group, got {len(fused)}"
            )
        return next(iter(fused.values()))

    # -- internals ---------------------------------------------------------------

    def _fuse_group(
        self,
        key: tuple[str, str],
        group: list[Observation],
        trust: dict[str, float],
    ) -> FusedValue:
        entity_id, attribute = key
        if all(_is_numeric(obs.value) for obs in group):
            weight_sum = 0.0
            value_sum = 0.0
            for obs in group:
                weight = trust[obs.source] * obs.confidence
                weight_sum += weight
                value_sum += weight * float(obs.value)
            value = value_sum / max(weight_sum, 1e-12)
            agreeing = sum(
                1
                for obs in group
                if abs(float(obs.value) - value) <= self.numeric_tolerance
            )
            return FusedValue(entity_id, attribute, value, weight_sum, agreeing)
        votes: dict[Any, float] = defaultdict(float)
        counts: dict[Any, int] = defaultdict(int)
        for obs in group:
            votes[obs.value] += trust[obs.source] * obs.confidence
            counts[obs.value] += 1
        winner = max(votes.items(), key=lambda kv: kv[1])
        return FusedValue(entity_id, attribute, winner[0], winner[1], counts[winner[0]])

    def _reestimate_trust(
        self,
        groups: dict[tuple[str, str], list[Observation]],
        fused: dict[tuple[str, str], FusedValue],
        trust: dict[str, float],
    ) -> dict[str, float]:
        agree: dict[str, float] = defaultdict(float)
        total: dict[str, float] = defaultdict(float)
        for key, group in groups.items():
            consensus = fused[key].value
            for obs in group:
                total[obs.source] += 1.0
                if _is_numeric(obs.value) and _is_numeric(consensus):
                    if abs(float(obs.value) - float(consensus)) <= self.numeric_tolerance:
                        agree[obs.source] += 1.0
                elif obs.value == consensus:
                    agree[obs.source] += 1.0
        new_trust = {}
        for source in trust:
            if total[source] == 0:
                new_trust[source] = trust[source]
            else:
                # Laplace-smoothed agreement rate, floored to keep every
                # source minimally audible.
                rate = (agree[source] + 1.0) / (total[source] + 2.0)
                new_trust[source] = max(0.05, rate)
        return new_trust


def majority_vote(observations: list[Observation]) -> dict[tuple[str, str], Any]:
    """Baseline: unweighted plurality per (entity, attribute)."""
    groups: dict[tuple[str, str], list[Any]] = defaultdict(list)
    for obs in observations:
        groups[(obs.entity_id, obs.attribute)].append(obs.value)
    out = {}
    for key, values in groups.items():
        if all(_is_numeric(v) for v in values):
            out[key] = sum(float(v) for v in values) / len(values)
        else:
            out[key] = max(set(values), key=values.count)
    return out


def single_source(
    observations: list[Observation], source: str
) -> dict[tuple[str, str], Any]:
    """Baseline: believe one source only (its last claim per entity/attr)."""
    out: dict[tuple[str, str], Any] = {}
    for obs in sorted(
        (o for o in observations if o.source == source), key=lambda o: o.timestamp
    ):
        out[(obs.entity_id, obs.attribute)] = obs.value
    return out


def accuracy_against_truth(
    fused: dict[tuple[str, str], Any],
    truth: dict[str, Any],
    attribute: str,
    numeric_tolerance: float = 1.0,
) -> float:
    """Fraction of entities whose fused ``attribute`` matches ground truth."""
    if not truth:
        raise FusionError("empty ground truth")
    correct = 0
    for entity, true_value in truth.items():
        value = fused.get((entity, attribute))
        if isinstance(value, FusedValue):
            value = value.value
        if value is None:
            continue
        if _is_numeric(true_value) and _is_numeric(value):
            correct += int(abs(float(value) - float(true_value)) <= numeric_tolerance)
        else:
            correct += int(value == true_value)
    return correct / len(truth)

"""Data fusion over heterogeneous sources: adapters, cleaning, entity
resolution, truth inference, and event inference."""

from .batch import ObservationBatch
from .cleaning import OutlierFilter, SmoothingFilter, deduplicate
from .fuser import (
    FusedValue,
    TruthFusion,
    accuracy_against_truth,
    majority_vote,
    single_source,
)
from .inference import EventInferencer, ShelfAssignment
from .resolution import (
    EntityResolver,
    SourceRecord,
    edit_distance,
    edit_similarity,
    jaccard,
    name_similarity,
    tokens,
)
from .sources import (
    GpsSource,
    GroundTruth,
    Observation,
    ReviewSource,
    RfidSource,
    VideoSource,
)

__all__ = [
    "EntityResolver",
    "EventInferencer",
    "FusedValue",
    "GpsSource",
    "GroundTruth",
    "Observation",
    "ObservationBatch",
    "OutlierFilter",
    "ReviewSource",
    "RfidSource",
    "ShelfAssignment",
    "SmoothingFilter",
    "SourceRecord",
    "TruthFusion",
    "VideoSource",
    "accuracy_against_truth",
    "deduplicate",
    "edit_distance",
    "edit_similarity",
    "jaccard",
    "majority_vote",
    "name_similarity",
    "single_source",
    "tokens",
]

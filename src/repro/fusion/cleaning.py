"""Stream cleaning for raw sensor observations (paper Sec. IV, [32], [46]).

Raw RFID and sensor streams are unreliable: missed reads, duplicates, and
outliers.  Cleaning runs *before* fusion:

* :class:`SmoothingFilter` — sliding-window presence smoothing in the SMURF
  mold: an entity is declared present in a zone if it was read there in at
  least ``min_support`` of the last ``window`` read cycles, bridging missed
  reads without hallucinating long-gone tags.
* :func:`deduplicate` — drop repeated (entity, attribute, value, cycle)
  observations.
* :class:`OutlierFilter` — reject numeric observations more than ``z_max``
  robust z-scores from the rolling median.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass

from ..core.errors import ConfigurationError
from .sources import Observation


def deduplicate(observations: list[Observation]) -> list[Observation]:
    """Remove exact duplicate claims (same entity/attribute/value/source/time)."""
    seen: set[tuple] = set()
    out = []
    for obs in observations:
        key = (obs.entity_id, obs.attribute, repr(obs.value), obs.source, obs.timestamp)
        if key in seen:
            continue
        seen.add(key)
        out.append(obs)
    return out


@dataclass
class _PresenceWindow:
    cycles: deque  # of (cycle_index, zone or None)


class SmoothingFilter:
    """SMURF-style temporal smoothing of RFID presence streams.

    Feed one batch of observations per read cycle via :meth:`add_cycle`;
    query :meth:`current_zone` for the smoothed location of an entity: the
    majority zone among that entity's reads in the last ``window`` cycles,
    provided it reaches ``min_support`` reads — otherwise None (unknown).
    """

    def __init__(self, window: int = 5, min_support: int = 2) -> None:
        if window < 1 or min_support < 1 or min_support > window:
            raise ConfigurationError("need 1 <= min_support <= window")
        self.window = window
        self.min_support = min_support
        self._history: dict[str, deque] = defaultdict(lambda: deque(maxlen=window))
        self._cycle = 0

    def add_cycle(self, observations: list[Observation]) -> None:
        """Record one read cycle's observations (location attribute only)."""
        self._cycle += 1
        zones_this_cycle: dict[str, list[str]] = defaultdict(list)
        for obs in observations:
            if obs.attribute == "location":
                zones_this_cycle[obs.entity_id].append(str(obs.value))
        for entity, history in self._history.items():
            if entity not in zones_this_cycle:
                history.append(None)
        for entity, zones in zones_this_cycle.items():
            # Majority zone within the cycle (duplicates collapse naturally).
            zone = max(set(zones), key=zones.count)
            self._history[entity].append(zone)

    def current_zone(self, entity_id: str) -> str | None:
        history = self._history.get(entity_id)
        if not history:
            return None
        counts: dict[str, int] = defaultdict(int)
        for zone in history:
            if zone is not None:
                counts[zone] += 1
        if not counts:
            return None
        best_zone, best_count = max(counts.items(), key=lambda kv: kv[1])
        return best_zone if best_count >= self.min_support else None

    def tracked_entities(self) -> list[str]:
        return sorted(self._history)


class OutlierFilter:
    """Rolling robust outlier rejection for numeric observation streams."""

    def __init__(self, window: int = 20, z_max: float = 4.0) -> None:
        if window < 3 or z_max <= 0:
            raise ConfigurationError("need window >= 3 and z_max > 0")
        self.window = window
        self.z_max = z_max
        self._values: dict[tuple[str, str], deque] = defaultdict(
            lambda: deque(maxlen=window)
        )
        self.rejected = 0

    def accept(self, obs: Observation) -> bool:
        """True if ``obs`` is consistent with its recent history."""
        if not isinstance(obs.value, (int, float)):
            return True
        key = (obs.entity_id, obs.attribute)
        history = self._values[key]
        value = float(obs.value)
        if len(history) >= 3:
            ordered = sorted(history)
            median = ordered[len(ordered) // 2]
            mad = sorted(abs(v - median) for v in ordered)[len(ordered) // 2]
            scale = max(mad * 1.4826, 1e-9)
            if abs(value - median) / scale > self.z_max:
                self.rejected += 1
                return False
        history.append(value)
        return True

    def filter(self, observations: list[Observation]) -> list[Observation]:
        return [obs for obs in observations if self.accept(obs)]

"""Entity resolution across heterogeneous catalogs (paper Sec. IV-A).

Different sources name the same entity differently ("The C Programming
Language, 2nd ed." vs "C Programming Language (2e)").  Before fusion, their
records must be clustered per real-world entity:

* blocking by token prefix keys keeps the candidate pair count near-linear;
* pairwise scoring mixes token-set Jaccard with normalized edit similarity;
* transitive closure (union-find) over matched pairs yields clusters.
"""

from __future__ import annotations

import re
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any

from ..core.errors import ConfigurationError
from ..obs.profiling import timed

_WORD = re.compile(r"[a-z0-9]+")


def tokens(text: str) -> set[str]:
    """Lower-cased alphanumeric tokens of ``text``."""
    return set(_WORD.findall(text.lower()))


def jaccard(a: set[str], b: set[str]) -> float:
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    return len(a & b) / len(a | b)


def edit_distance(a: str, b: str) -> int:
    """Levenshtein distance (iterative two-row DP)."""
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            current.append(
                min(
                    previous[j] + 1,        # deletion
                    current[j - 1] + 1,     # insertion
                    previous[j - 1] + (ca != cb),  # substitution
                )
            )
        previous = current
    return previous[-1]


def edit_similarity(a: str, b: str) -> float:
    """1 - normalized Levenshtein, in [0, 1]."""
    if not a and not b:
        return 1.0
    return 1.0 - edit_distance(a.lower(), b.lower()) / max(len(a), len(b))


def name_similarity(a: str, b: str, token_weight: float = 0.6) -> float:
    """Blended token-Jaccard / edit similarity."""
    return token_weight * jaccard(tokens(a), tokens(b)) + (
        1 - token_weight
    ) * edit_similarity(a, b)


@dataclass(frozen=True)
class SourceRecord:
    """A record as one source describes an entity."""

    record_id: str
    source: str
    name: str
    attributes: tuple[tuple[str, Any], ...] = field(default=())

    def attr(self) -> dict[str, Any]:
        return dict(self.attributes)


class _UnionFind:
    def __init__(self) -> None:
        self._parent: dict[str, str] = {}

    def find(self, x: str) -> str:
        self._parent.setdefault(x, x)
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:  # path compression
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra


class EntityResolver:
    """Blocked pairwise matching with transitive clustering."""

    def __init__(self, threshold: float = 0.7, block_prefix: int = 4) -> None:
        if not 0 < threshold <= 1:
            raise ConfigurationError("threshold must be in (0, 1]")
        if block_prefix < 1:
            raise ConfigurationError("block_prefix must be >= 1")
        self.threshold = threshold
        self.block_prefix = block_prefix
        self.pairs_compared = 0

    def _blocks(self, records: list[SourceRecord]) -> dict[str, list[SourceRecord]]:
        blocks: dict[str, list[SourceRecord]] = defaultdict(list)
        for record in records:
            for token in tokens(record.name):
                blocks[token[: self.block_prefix]].append(record)
        return blocks

    @timed("fusion.resolve")
    def resolve(self, records: list[SourceRecord]) -> list[list[SourceRecord]]:
        """Cluster records referring to the same entity."""
        by_id = {r.record_id: r for r in records}
        if len(by_id) != len(records):
            raise ConfigurationError("record_ids must be unique")
        uf = _UnionFind()
        for record in records:
            uf.find(record.record_id)
        seen_pairs: set[frozenset[str]] = set()
        for block in self._blocks(records).values():
            for i in range(len(block)):
                for j in range(i + 1, len(block)):
                    a, b = block[i], block[j]
                    pair = frozenset((a.record_id, b.record_id))
                    if len(pair) == 1 or pair in seen_pairs:
                        continue
                    seen_pairs.add(pair)
                    self.pairs_compared += 1
                    if name_similarity(a.name, b.name) >= self.threshold:
                        uf.union(a.record_id, b.record_id)
        clusters: dict[str, list[SourceRecord]] = defaultdict(list)
        for record in records:
            clusters[uf.find(record.record_id)].append(record)
        return sorted(clusters.values(), key=lambda c: c[0].record_id)

    def merged_attributes(self, cluster: list[SourceRecord]) -> dict[str, Any]:
        """Union of attributes in a cluster; later sources fill gaps only."""
        merged: dict[str, Any] = {}
        for record in cluster:
            for key, value in record.attr().items():
                merged.setdefault(key, value)
        return merged

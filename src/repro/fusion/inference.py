"""Event inference over fused state (paper Sec. IV-A, Fig. 6).

"The metaverse data management detects events that had taken place based on
these data sources and depicts these events accurately and efficiently in
the metaverse."  :class:`EventInferencer` watches the fused entity state
over time and derives semantic events — the library scenario's
"book misplaced", "book taken", "book returned" — publishing them on the
shared :class:`~repro.core.events.EventBus` so ECA rules can mirror them
into the virtual space.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.events import Event, EventBus
from ..core.records import Space


@dataclass(frozen=True)
class ShelfAssignment:
    """Catalog truth: where each entity (book) belongs."""

    entity_id: str
    home_zone: str


class EventInferencer:
    """Derives placement events from a stream of fused location estimates.

    Rules (evaluated per :meth:`observe_state` call):

    * entity fused to a zone != its home zone  -> ``library.misplaced``
    * entity previously seen, now unlocated    -> ``library.taken``
    * entity unlocated before, now at home     -> ``library.returned``
    """

    def __init__(self, bus: EventBus, assignments: list[ShelfAssignment]) -> None:
        self.bus = bus
        self.home = {a.entity_id: a.home_zone for a in assignments}
        self._last_zone: dict[str, str | None] = {}

    def observe_state(
        self, fused_locations: dict[str, str | None], now: float
    ) -> list[Event]:
        """Compare fused state to the previous one; emit derived events."""
        emitted: list[Event] = []
        for entity, home_zone in self.home.items():
            zone = fused_locations.get(entity)
            previous = self._last_zone.get(entity)
            if zone is None and previous is not None:
                emitted.extend(
                    self.bus.publish(
                        Event(
                            topic="library.taken",
                            space=Space.PHYSICAL,
                            timestamp=now,
                            attributes={"entity": entity, "last_zone": previous},
                        )
                    )
                )
            elif zone is not None and zone != home_zone:
                if previous != zone:  # report each misplacement once
                    emitted.extend(
                        self.bus.publish(
                            Event(
                                topic="library.misplaced",
                                space=Space.PHYSICAL,
                                timestamp=now,
                                attributes={
                                    "entity": entity,
                                    "zone": zone,
                                    "home": home_zone,
                                },
                            )
                        )
                    )
            elif zone == home_zone and previous is None and entity in self._last_zone:
                emitted.extend(
                    self.bus.publish(
                        Event(
                            topic="library.returned",
                            space=Space.PHYSICAL,
                            timestamp=now,
                            attributes={"entity": entity, "zone": zone},
                        )
                    )
                )
            self._last_zone[entity] = zone
        return emitted

"""repro — a metaverse data platform.

A laptop-scale, from-scratch prototype of the data-management system
envisioned by "The Metaverse Data Deluge: What Can We Do About It?"
(Ooi et al., ICDE 2023).  See DESIGN.md for the system inventory and
EXPERIMENTS.md for the claim-by-claim benchmark index.
"""

__version__ = "1.0.0"

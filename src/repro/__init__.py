"""repro — a metaverse data platform.

A laptop-scale, from-scratch prototype of the data-management system
envisioned by "The Metaverse Data Deluge: What Can We Do About It?"
(Ooi et al., ICDE 2023).  See DESIGN.md for the system inventory and
EXPERIMENTS.md for the claim-by-claim benchmark index.

The one-stop user-facing surface is re-exported here::

    from repro import MetaversePlatform, MetaverseWorld, Tracer

    tracer = Tracer()
    platform = MetaversePlatform(tracer=tracer)
    ...
    print(tracer.render_tree())

Subsystem packages (``repro.spatial``, ``repro.query``, ``repro.obs``,
...) remain importable directly for everything else.
"""

from .api.dataplane import DataPlane, GatherResult
from .cluster.cluster import PlatformCluster
from .cluster.config import ClusterConfig
from .cluster.router import ShardRouter
from .core.clock import EventScheduler, SimulationClock
from .core.columns import RecordBatch
from .fusion.batch import ObservationBatch
from .core.metrics import MetricsRegistry
from .core.records import DataKind, DataRecord, Space
from .geo.deployment import GeoConfig, GeoDeployment, GeoSession
from .ledger.ledgerdb import LedgerDB
from .obs.export import render_json, render_prometheus, write_snapshot
from .obs.logsink import LogSink
from .obs.profiling import timed
from .obs.tracing import NoopTracer, Span, Tracer
from .platform.gateway import DeviceGateway
from .platform.platform import MetaversePlatform
from .resilience.degrade import DegradationController
from .resilience.faults import FaultInjector, FaultPlan, FaultRule
from .resilience.policies import CircuitBreaker, RetryPolicy, Timeout
from .storage.engine import (
    LocalStorageEngine,
    RemoteStorageEngine,
    StorageEngine,
    StorageNode,
    StorageTier,
)
from .world.twin import MetaverseWorld

__version__ = "1.2.0"

__all__ = [
    "CircuitBreaker",
    "ClusterConfig",
    "DataKind",
    "DataPlane",
    "DataRecord",
    "DegradationController",
    "DeviceGateway",
    "EventScheduler",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "GatherResult",
    "GeoConfig",
    "GeoDeployment",
    "GeoSession",
    "LedgerDB",
    "LocalStorageEngine",
    "LogSink",
    "MetaversePlatform",
    "MetaverseWorld",
    "MetricsRegistry",
    "NoopTracer",
    "ObservationBatch",
    "PlatformCluster",
    "RecordBatch",
    "RemoteStorageEngine",
    "RetryPolicy",
    "ShardRouter",
    "SimulationClock",
    "Space",
    "Span",
    "StorageEngine",
    "StorageNode",
    "StorageTier",
    "Timeout",
    "Tracer",
    "render_json",
    "render_prometheus",
    "timed",
    "write_snapshot",
    "__version__",
]

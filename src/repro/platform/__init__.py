"""The device-cloud-storage platform facade (paper Fig. 7)."""

from .gateway import DeviceGateway
from .platform import ExecutorStats, MetaversePlatform, PurchaseOutcome

__all__ = [
    "DeviceGateway",
    "ExecutorStats",
    "MetaversePlatform",
    "PurchaseOutcome",
]

"""Device-side gateway: the "metaverse devices" tier of Fig. 7.

Devices "can afford part of computation tasks like data aggregation and
fusion" — the gateway buffers raw sensor records and, when aggregation is
enabled, ships one aggregate per (group, window) instead of every raw
reading, cutting device-to-cloud uplink bytes by roughly the window size
(experiment E11 measures exactly this).
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..core.columns import RecordBatch
from ..core.errors import ConfigurationError
from ..core.records import DataKind, DataRecord
from ..core.metrics import MetricsRegistry
from ..obs.tracing import NoopTracer, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience.faults import FaultInjector


def batch_uplink_bytes(batch: RecordBatch) -> int:
    """Wire size of a batch, same formula as :meth:`DataRecord.size_bytes`.

    Computed from the reconstructed payload dicts so the metric agrees
    to the byte with what the per-record path would report.
    """
    total = 0
    for payload in batch.payloads():
        explicit = payload.get("size_bytes")
        if isinstance(explicit, (int, float)) and explicit >= 0:
            total += int(explicit)
        else:
            total += 48 + len(repr(payload))
    return total


class DeviceGateway:
    """Buffers records on-device and flushes raw or aggregated batches.

    ``group_fn`` maps a record to its aggregation group (e.g. district);
    aggregation averages every numeric payload field per group over the
    buffered window.

    A gateway constructed without a tracer keeps a no-op default until
    :meth:`MetaversePlatform.register_gateway` adopts it into the
    platform's tracer (``tracer_injected`` records which case applies).
    """

    def __init__(
        self,
        aggregate: bool,
        group_fn: Callable[[DataRecord], str] | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        faults: "FaultInjector | None" = None,
    ) -> None:
        if aggregate and group_fn is None:
            raise ConfigurationError("aggregation requires a group_fn")
        self.aggregate = aggregate
        self.group_fn = group_fn
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer_injected = tracer is not None
        self.tracer = tracer if tracer is not None else NoopTracer()
        self.faults = faults
        self._buffer: list[DataRecord] = []
        self._batch_buffer: list[RecordBatch] = []

    def ingest(self, record: DataRecord) -> None:
        """Buffer one sensor record (an injected ``drop`` models dropout)."""
        if self.faults is not None:
            if self.faults.decide("gateway.ingest", kinds=("drop",)).faulted:
                self.metrics.counter("gateway.dropped_records").inc()
                return
        self._buffer.append(record)
        self.metrics.counter("gateway.raw_records").inc()

    def ingest_many(self, records: list[DataRecord]) -> None:
        with self.tracer.span("gateway.ingest", batch=len(records)):
            for record in records:
                self.ingest(record)

    def ingest_batch(self, batch: RecordBatch) -> None:
        """Buffer one columnar batch (vectorized twin of :meth:`ingest_many`).

        Fault decisions are still taken per row — the injector's RNG
        sequence must not depend on which ingest path carried the rows —
        but surviving rows stay columnar end to end.
        """
        if self.faults is not None:
            keep = [
                i for i in range(len(batch))
                if not self.faults.decide(
                    "gateway.ingest", kinds=("drop",)
                ).faulted
            ]
            dropped = len(batch) - len(keep)
            if dropped:
                self.metrics.counter("gateway.dropped_records").inc(dropped)
                if not keep:
                    return
                batch = batch.take(keep)
        self._batch_buffer.append(batch)
        self.metrics.counter("gateway.raw_records").inc(len(batch))

    def flush(self) -> tuple[list[DataRecord], int]:
        """Return (records to send upstream, uplink bytes) and clear."""
        with self.tracer.span("gateway.flush", buffered=len(self._buffer)):
            return self._flush_buffer()

    def flush_batch(self) -> tuple[RecordBatch | None, int]:
        """Columnar flush: (batch to send upstream or None, uplink bytes).

        The aggregated output reproduces :meth:`flush` exactly — per-group
        means accumulate in arrival order (``np.bincount`` adds terms in
        the same sequence as the Python loop), the ``count`` column stays
        ``int``, timestamps take the group max, and the group's space is
        the first row's.  Grouping uses the batch's ``groups`` tags when
        present (devices tag rows at capture time), else the record key.
        """
        buffered = sum(len(b) for b in self._batch_buffer)
        with self.tracer.span("gateway.flush", buffered=buffered):
            if not self._batch_buffer:
                return None, 0
            merged = RecordBatch.concat(self._batch_buffer)
            self._batch_buffer = []
            if not self.aggregate:
                uplink = batch_uplink_bytes(merged)
                self.metrics.counter("gateway.uplink_bytes").inc(uplink)
                self.metrics.counter("gateway.sent_records").inc(len(merged))
                return merged, uplink
            out = self._aggregate_batch(merged)
            uplink = batch_uplink_bytes(out)
            self.metrics.counter("gateway.uplink_bytes").inc(uplink)
            self.metrics.counter("gateway.sent_records").inc(len(out))
            return out, uplink

    def _aggregate_batch(self, merged: RecordBatch) -> RecordBatch:
        groups = merged.groups if merged.groups is not None else merged.keys
        index: dict[str, int] = {}
        codes = np.empty(len(merged), dtype=np.intp)
        for i, group in enumerate(groups):
            code = index.get(group)
            if code is None:
                code = index.setdefault(group, len(index))
            codes[i] = code
        n_groups = len(index)
        counts = np.bincount(codes, minlength=n_groups)
        columns: dict[str, np.ndarray] = {
            name: np.bincount(codes, weights=arr, minlength=n_groups) / counts
            for name, arr in merged.columns.items()
        }
        columns["count"] = counts.astype(np.int64)
        timestamps = np.full(n_groups, -np.inf)
        np.maximum.at(timestamps, codes, merged.timestamps)
        # First row of each group decides its space: assigning in reverse
        # lets the earliest occurrence overwrite the rest.
        spaces = np.empty(n_groups, dtype=np.uint8)
        spaces[codes[::-1]] = merged.spaces[::-1]
        return RecordBatch(
            keys=list(index),
            columns=columns,
            timestamps=timestamps,
            spaces=spaces,
            kind=DataKind.SENSOR,
            source="device-aggregate",
        )

    def _flush_buffer(self) -> tuple[list[DataRecord], int]:
        if not self._buffer:
            return [], 0
        if not self.aggregate:
            out = self._buffer
            self._buffer = []
            uplink = sum(r.size_bytes() for r in out)
            self.metrics.counter("gateway.uplink_bytes").inc(uplink)
            self.metrics.counter("gateway.sent_records").inc(len(out))
            return out, uplink
        assert self.group_fn is not None
        groups: dict[str, list[DataRecord]] = defaultdict(list)
        for record in self._buffer:
            groups[self.group_fn(record)].append(record)
        out = []
        for group, records in groups.items():
            numeric_fields: dict[str, list[float]] = defaultdict(list)
            for record in records:
                for field, value in record.payload.items():
                    if isinstance(value, (int, float)):
                        numeric_fields[field].append(float(value))
            payload = {
                field: sum(values) / len(values)
                for field, values in numeric_fields.items()
            }
            payload["count"] = len(records)
            out.append(
                DataRecord(
                    key=group,
                    payload=payload,
                    space=records[0].space,
                    timestamp=max(r.timestamp for r in records),
                    kind=DataKind.SENSOR,
                    source="device-aggregate",
                )
            )
        self._buffer = []
        uplink = sum(r.size_bytes() for r in out)
        self.metrics.counter("gateway.uplink_bytes").inc(uplink)
        self.metrics.counter("gateway.sent_records").inc(len(out))
        return out, uplink

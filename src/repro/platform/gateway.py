"""Device-side gateway: the "metaverse devices" tier of Fig. 7.

Devices "can afford part of computation tasks like data aggregation and
fusion" — the gateway buffers raw sensor records and, when aggregation is
enabled, ships one aggregate per (group, window) instead of every raw
reading, cutting device-to-cloud uplink bytes by roughly the window size
(experiment E11 measures exactly this).
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Callable

from ..core.errors import ConfigurationError
from ..core.records import DataKind, DataRecord
from ..core.metrics import MetricsRegistry
from ..obs.tracing import NoopTracer, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience.faults import FaultInjector


class DeviceGateway:
    """Buffers records on-device and flushes raw or aggregated batches.

    ``group_fn`` maps a record to its aggregation group (e.g. district);
    aggregation averages every numeric payload field per group over the
    buffered window.

    A gateway constructed without a tracer keeps a no-op default until
    :meth:`MetaversePlatform.register_gateway` adopts it into the
    platform's tracer (``tracer_injected`` records which case applies).
    """

    def __init__(
        self,
        aggregate: bool,
        group_fn: Callable[[DataRecord], str] | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        faults: "FaultInjector | None" = None,
    ) -> None:
        if aggregate and group_fn is None:
            raise ConfigurationError("aggregation requires a group_fn")
        self.aggregate = aggregate
        self.group_fn = group_fn
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer_injected = tracer is not None
        self.tracer = tracer if tracer is not None else NoopTracer()
        self.faults = faults
        self._buffer: list[DataRecord] = []

    def ingest(self, record: DataRecord) -> None:
        """Buffer one sensor record (an injected ``drop`` models dropout)."""
        if self.faults is not None:
            if self.faults.decide("gateway.ingest", kinds=("drop",)).faulted:
                self.metrics.counter("gateway.dropped_records").inc()
                return
        self._buffer.append(record)
        self.metrics.counter("gateway.raw_records").inc()

    def ingest_many(self, records: list[DataRecord]) -> None:
        with self.tracer.span("gateway.ingest", batch=len(records)):
            for record in records:
                self.ingest(record)

    def flush(self) -> tuple[list[DataRecord], int]:
        """Return (records to send upstream, uplink bytes) and clear."""
        with self.tracer.span("gateway.flush", buffered=len(self._buffer)):
            return self._flush_buffer()

    def _flush_buffer(self) -> tuple[list[DataRecord], int]:
        if not self._buffer:
            return [], 0
        if not self.aggregate:
            out = self._buffer
            self._buffer = []
            uplink = sum(r.size_bytes() for r in out)
            self.metrics.counter("gateway.uplink_bytes").inc(uplink)
            self.metrics.counter("gateway.sent_records").inc(len(out))
            return out, uplink
        assert self.group_fn is not None
        groups: dict[str, list[DataRecord]] = defaultdict(list)
        for record in self._buffer:
            groups[self.group_fn(record)].append(record)
        out = []
        for group, records in groups.items():
            numeric_fields: dict[str, list[float]] = defaultdict(list)
            for record in records:
                for field, value in record.payload.items():
                    if isinstance(value, (int, float)):
                        numeric_fields[field].append(float(value))
            payload = {
                field: sum(values) / len(values)
                for field, values in numeric_fields.items()
            }
            payload["count"] = len(records)
            out.append(
                DataRecord(
                    key=group,
                    payload=payload,
                    space=records[0].space,
                    timestamp=max(r.timestamp for r in records),
                    kind=DataKind.SENSOR,
                    source="device-aggregate",
                )
            )
        self._buffer = []
        uplink = sum(r.size_bytes() for r in out)
        self.metrics.counter("gateway.uplink_bytes").inc(uplink)
        self.metrics.counter("gateway.sent_records").inc(len(out))
        return out, uplink

"""The device–cloud–storage platform facade (paper Fig. 7).

:class:`MetaversePlatform` wires the three tiers of the disaggregated
architecture:

* **device** — :class:`~repro.platform.gateway.DeviceGateway` instances
  doing optional on-device aggregation;
* **cloud** — transaction executors (MVCC, partitioned by product hash),
  the pub/sub broker, and a buffer pool in front of storage;
* **storage** — a pluggable :class:`~repro.storage.engine.StorageEngine`:
  in-process by default (KV store + object store, exactly the pre-split
  tier), or a :class:`~repro.storage.engine.RemoteStorageEngine` mounted
  on a shared :class:`~repro.storage.engine.StorageTier`, which makes the
  compute node stateless (Sec. IV-E2's disaggregated deployment).

It exposes the operations the Section-II scenarios need: sensor ingestion,
flash-sale purchasing with space-aware priority, pub/sub subscriptions,
and point reads through the buffer pool.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..api.dataplane import ContinuousQuery, GatherResult
from ..core.clock import SimulationClock
from ..core.columns import RecordBatch
from ..core.errors import (
    ConfigurationError,
    FaultInjectedError,
    KeyNotFoundError,
    WriteConflictError,
)
from ..core.metrics import MetricsRegistry
from ..core.records import DataKind, DataRecord, Space
from ..net.overlay import stable_hash
from ..net.pubsub import Broker, Publication, Subscription
from ..obs.tracing import NoopTracer, Tracer
from ..platform.gateway import DeviceGateway
from ..query.plane import QueryExecutor, QueryRequest, prefix_query, spatial_query
from ..resilience.degrade import DegradationController
from ..resilience.faults import FaultInjector
from ..resilience.policies import CircuitBreaker, RetryPolicy
from ..semantic import SemanticIndex, SemanticIndexConfig
from ..storage.bufferpool import BufferPool, PageMeta
from ..storage.engine import LocalStorageEngine, StorageEngine
from ..txn.mvcc import TransactionManager
from ..workloads.marketplace import PurchaseRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..spatial.geometry import BBox


@dataclass
class PurchaseOutcome:
    request: PurchaseRequest
    success: bool
    reason: str = ""


@dataclass
class ExecutorStats:
    """Per-executor accounting for throughput/makespan analysis."""

    processed: int = 0
    busy_time: float = 0.0


def stored_record_value(record: DataRecord) -> dict:
    """The wrapper dict a :class:`DataRecord` is stored under in the KV
    tier.  Shared with the cluster failover layer, which must log exactly
    what :meth:`MetaversePlatform.write_record` persists so a promoted
    replica replays identical state."""
    return {
        "payload": record.payload,
        "space": record.space.value,
        "timestamp": record.timestamp,
    }


def purchase_sort_key(request: PurchaseRequest, physical_priority: bool):
    """Space-aware processing order: (priority, arrival time).

    With ``physical_priority`` on, physical-space shoppers win ties on the
    last unit — the paper's example policy.  Shared with
    :class:`~repro.cluster.cluster.PlatformCluster`, which must order the
    global request stream identically before splitting it across shards so
    that sharded and single-node runs decide every purchase the same way.
    """
    priority = 0 if (physical_priority and request.space is Space.PHYSICAL) else 1
    return (priority, request.timestamp)


class MetaversePlatform:
    """The end-to-end platform facade."""

    def __init__(
        self,
        n_executors: int = 4,
        buffer_pool_pages: int = 256,
        physical_priority: bool = True,
        txn_cost_s: float = 1e-4,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        faults: FaultInjector | None = None,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        degradation: DegradationController | None = None,
        engine: StorageEngine | None = None,
        position_index: bool = True,
        semantic_index: SemanticIndexConfig | bool = False,
    ) -> None:
        if n_executors < 1:
            raise ConfigurationError("need at least one executor")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NoopTracer()
        # Resilience.  A platform built with a fault injector survives by
        # default: storage and broker calls retry with backoff, a breaker
        # sheds publishes while the broker is failing, and reads fall back
        # to the last value served (see read()).  All defaults share the
        # injector's simulated clock so recovery timing is deterministic.
        self.faults = faults
        if faults is not None:
            # Adopt an injector that kept its defaults, so fault counters
            # and fault spans land in the platform's registry and trace.
            if not faults.metrics_injected:
                faults.metrics = self.metrics
            if not faults.tracer_injected:
                faults.tracer = self.tracer
        if retry is None and faults is not None:
            retry = RetryPolicy(
                max_attempts=4, base_delay_s=0.002, seed=faults.plan.seed,
                clock=faults.clock, metrics=self.metrics, tracer=self.tracer,
            )
        self.retry = retry
        if breaker is None and faults is not None:
            breaker = CircuitBreaker(
                failure_threshold=8, cooldown_s=0.25, clock=faults.clock,
                name="broker", metrics=self.metrics, tracer=self.tracer,
            )
        self.breaker = breaker
        self.degradation = degradation
        # Storage tier: an injected engine, or the in-process default
        # (byte-identical to the pre-split platform that newed up its own
        # stores).  ``kv``/``objects`` stay addressable for local engines;
        # a remote engine has no in-process stores to expose.
        if engine is None:
            engine = LocalStorageEngine(
                metrics=self.metrics, tracer=self.tracer, faults=faults
            )
        self.engine = engine
        self.kv = engine.kv if isinstance(engine, LocalStorageEngine) else None
        self.objects = (
            engine.objects if isinstance(engine, LocalStorageEngine) else None
        )
        # Cloud tier.  The transaction manager shares the platform registry
        # and tracer (it used to grow a private registry nobody could read).
        self.txn = TransactionManager(metrics=self.metrics, tracer=self.tracer)
        self.broker = Broker(metrics=self.metrics, tracer=self.tracer, faults=faults)
        self.n_executors = n_executors
        self.executors = [ExecutorStats() for _ in range(n_executors)]
        self.txn_cost_s = txn_cost_s
        self.physical_priority = physical_priority
        self._buffer_pool_pages = buffer_pool_pages
        self.pool = BufferPool(
            capacity=buffer_pool_pages,
            loader=self._load_page,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        self.storage_reads = 0
        # Bounded last-known-value cache backing stale-read fallback.
        self._stale: OrderedDict[str, object] = OrderedDict()
        self._stale_capacity = 4 * buffer_pool_pages
        # Device tier (gateways registered per source population).
        self.gateways: dict[str, DeviceGateway] = {}
        # Optional (product_id, post_commit_stock) hook fired after every
        # committed stock change.  The cluster failover layer sets this to
        # replicate absolute stock levels; replaying levels (not requests)
        # is what keeps promotion exactly-once.
        self.purchase_log = None
        # Product records whose engine write-through failed past the retry
        # budget; re-flushed before the next persist so the storage tier
        # converges once the fault clears.
        self._dirty_products: OrderedDict[str, dict | None] = OrderedDict()
        # DataPlane surface: tick-driven buffered ingest and continuous
        # queries, mirroring the cluster facade so workloads written
        # against the protocol run unchanged on either shape.
        self.clock = faults.clock if faults is not None else SimulationClock()
        self._pending: list[DataRecord] = []
        self._pending_batches: list[RecordBatch] = []
        self._continuous: dict[str, ContinuousQuery] = {}
        # key → (x, y) memo over this engine's entities, so spatial
        # queries filter a dict instead of scanning the whole keyspace.
        # Only sound on the private local engine (it starts empty and
        # every write flows through this platform); a remote engine
        # shares its keyspace with other compute nodes, so spatial
        # queries there fall back to the scan-based filter.
        self._positions: dict[str, tuple] | None = (
            {} if position_index and isinstance(engine, LocalStorageEngine)
            else None
        )
        # Opt-in semantic retrieval: an HNSW graph over this node's
        # describable entities, maintained from the same write paths as
        # the position memo (so failover promotion, which replays via
        # import_entity, rebuilds it for free).  Off by default — the
        # numeric hot-path workloads never pay the embedding cost.
        self.semantic: SemanticIndex | None = None
        if semantic_index:
            self.semantic = SemanticIndex(
                semantic_index
                if isinstance(semantic_index, SemanticIndexConfig)
                else None
            )
        # Query-plane executor: this platform is the single shard.
        self.query_executor = QueryExecutor()

    # -- storage access -----------------------------------------------------

    def _load_page(self, key) -> tuple[object, PageMeta]:
        self.storage_reads += 1
        try:
            value = self.engine.get(str(key))
        except KeyNotFoundError:
            value = None
        return value, PageMeta(space=Space.PHYSICAL, kind=DataKind.STRUCTURED)

    def _with_retry(self, fn):
        if self.retry is None:
            return fn()
        return self.retry.call(fn)

    def read(self, key: str, allow_stale: bool = True):
        """Point read through the buffer pool.

        Graceful degradation: when the storage tier keeps failing past the
        retry budget (injected faults), the last value this platform served
        or wrote for ``key`` is returned instead — stale but available, the
        paper's availability-over-freshness stance for hot reads.  Counted
        in ``platform.stale_reads``; pass ``allow_stale=False`` to surface
        the failure instead.
        """
        try:
            value = self._with_retry(lambda: self.pool.get(key))
        except FaultInjectedError:
            if allow_stale and key in self._stale:
                self.metrics.counter("platform.stale_reads").inc()
                self.tracer.log("warn", "stale read served", key=key)
                return self._stale[key]
            raise
        self._remember(key, value)
        return value

    def _remember(self, key: str, value: object) -> None:
        self._stale[key] = value
        self._stale.move_to_end(key)
        while len(self._stale) > self._stale_capacity:
            self._stale.popitem(last=False)

    def write_record(self, record: DataRecord) -> None:
        """Persist a record to the storage engine, invalidating its page."""
        value = stored_record_value(record)
        self._with_retry(lambda: self.engine.put(record.key, value))
        self.pool.invalidate(record.key)
        self._remember(record.key, value)
        if self._positions is not None:
            self._index_position(record.key, record.payload)
        if self.semantic is not None:
            self.semantic.index_record(record.key, record.payload)

    def write_record_batch(self, batch: RecordBatch) -> None:
        """Persist a columnar batch: one bulk engine call for N records.

        Leaves byte-identical engine state, stale-cache contents, and page
        invalidations to ``for r in batch.to_records(): write_record(r)`` —
        the stored wrapper dicts are rebuilt from the columns with exact
        scalar conversion — while paying one (coalesced) storage round
        trip and zero per-record Python object churn.
        """
        payloads = batch.payloads()
        spaces = batch.space_values()
        times = batch.timestamps.tolist()
        items = [
            (key, {"payload": payload, "space": space.value, "timestamp": ts})
            for key, payload, space, ts in zip(
                batch.keys, payloads, spaces, times
            )
        ]
        self._with_retry(lambda: self.engine.mput(items))
        invalidate = self.pool.invalidate
        stale = self._stale
        for key, value in items:
            invalidate(key)
            stale[key] = value
            stale.move_to_end(key)
        while len(stale) > self._stale_capacity:
            stale.popitem(last=False)
        if self._positions is not None:
            # Columns are numeric by construction, so either every row has
            # a position (x and y columns present) or none does — the same
            # membership rule _index_position applies per record.
            if "x" in batch.columns and "y" in batch.columns:
                self._positions.update(
                    zip(
                        batch.keys,
                        zip(
                            batch.columns["x"].tolist(),
                            batch.columns["y"].tolist(),
                        ),
                    )
                )
            else:
                for key in batch.keys:
                    self._positions.pop(key, None)
        if self.semantic is not None:
            for key, payload in zip(batch.keys, payloads):
                self.semantic.index_record(key, payload)

    def _index_position(self, key: str, payload: dict) -> None:
        """Track (or forget) the entity's payload position.

        Same membership rule as the scan-based spatial filter — numeric
        ``x`` and ``y`` — so the indexed and scanning paths select
        identical result sets.
        """
        x, y = payload.get("x"), payload.get("y")
        if isinstance(x, (int, float)) and isinstance(y, (int, float)):
            self._positions[key] = (x, y)
        else:
            self._positions.pop(key, None)

    def scan(self, lo: str, hi: str) -> list[tuple[str, object]]:
        """Sorted range scan of the entity tier (retried past transient
        faults).  On a remote engine this fans out across storage nodes."""
        return self._with_retry(lambda: self.engine.scan(lo, hi))

    # -- device tier ------------------------------------------------------------

    def register_gateway(self, name: str, gateway: DeviceGateway) -> None:
        if name in self.gateways:
            raise ConfigurationError(f"duplicate gateway {name!r}")
        # Adopt gateways that kept their default no-op tracer so device-tier
        # spans nest under platform spans; an explicitly injected tracer wins.
        if not gateway.tracer_injected:
            gateway.tracer = self.tracer
        # Same adoption for the fault injector: the platform's chaos plan
        # reaches the device tier unless the gateway brought its own.
        if gateway.faults is None:
            gateway.faults = self.faults
        self.gateways[name] = gateway

    def flush_gateways(self) -> tuple[int, int]:
        """Flush every gateway into storage; return (records, uplink bytes)."""
        total_records = 0
        total_bytes = 0
        with self.tracer.span("platform.flush_gateways"):
            for gateway in self.gateways.values():
                records, uplink = gateway.flush()
                total_bytes += uplink
                for record in records:
                    self.write_record(record)
                    self.publish(
                        Publication(
                            topic=f"ingest.{record.source}",
                            payload={**record.payload, "key": record.key},
                            timestamp=record.timestamp,
                            size_bytes=record.size_bytes(),
                        )
                    )
                    total_records += 1
        self.metrics.counter("platform.ingested_records").inc(total_records)
        self.metrics.counter("platform.uplink_bytes").inc(total_bytes)
        return total_records, total_bytes

    def flush_gateways_batch(self) -> tuple[int, int]:
        """Columnar twin of :meth:`flush_gateways`.

        Stored state is byte-identical to the per-record path over the
        same rows; the difference is on the event side, where one digest
        publication per gateway batch replaces the per-record stream
        (events are lossy by contract, unlike storage writes).
        """
        total_records = 0
        total_bytes = 0
        with self.tracer.span("platform.flush_gateways"):
            for gateway in self.gateways.values():
                batch, uplink = gateway.flush_batch()
                total_bytes += uplink
                if batch is None:
                    continue
                self.write_record_batch(batch)
                self.publish(
                    Publication(
                        topic=f"ingest.{batch.source}",
                        payload={"records": len(batch), "batch": True},
                        timestamp=float(batch.timestamps.max()),
                        size_bytes=uplink,
                    )
                )
                total_records += len(batch)
        self.metrics.counter("platform.ingested_records").inc(total_records)
        self.metrics.counter("platform.uplink_bytes").inc(total_bytes)
        return total_records, total_bytes

    # -- DataPlane: buffered ingest and tick --------------------------------
    #
    # The single-node half of the repro.api.DataPlane protocol: records
    # buffer (per-record or columnar) and become visible to queries at the
    # next flush()/tick(), exactly the contract the cluster facade keeps.

    def ingest(self, record: DataRecord) -> None:
        """Buffer one observation until the next :meth:`flush`."""
        self._pending.append(record)
        self.metrics.counter("platform.buffered_records").inc()

    def ingest_many(self, records: list[DataRecord]) -> None:
        with self.tracer.span("platform.ingest", batch=len(records)):
            for record in records:
                self.ingest(record)

    def ingest_batch(self, batch: RecordBatch) -> None:
        """Buffer one columnar batch until the next :meth:`flush`."""
        self._pending_batches.append(batch)
        self.metrics.counter("platform.buffered_records").inc(len(batch))

    @property
    def pending_count(self) -> int:
        return len(self._pending) + sum(
            len(batch) for batch in self._pending_batches
        )

    def flush(self) -> int:
        """Write everything buffered; return the number of records."""
        total = 0
        with self.tracer.span("platform.flush", pending=self.pending_count):
            records, self._pending = self._pending, []
            for record in records:
                self.write_record(record)
            total += len(records)
            batches, self._pending_batches = self._pending_batches, []
            for batch in batches:
                self.write_record_batch(batch)
                total += len(batch)
        self.metrics.counter("platform.ingested_records").inc(total)
        return total

    def tick(self, dt: float) -> dict[str, GatherResult]:
        """One simulated-clock tick: advance time, flush buffered ingest,
        refresh every registered continuous query.  Returns fresh results."""
        self.clock.advance(dt)
        self.flush()
        results: dict[str, GatherResult] = {}
        for query in self._continuous.values():
            request = (
                query.request
                if query.request is not None
                else prefix_query(query.prefix)
            )
            query.results = self.query(request)
            self.metrics.counter("platform.continuous.evaluations").inc()
            results[query.query_id] = query.results
        return results

    # -- DataPlane: queries --------------------------------------------------

    def query(self, request: QueryRequest) -> GatherResult:
        """Run one query-plane request on this node (single-shard executor).

        The modality plans/rewrites once, executes against this platform
        as the only shard, and merges the single partial — the same code
        path the cluster scatter-gathers, minus the fan-out.
        """
        return self.query_executor.run_single(self, request)

    def scan_prefix(self, prefix: str) -> GatherResult:
        """Range query: every (key, value) with ``key`` under ``prefix``."""
        return self.query(prefix_query(prefix))

    def query_spatial(self, region: "BBox") -> GatherResult:
        """Entities whose payload position (``x``/``y``) lies in ``region``."""
        return self.query(spatial_query(region))

    def spatial_items(self, region: "BBox") -> list:
        """Shard-local spatial execution (unsorted; the modality merges).

        With the position index on (local engine), candidate keys come
        from a dict filter instead of a full keyspace scan; both paths
        select the same result set.
        """
        items: list = []
        if self._positions is not None:
            for key, (x, y) in self._positions.items():
                if (
                    region.x_min <= x <= region.x_max
                    and region.y_min <= y <= region.y_max
                ):
                    try:
                        value = self._with_retry(
                            lambda k=key: self.engine.get(k)
                        )
                    except KeyNotFoundError:
                        continue
                    items.append((key, value))
        else:
            for key, value in self.scan("", "￿"):
                payload = (
                    value.get("payload", {}) if isinstance(value, dict) else {}
                )
                x, y = payload.get("x"), payload.get("y")
                if (
                    isinstance(x, (int, float))
                    and isinstance(y, (int, float))
                    and region.x_min <= x <= region.x_max
                    and region.y_min <= y <= region.y_max
                ):
                    items.append((key, value))
        return items

    def semantic_search(
        self, vector, k: int, ef: int | None = None
    ) -> list[tuple[str, float]]:
        """Shard-local ANN top-k over this node's semantic index."""
        if self.semantic is None:
            raise ConfigurationError(
                "semantic index not enabled; build the platform with "
                "semantic_index=True (or a SemanticIndexConfig)"
            )
        self.metrics.counter("platform.semantic.searches").inc()
        return self.semantic.search(vector, k, ef=ef)

    def register_continuous(self, query_id: str, prefix: str) -> None:
        """Register a standing prefix query, re-evaluated every tick."""
        self.register_continuous_query(query_id, prefix_query(prefix))

    def register_continuous_query(
        self, query_id: str, request: QueryRequest
    ) -> None:
        """Register a standing query of *any* modality, refreshed per tick."""
        if query_id in self._continuous:
            raise ConfigurationError(f"duplicate continuous query {query_id!r}")
        self._continuous[query_id] = ContinuousQuery(
            query_id, str(request.params.get("prefix", "")), request=request
        )

    def continuous_results(self, query_id: str) -> GatherResult | None:
        return self._continuous[query_id].results

    # -- pub/sub --------------------------------------------------------------

    def publish(self, publication: Publication) -> list[Subscription]:
        """Publish through the broker with the platform's recovery policies.

        Transient broker faults are retried; while the circuit breaker is
        open, publications are shed (``platform.publish_shed``) instead of
        hammering a failing broker; a publish that stays failing past the
        retry budget is dropped and counted (``platform.publish_failed``)
        rather than aborting the caller's pipeline — events are lossy by
        contract, unlike storage writes.  Outcomes feed the degradation
        controller when one is attached.
        """
        if self.breaker is not None and not self.breaker.allow():
            self.metrics.counter("platform.publish_shed").inc()
            return []
        try:
            matched = self._with_retry(lambda: self.broker.publish(publication))
        except FaultInjectedError:
            if self.breaker is not None:
                self.breaker.record_failure()
            if self.degradation is not None:
                self.degradation.observe(False)
            self.metrics.counter("platform.publish_failed").inc()
            return []
        if self.breaker is not None:
            self.breaker.record_success()
        if self.degradation is not None:
            self.degradation.observe(True)
        return matched

    # -- marketplace transactions --------------------------------------------------

    def load_catalog(self, records: list[DataRecord]) -> None:
        for record in records:
            txn = self.txn.begin()
            txn.write(record.key, dict(record.payload))
            self.txn.commit(txn)
            self._persist_product(record.key, dict(record.payload))

    # -- product write-through / hydration ----------------------------------
    #
    # The compute-side MVCC store is a *cache* of committed catalog state;
    # the storage engine holds the durable record.  On the default local
    # engine the write-through is a dict assignment (free, invisible); on a
    # remote engine it is what makes the compute node stateless — any other
    # compute node can hydrate the same product from the shared tier.

    def _persist_product(self, product_id: str, value: dict | None) -> None:
        """Write committed product state through to the storage engine
        (``None`` deletes).  A write that stays failing past the retry
        budget is parked dirty and re-flushed on the next persist."""
        self._dirty_products[product_id] = value
        self._dirty_products.move_to_end(product_id)
        for pid in list(self._dirty_products):
            pending = self._dirty_products[pid]
            try:
                if pending is None:
                    self._with_retry(lambda p=pid: self.engine.delete_product(p))
                else:
                    self._with_retry(
                        lambda p=pid, v=pending: self.engine.put_product(p, v)
                    )
            except FaultInjectedError:
                self.metrics.counter("platform.product_persist_deferred").inc()
                return
            del self._dirty_products[pid]

    def _hydrate_product(self, product_id: str) -> dict | None:
        """Pull a product the compute cache has never seen (or dropped)
        from the storage engine into MVCC; ``None`` when the tier has no
        record either (or stayed unreachable past the retry budget)."""
        try:
            value = self._with_retry(lambda: self.engine.get_product(product_id))
        except FaultInjectedError:
            return None
        if value is None:
            return None
        self._install_product(product_id, value)
        self.metrics.counter("platform.products_hydrated").inc()
        return value

    def _install_product(self, product_id: str, value: dict) -> None:
        """Commit ``value`` into the MVCC cache without writing it back."""
        txn = self.txn.begin()
        txn.write(product_id, dict(value))
        self.txn.commit(txn)

    def persist_committed(self, product_id: str) -> None:
        """Write the currently committed state of ``product_id`` through
        to the storage engine (the 2PC apply path, where the committed
        value is produced outside :meth:`_purchase_attempts`)."""
        txn = self.txn.begin()
        value = txn.read_or(product_id)
        self._persist_product(
            product_id, dict(value) if value is not None else None
        )

    def flush_dirty_products(self) -> int:
        """Re-drive deferred product write-throughs; returns how many are
        still dirty afterwards.

        Called before :meth:`reset_caches` on a stateless-compute remap:
        the MVCC cache about to be dropped may be the only holder of
        committed stock the storage tier missed (write-through parked on
        a fault), and the next owner hydrates from the tier.  A write
        still failing past the retry budget leaves its entry parked and
        stops the sweep (the fault has not cleared; later entries would
        fail the same way).
        """
        for product_id in list(self._dirty_products):
            pending = self._dirty_products[product_id]
            try:
                if pending is None:
                    self._with_retry(
                        lambda p=product_id: self.engine.delete_product(p)
                    )
                else:
                    self._with_retry(
                        lambda p=product_id, v=pending: self.engine.put_product(
                            p, v
                        )
                    )
            except FaultInjectedError:
                self.metrics.counter("platform.product_persist_deferred").inc()
                break
            del self._dirty_products[product_id]
        return len(self._dirty_products)

    def reset_products(self) -> None:
        """Drop the compute-side product cache (stateless-compute remap).

        After cluster membership changes in disaggregated mode, product
        ownership moves between compute nodes without any data movement;
        clearing the cache forces the next purchase on the new owner to
        hydrate fresh, committed state from the shared storage tier."""
        self.txn = TransactionManager(metrics=self.metrics, tracer=self.tracer)
        self.metrics.counter("platform.product_cache_resets").inc()

    def reset_caches(self) -> None:
        """Drop every compute-side cache — product MVCC, buffer pool, and
        the stale-read fallback — so all subsequent reads re-load from the
        storage engine.  The full stateless-compute remap: what a compute
        node does when cluster membership changes under it."""
        self.reset_products()
        self.pool = BufferPool(
            capacity=self._buffer_pool_pages,
            loader=self._load_page,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        self._stale.clear()

    def maintain_storage(self, now: float | None = None) -> dict:
        """One data-lifecycle sweep of the storage engine (checkpointing,
        tier demotion).  A no-op dict for engines without lifecycle
        management, so callers can invoke it unconditionally."""
        return self.engine.maintain(
            self.clock.now if now is None else now
        )

    def _executor_for(self, product_id: str) -> int:
        return stable_hash(product_id) % self.n_executors

    def process_purchases(
        self,
        requests: list[PurchaseRequest],
        max_retries: int = 2,
        presorted: bool = False,
    ) -> list[PurchaseOutcome]:
        """Execute a batch of purchases with space-aware ordering.

        Requests are ordered by (priority, time): with
        ``physical_priority`` on, physical-space shoppers win ties on the
        last unit — the paper's example policy.  Each purchase is an MVCC
        transaction decrementing the product's stock; conflicts retry up to
        ``max_retries`` times.  ``presorted=True`` skips the sort — the
        cluster router passes order-preserved subsequences of an already
        globally sorted stream, so per-shard re-sorting is pure overhead.
        """
        outcomes = []
        if not presorted:
            requests = sorted(
                requests,
                key=lambda r: purchase_sort_key(r, self.physical_priority),
            )
        with self.tracer.span("platform.process_purchases", n=len(requests)):
            for request in requests:
                outcomes.append(self._purchase_one(request, max_retries))
        return outcomes

    def _purchase_one(
        self, request: PurchaseRequest, max_retries: int
    ) -> PurchaseOutcome:
        # A sampling boundary: with sample_every=k, one purchase in k
        # records its sub-trace (commit spans included) — see Tracer.
        with self.tracer.sampled_span("platform.purchase"):
            return self._purchase_attempts(request, max_retries)

    def _purchase_attempts(
        self, request: PurchaseRequest, max_retries: int
    ) -> PurchaseOutcome:
        executor = self.executors[self._executor_for(request.product_id)]
        for _ in range(max_retries + 1):
            executor.busy_time += self.txn_cost_s
            txn = self.txn.begin()
            try:
                product = txn.read(request.product_id)
            except KeyNotFoundError:
                self.txn.abort(txn)
                # Stateless-compute path: an empty MVCC cache is not "no
                # such product" until the storage tier agrees.
                if self._hydrate_product(request.product_id) is not None:
                    continue
                return PurchaseOutcome(request, False, "no such product")
            stock = product.get("stock", 0)
            if stock < request.quantity:
                self.txn.abort(txn)
                self.metrics.counter("platform.soldout").inc()
                return PurchaseOutcome(request, False, "sold out")
            updated = dict(product)
            updated["stock"] = stock - request.quantity
            txn.write(request.product_id, updated)
            try:
                self.txn.commit(txn)
            except WriteConflictError:
                self.metrics.counter("platform.retries").inc()
                continue
            executor.processed += 1
            self.metrics.counter("platform.purchases").inc()
            self._persist_product(request.product_id, updated)
            if self.purchase_log is not None:
                self.purchase_log(request.product_id, updated["stock"])
            return PurchaseOutcome(request, True)
        return PurchaseOutcome(request, False, "conflict retries exhausted")

    # -- cluster support ----------------------------------------------------
    #
    # The scale-out layer (repro.cluster) treats each platform as one shard
    # and needs a public surface for key migration: raw KV values move as
    # is (they are already the stored wrapper dicts), catalog products move
    # as committed MVCC state.  All storage touches go through the shard's
    # own retry policy so migration survives transient injected faults.

    def entity_keys(self) -> list[str]:
        """Keys of every entity this shard's engine holds."""
        return self._with_retry(lambda: self.engine.keys())

    def export_entity(self, key: str):
        """The stored value for ``key`` (retried past transient faults)."""
        return self._with_retry(lambda: self.engine.get(key))

    def import_entity(self, key: str, value: object) -> None:
        """Adopt a migrated entity value, keeping caches coherent."""
        self._with_retry(lambda: self.engine.put(key, value))
        self.pool.invalidate(key)
        self._remember(key, value)
        payload = value.get("payload", {}) if isinstance(value, dict) else {}
        if self._positions is not None:
            self._index_position(key, payload)
        if self.semantic is not None:
            self.semantic.index_record(key, payload)

    def drop_entity(self, key: str) -> None:
        """Forget an entity handed off to another shard."""
        self._with_retry(lambda: self.engine.delete(key))
        self.pool.invalidate(key)
        self._stale.pop(key, None)
        if self._positions is not None:
            self._positions.pop(key, None)
        if self.semantic is not None:
            self.semantic.discard(key)

    def catalog_snapshot(self) -> dict[str, dict]:
        """Committed product state, keyed by product id."""
        store = self.txn.store
        return {key: dict(value) for key, value in store.scan_at(store.last_commit_ts)}

    def import_product(self, product_id: str, value: dict) -> None:
        self._install_product(product_id, value)
        self._persist_product(product_id, dict(value))

    def drop_product(self, product_id: str) -> None:
        txn = self.txn.begin()
        txn.delete(product_id)
        self.txn.commit(txn)
        self._persist_product(product_id, None)

    def get_stock(self, product_id: str) -> int:
        """Current stock of ``product_id`` as seen by a fresh snapshot."""
        txn = self.txn.begin()
        try:
            return int(txn.read(product_id).get("stock", 0))
        except KeyNotFoundError:
            self.txn.abort(txn)
            value = self._hydrate_product(product_id)
            if value is None:
                raise
            txn = self.txn.begin()
            return int(txn.read(product_id).get("stock", 0))

    def compute_makespan(self) -> float:
        """Simulated completion time: the busiest executor's busy time."""
        return max(e.busy_time for e in self.executors)

    def compute_throughput(self, n_requests: int) -> float:
        makespan = self.compute_makespan()
        return n_requests / makespan if makespan > 0 else float("inf")

"""Event bus with event-condition-action (ECA) rules.

The paper (Sec. III) observes that "a large number of events [are] generated
within the metaverse. These have to be monitored, and may trigger further
actions/events both in the physical and virtual worlds."  The
:class:`EventBus` is that monitoring fabric: components publish typed
events; subscribers register handlers; :class:`Rule` objects implement the
ECA pattern, optionally emitting follow-up events into the other space
(e.g. the military example: a virtual air-raid event triggers a physical
"perish" order).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from .records import Space

_event_ids = itertools.count(1)


@dataclass
class Event:
    """A typed occurrence in either space.

    ``topic`` is a dotted name such as ``"military.airstrike"``;
    ``attributes`` carries arbitrary structured detail.
    """

    topic: str
    space: Space
    timestamp: float
    attributes: dict[str, Any] = field(default_factory=dict)
    event_id: int = field(default_factory=lambda: next(_event_ids))

    def matches_topic(self, pattern: str) -> bool:
        """Match against an exact topic or a ``prefix.*`` wildcard."""
        if pattern == "*" or pattern == self.topic:
            return True
        if pattern.endswith(".*"):
            return self.topic.startswith(pattern[:-1])
        return False


Condition = Callable[[Event], bool]
Action = Callable[[Event], "Iterable[Event] | None"]


@dataclass
class Rule:
    """An event-condition-action rule.

    When an event matching ``topic_pattern`` (and, if given, ``space``)
    arrives and ``condition`` holds, ``action`` runs.  Actions may return
    follow-up events, which the bus publishes — this is how virtual events
    cascade into physical consequences and vice versa.
    """

    name: str
    topic_pattern: str
    action: Action
    condition: Condition | None = None
    space: Space | None = None
    fired: int = 0

    def applies_to(self, event: Event) -> bool:
        if self.space is not None and event.space is not self.space:
            return False
        if not event.matches_topic(self.topic_pattern):
            return False
        if self.condition is not None and not self.condition(event):
            return False
        return True


class EventBus:
    """Publish/subscribe fan-out plus ECA rule evaluation.

    Follow-up events produced by rules are processed breadth-first with a
    cascade-depth bound so that mutually triggering rules cannot loop
    forever.
    """

    def __init__(self, max_cascade_depth: int = 16) -> None:
        self._handlers: list[tuple[str, Callable[[Event], None]]] = []
        self._rules: list[Rule] = []
        self.max_cascade_depth = max_cascade_depth
        self.published = 0
        self.history: list[Event] = []
        self.keep_history = True

    def subscribe(self, topic_pattern: str, handler: Callable[[Event], None]) -> None:
        """Invoke ``handler`` for every event matching ``topic_pattern``."""
        self._handlers.append((topic_pattern, handler))

    def add_rule(self, rule: Rule) -> None:
        self._rules.append(rule)

    def rule(self, name: str) -> Rule:
        for rule in self._rules:
            if rule.name == name:
                return rule
        raise KeyError(f"no rule named {name!r}")

    def publish(self, event: Event) -> list[Event]:
        """Publish ``event``; return the full cascade (including ``event``)."""
        cascade: list[Event] = []
        frontier = [event]
        depth = 0
        while frontier and depth < self.max_cascade_depth:
            next_frontier: list[Event] = []
            for current in frontier:
                cascade.append(current)
                self.published += 1
                if self.keep_history:
                    self.history.append(current)
                for pattern, handler in self._handlers:
                    if current.matches_topic(pattern):
                        handler(current)
                for rule in self._rules:
                    if rule.applies_to(current):
                        rule.fired += 1
                        produced = rule.action(current)
                        if produced:
                            next_frontier.extend(produced)
            frontier = next_frontier
            depth += 1
        return cascade

    def events_on(self, topic_pattern: str) -> list[Event]:
        """All historical events matching ``topic_pattern``."""
        return [e for e in self.history if e.matches_topic(topic_pattern)]

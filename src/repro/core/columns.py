"""Columnar record batches: the vectorized ingest unit (ROADMAP item 2).

The per-record pipeline moves one Python object per observation through
gateway → platform → storage; at deluge rates the object churn itself
becomes the bottleneck.  A :class:`RecordBatch` moves one *tick* of
observations as parallel arrays — keys, numeric payload columns,
timestamps, space tags — so the hot path can aggregate, route, and
persist with numpy kernels and one bulk storage call instead of N.

The batch is convertible to and from the per-record representation
(:meth:`from_records` / :meth:`to_records`), and the platform's batch
ingest is required to leave *byte-identical* stored state to the
per-record path over the same rows (property-tested in
``tests/test_batch_hotpath.py``): columnar is a wire/compute format, not
a different data model.  Payload columns keep their integer/float dtype
so round-tripped payload dicts preserve ``int`` vs ``float`` exactly.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from .errors import ConfigurationError
from .records import DataKind, DataRecord, Space

#: Space codes used in the ``spaces`` column (index == code).
_SPACES = (Space.PHYSICAL, Space.VIRTUAL)
_SPACE_CODE = {space: code for code, space in enumerate(_SPACES)}


def _column_array(values: Sequence) -> np.ndarray:
    """Array for one payload column, preserving int-ness exactly.

    Columns must be homogeneous (all int or all float): a mixed column
    would silently widen ints to floats and break the byte-identical
    round trip the batch path guarantees against the per-record path.
    """
    for v in values:
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            raise ConfigurationError(
                "columnar payload fields must be int or float"
            )
    if all(isinstance(v, int) for v in values):
        return np.asarray(values, dtype=np.int64)
    if not all(isinstance(v, float) for v in values):
        raise ConfigurationError(
            "mixed int/float column; cast to one type before batching"
        )
    return np.asarray(values, dtype=np.float64)


class RecordBatch:
    """One tick's observations as parallel columns.

    ``keys`` is a list of record keys; ``columns`` maps payload field
    names to numeric arrays (all the same length as ``keys``);
    ``timestamps`` and ``spaces`` (codes into physical/virtual) are
    per-row arrays; ``kind``/``source`` are batch-wide (a batch is one
    sensor stream).  ``groups`` optionally tags each row with its
    device-side aggregation group (see
    :meth:`~repro.platform.gateway.DeviceGateway.flush_batch`).
    """

    __slots__ = ("keys", "columns", "timestamps", "spaces", "kind",
                 "source", "groups")

    def __init__(
        self,
        keys: Sequence[str],
        columns: Mapping[str, np.ndarray | Sequence[float]],
        timestamps: np.ndarray | Sequence[float],
        spaces: np.ndarray | Space | None = None,
        kind: DataKind = DataKind.SENSOR,
        source: str = "unknown",
        groups: Sequence[str] | None = None,
    ) -> None:
        self.keys = list(keys)
        n = len(self.keys)
        self.columns: dict[str, np.ndarray] = {}
        for name, values in columns.items():
            arr = (values if isinstance(values, np.ndarray)
                   else _column_array(list(values)))
            if len(arr) != n:
                raise ConfigurationError(
                    f"column {name!r} has {len(arr)} rows, expected {n}"
                )
            self.columns[name] = arr
        self.timestamps = np.asarray(timestamps, dtype=np.float64)
        if len(self.timestamps) != n:
            raise ConfigurationError("timestamps length mismatch")
        if spaces is None:
            spaces = Space.PHYSICAL
        if isinstance(spaces, Space):
            self.spaces = np.full(n, _SPACE_CODE[spaces], dtype=np.uint8)
        else:
            self.spaces = np.asarray(spaces, dtype=np.uint8)
            if len(self.spaces) != n:
                raise ConfigurationError("spaces length mismatch")
        self.kind = kind
        self.source = source
        self.groups = list(groups) if groups is not None else None
        if self.groups is not None and len(self.groups) != n:
            raise ConfigurationError("groups length mismatch")

    def __len__(self) -> int:
        return len(self.keys)

    # -- conversion ---------------------------------------------------------

    @classmethod
    def from_records(cls, records: Sequence[DataRecord]) -> "RecordBatch":
        """Columnarize uniform records (same payload fields/kind/source)."""
        if not records:
            raise ConfigurationError("cannot columnarize an empty batch")
        first = records[0]
        fields = list(first.payload)
        for record in records:
            if list(record.payload) != fields:
                raise ConfigurationError(
                    "records in a batch must share payload fields"
                )
        return cls(
            keys=[r.key for r in records],
            columns={
                name: _column_array([r.payload[name] for r in records])
                for name in fields
            },
            timestamps=[r.timestamp for r in records],
            spaces=np.asarray(
                [_SPACE_CODE[r.space] for r in records], dtype=np.uint8
            ),
            kind=first.kind,
            source=first.source,
        )

    def payloads(self) -> list[dict]:
        """Per-row payload dicts, bit-exact vs the per-record path.

        ``ndarray.tolist`` converts whole columns to Python scalars in C
        (exact for float64/int64), so rebuilding N dicts costs one pass
        of dict construction instead of N·F array indexings.
        """
        cols = [(name, arr.tolist()) for name, arr in self.columns.items()]
        return [
            {name: values[i] for name, values in cols}
            for i in range(len(self.keys))
        ]

    def space_values(self) -> list[Space]:
        """Per-row :class:`Space` tags."""
        return [_SPACES[code] for code in self.spaces.tolist()]

    def to_records(self) -> list[DataRecord]:
        """Expand into per-record form (the equivalence baseline)."""
        payloads = self.payloads()
        spaces = self.space_values()
        times = self.timestamps.tolist()
        return [
            DataRecord(
                key=key, payload=payload, space=space, timestamp=ts,
                kind=self.kind, source=self.source,
            )
            for key, payload, space, ts in zip(
                self.keys, payloads, spaces, times
            )
        ]

    def take(self, indices: Sequence[int]) -> "RecordBatch":
        """Row subset in the given order (e.g. after fault-drop masking)."""
        idx = np.asarray(indices, dtype=np.intp)
        return RecordBatch(
            keys=[self.keys[i] for i in indices],
            columns={name: arr[idx] for name, arr in self.columns.items()},
            timestamps=self.timestamps[idx],
            spaces=self.spaces[idx],
            kind=self.kind,
            source=self.source,
            groups=(
                None if self.groups is None
                else [self.groups[i] for i in indices]
            ),
        )

    @classmethod
    def concat(cls, batches: Iterable["RecordBatch"]) -> "RecordBatch":
        """Stitch same-shaped batches into one (buffered tick flush)."""
        batches = list(batches)
        if not batches:
            raise ConfigurationError("cannot concat zero batches")
        if len(batches) == 1:
            return batches[0]
        first = batches[0]
        fields = list(first.columns)
        for batch in batches[1:]:
            if list(batch.columns) != fields:
                raise ConfigurationError(
                    "concat requires identical column sets"
                )
        keys: list[str] = []
        groups: list[str] | None = [] if first.groups is not None else None
        for batch in batches:
            keys.extend(batch.keys)
            if groups is not None:
                if batch.groups is None:
                    raise ConfigurationError(
                        "cannot concat grouped and ungrouped batches"
                    )
                groups.extend(batch.groups)
        return cls(
            keys=keys,
            columns={
                name: np.concatenate([b.columns[name] for b in batches])
                for name in fields
            },
            timestamps=np.concatenate([b.timestamps for b in batches]),
            spaces=np.concatenate([b.spaces for b in batches]),
            kind=first.kind,
            source=first.source,
            groups=groups,
        )

    def describe(self) -> dict:
        return {
            "rows": len(self.keys),
            "columns": list(self.columns),
            "kind": self.kind.value,
            "source": self.source,
        }

"""Typed data records, schemas, and space tagging.

The paper (Sec. III) observes that metaverse data is heterogeneous: static
and dynamic, structured and unstructured, and originates from two spaces.
``DataRecord`` is the unit that flows through every pipeline in this
library; it carries a :class:`Space` tag (Sec. IV-F "Organization of Data"),
a timestamp, and a free-form payload validated against an optional
:class:`Schema`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from .errors import SchemaError


class Space(enum.Enum):
    """Which half of the metaverse a datum belongs to (paper Fig. 1)."""

    PHYSICAL = "physical"
    VIRTUAL = "virtual"

    @property
    def other(self) -> "Space":
        """The opposite space; used when mirroring data across the boundary."""
        return Space.VIRTUAL if self is Space.PHYSICAL else Space.PHYSICAL


class DataKind(enum.Enum):
    """Coarse data modality, used by space-aware caching and degradation."""

    STRUCTURED = "structured"
    TEXT = "text"
    LOCATION = "location"
    SENSOR = "sensor"
    MEDIA = "media"
    EVENT = "event"


@dataclass(frozen=True)
class FieldSpec:
    """One field of a :class:`Schema`.

    ``types`` is the tuple of accepted Python types; ``required`` fields must
    be present in every record.
    """

    name: str
    types: tuple[type, ...]
    required: bool = True

    def validate(self, payload: Mapping[str, Any]) -> None:
        if self.name not in payload:
            if self.required:
                raise SchemaError(f"missing required field {self.name!r}")
            return
        value = payload[self.name]
        if not isinstance(value, self.types):
            expected = "/".join(t.__name__ for t in self.types)
            raise SchemaError(
                f"field {self.name!r} expects {expected}, got {type(value).__name__}"
            )


class Schema:
    """A named, ordered collection of :class:`FieldSpec`.

    Schemas are intentionally lightweight — the platform is schema-on-read
    for most streams (paper Sec. IV-G), but typed ingestion points (e.g. the
    relational side of fusion) use them to reject malformed inputs early.
    """

    def __init__(self, name: str, fields: Iterable[FieldSpec]) -> None:
        self.name = name
        self.fields = tuple(fields)
        self._by_name = {f.name: f for f in self.fields}
        if len(self._by_name) != len(self.fields):
            raise SchemaError(f"schema {name!r} has duplicate field names")

    def field(self, name: str) -> FieldSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"schema {self.name!r} has no field {name!r}") from None

    def validate(self, payload: Mapping[str, Any]) -> None:
        """Raise :class:`SchemaError` if ``payload`` violates this schema."""
        for spec in self.fields:
            spec.validate(payload)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __repr__(self) -> str:
        return f"Schema({self.name!r}, {[f.name for f in self.fields]})"


_record_ids = itertools.count(1)


@dataclass(slots=True)
class DataRecord:
    """The unit of data flowing through the platform.

    Attributes
    ----------
    key:
        Logical identity (entity id, product id, sensor id ...).
    payload:
        The actual values.  For ``DataKind.MEDIA`` this is metadata plus a
        ``size_bytes`` field; raw media bytes never flow through the control
        plane.
    space:
        Originating space; preserved across mirroring so consumers can apply
        space-aware policies (Sec. IV-F/IV-G).
    timestamp:
        Simulated event time in seconds.
    kind:
        Coarse modality tag.
    source:
        Identifier of the producing source/adapter (used by fusion).
    """

    key: str
    payload: dict[str, Any]
    space: Space = Space.PHYSICAL
    timestamp: float = 0.0
    kind: DataKind = DataKind.STRUCTURED
    source: str = "unknown"
    record_id: int = field(default_factory=lambda: next(_record_ids))

    def mirrored(self, timestamp: float | None = None) -> "DataRecord":
        """A copy of this record tagged for the *other* space.

        Mirroring is how the twin model synchronizes the two halves of the
        metaverse; the mirror keeps the source space's payload but flips the
        space tag and (optionally) re-stamps time.
        """
        return DataRecord(
            key=self.key,
            payload=dict(self.payload),
            space=self.space.other,
            timestamp=self.timestamp if timestamp is None else timestamp,
            kind=self.kind,
            source=self.source,
        )

    def size_bytes(self) -> int:
        """Approximate wire size, used by the simulated network.

        Media records carry an explicit ``size_bytes`` payload entry; other
        records are estimated from their payload repr length plus a fixed
        header.
        """
        explicit = self.payload.get("size_bytes")
        if isinstance(explicit, (int, float)) and explicit >= 0:
            return int(explicit)
        return 48 + len(repr(self.payload))

    def age(self, now: float) -> float:
        """Seconds since this record's event time."""
        return max(0.0, now - self.timestamp)

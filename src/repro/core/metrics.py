"""Lightweight metrics: counters, gauges, and histograms.

Every subsystem reports into a :class:`MetricsRegistry` so that benchmarks
and integration tests can assert on behaviour (messages sent, cache hits,
staleness distributions) without reaching into private state.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field

from .errors import ConfigurationError


@dataclass
class Counter:
    """A monotonically increasing count."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge instead")
        self.value += amount


@dataclass
class Gauge:
    """A value that can go up and down."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount


@dataclass(frozen=True)
class HistogramWindow:
    """An immutable view over the most recent samples of a :class:`Histogram`.

    Control loops polling a long-lived histogram (see
    :mod:`repro.cluster.elasticity`) must react to *recent* load, not
    lifetime quantiles — a p95 over every sample since boot never comes
    back down after one burst.  :meth:`Histogram.window` snapshots the
    last ``n`` samples into this view; later observations on the parent
    histogram do not change an already-taken window.
    """

    samples: tuple[float, ...]

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def quantile(self, q: float) -> float:
        """Exact q-quantile over the window; same interpolation — and the
        same empty-window :class:`ConfigurationError` — as the parent
        histogram, so windowed and lifetime reads never disagree on
        semantics."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.samples:
            raise ConfigurationError(
                f"quantile({q}) of an empty window is undefined; "
                "check .count before querying"
            )
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        pos = q * (len(ordered) - 1)
        lo = int(math.floor(pos))
        hi = int(math.ceil(pos))
        if lo == hi:
            return ordered[lo]
        frac = pos - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    def p50(self) -> float:
        return self.quantile(0.50)

    def p95(self) -> float:
        return self.quantile(0.95)

    def p99(self) -> float:
        return self.quantile(0.99)


@dataclass
class Histogram:
    """Streaming distribution summary; stores all samples for exact quantiles.

    Sample counts in this library top out in the millions, so exact storage
    is fine and keeps quantile semantics unambiguous in tests.  Callers
    that need *recent* behaviour rather than lifetime distributions (the
    elasticity control loop) read through :meth:`window` instead of
    :meth:`quantile`.
    """

    samples: list[float] = field(default_factory=list)
    # Cached sorted view for quantile queries; repeated p50/p95/p99 reads
    # between observations (snapshot(), benchmark reports) would otherwise
    # re-sort the full sample list each call.
    _sorted: list[float] | None = field(default=None, repr=False, compare=False)

    def observe(self, value: float) -> None:
        self.samples.append(float(value))
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    def stddev(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        mean = self.mean
        var = sum((s - mean) ** 2 for s in self.samples) / (len(self.samples) - 1)
        return math.sqrt(var)

    def quantile(self, q: float) -> float:
        """Exact q-quantile via linear interpolation (q in [0, 1]).

        Raises :class:`ConfigurationError` when the histogram is empty: a
        quantile of nothing has no value, and silently returning 0.0 (the
        old behaviour) let latency regressions masquerade as perfect runs.
        Callers that can tolerate absence should check :attr:`count` first.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.samples:
            raise ConfigurationError(
                f"quantile({q}) of an empty histogram is undefined; "
                "check .count before querying"
            )
        # Guard against out-of-band mutation of .samples (public field):
        # the cache is only trusted while the lengths agree.
        if self._sorted is None or len(self._sorted) != len(self.samples):
            self._sorted = sorted(self.samples)
        ordered = self._sorted
        if len(ordered) == 1:
            return ordered[0]
        pos = q * (len(ordered) - 1)
        lo = int(math.floor(pos))
        hi = int(math.ceil(pos))
        if lo == hi:
            return ordered[lo]
        frac = pos - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    def p50(self) -> float:
        return self.quantile(0.50)

    def p95(self) -> float:
        return self.quantile(0.95)

    def p99(self) -> float:
        return self.quantile(0.99)

    def window(self, n: int) -> HistogramWindow:
        """A bounded view over the last ``min(n, count)`` samples.

        The view is a snapshot: O(n) memory regardless of histogram
        length, and immutable — observations after the call do not leak
        into it.  Taking a window neither invalidates nor populates the
        sorted-view cache quantile queries use.
        """
        if n < 1:
            raise ConfigurationError(f"window size must be >= 1, got {n}")
        return HistogramWindow(tuple(self.samples[-n:]))


class MetricsRegistry:
    """Namespace of metrics, keyed by dotted names.

    Accessors create the metric on first use, so instrumented code never has
    to pre-declare; tests read the same names.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = defaultdict(Counter)
        self._gauges: dict[str, Gauge] = defaultdict(Gauge)
        self._histograms: dict[str, Histogram] = defaultdict(Histogram)

    def counter(self, name: str) -> Counter:
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        return self._histograms[name]

    def all_counters(self) -> dict[str, Counter]:
        """Read-only view of every counter, for exporters."""
        return dict(self._counters)

    def all_gauges(self) -> dict[str, Gauge]:
        return dict(self._gauges)

    def all_histograms(self) -> dict[str, Histogram]:
        return dict(self._histograms)

    def snapshot(self) -> dict[str, float]:
        """Flat {name: value} view; histograms export count/mean/p99.

        Empty histograms export only their count: quantiles of no samples
        are undefined (see :meth:`Histogram.quantile`).
        """
        out: dict[str, float] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, histogram in self._histograms.items():
            out[f"{name}.count"] = float(histogram.count)
            if histogram.count:
                out[f"{name}.mean"] = histogram.mean
                out[f"{name}.p99"] = histogram.p99()
        return out

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

"""Exception hierarchy for the repro metaverse data platform.

Every subsystem raises subclasses of :class:`ReproError` so that callers can
catch platform errors without also swallowing programming errors such as
``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the platform."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class SchemaError(ReproError):
    """A record does not conform to its declared schema."""


class StorageError(ReproError):
    """A storage engine operation failed (missing key, corrupt page, ...)."""


class KeyNotFoundError(StorageError):
    """Lookup of a key that is not present in a store."""

    def __init__(self, key: object) -> None:
        super().__init__(f"key not found: {key!r}")
        self.key = key


class TransactionError(ReproError):
    """A transaction could not proceed."""


class TransactionAborted(TransactionError):
    """The transaction was aborted (conflict, deadlock, or explicit abort)."""


class DeadlockError(TransactionAborted):
    """The transaction was chosen as a deadlock victim."""


class WriteConflictError(TransactionAborted):
    """A concurrent transaction committed a conflicting write first."""


class NetworkError(ReproError):
    """A simulated network operation failed."""


class PartitionedError(NetworkError):
    """The destination is unreachable due to a simulated partition."""


class QueryError(ReproError):
    """A query is malformed or cannot be planned."""


class PlanningError(QueryError):
    """The optimizer could not produce a feasible plan."""


class LedgerError(ReproError):
    """A verifiable-ledger operation failed."""


class ProofVerificationError(LedgerError):
    """A cryptographic proof failed to verify."""


class PrivacyBudgetExceeded(ReproError):
    """A differentially private query would exceed the remaining budget."""


class EnclaveError(ReproError):
    """A TEE enclave operation failed (e.g. memory ceiling exceeded)."""


class FusionError(ReproError):
    """Data fusion could not reconcile the supplied observations."""


class ResilienceError(ReproError):
    """A fault-injection or recovery-policy operation failed."""


class FaultInjectedError(ResilienceError):
    """A deterministic injected fault fired at an instrumented site.

    Raised by components consulting a
    :class:`~repro.resilience.faults.FaultInjector` when a ``crash`` fault
    fires; retry policies treat it as transient by default.
    """


class CircuitOpenError(ResilienceError):
    """A call was rejected because its circuit breaker is open."""


class DeadlineExceededError(ResilienceError):
    """An operation exceeded its timeout budget."""

"""Simulation time and a discrete-event scheduler.

The whole platform runs on *simulated* time so that experiments are
deterministic and fast: a ``SimulationClock`` is advanced explicitly, and a
``EventScheduler`` dispatches callbacks in timestamp order.  Components that
need "now" take a clock (or a plain ``time_fn``) instead of calling
``time.time()`` so tests can control time precisely.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from .errors import ConfigurationError


class SimulationClock:
    """A monotonically advancing simulated clock.

    Time is a float in seconds.  ``advance`` moves time forward; moving
    backwards raises :class:`ConfigurationError` because event ordering
    everywhere relies on monotonicity.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` seconds and return the new time."""
        if delta < 0:
            raise ConfigurationError(f"cannot advance clock by {delta} (< 0)")
        self._now += delta
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move time forward to ``timestamp`` (no-op if already past it)."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def __call__(self) -> float:
        """Allow a clock to be used directly as a ``time_fn``."""
        return self._now

    def __repr__(self) -> str:
        return f"SimulationClock(now={self._now:.6f})"


@dataclass(order=True)
class _ScheduledEvent:
    """Internal heap entry: ordered by (time, sequence number)."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`EventScheduler.schedule`; allows cancelling."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Cancel the event; cancelled events are skipped at dispatch time."""
        self._event.cancelled = True


class EventScheduler:
    """A discrete-event scheduler bound to a :class:`SimulationClock`.

    Events scheduled for the same instant run in scheduling order (FIFO),
    which keeps simulations deterministic.
    """

    def __init__(self, clock: SimulationClock | None = None) -> None:
        self.clock = clock if clock is not None else SimulationClock()
        self._heap: list[_ScheduledEvent] = []
        self._seq = itertools.count()

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ConfigurationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.clock.now + delay, callback)

    def schedule_at(self, timestamp: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulated ``timestamp``."""
        if timestamp < self.clock.now:
            raise ConfigurationError(
                f"cannot schedule at {timestamp} before now={self.clock.now}"
            )
        event = _ScheduledEvent(timestamp, next(self._seq), callback)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def __len__(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    @property
    def next_event_time(self) -> float | None:
        """Timestamp of the earliest pending event, or None if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def run_until(self, timestamp: float) -> int:
        """Dispatch every event with time <= ``timestamp``; return the count.

        The clock is advanced to each event's time as it dispatches, and to
        ``timestamp`` at the end, so callbacks observe consistent "now".
        """
        dispatched = 0
        while self._heap and self._heap[0].time <= timestamp:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            event.callback()
            dispatched += 1
        self.clock.advance_to(timestamp)
        return dispatched

    def run_for(self, duration: float) -> int:
        """Dispatch everything within the next ``duration`` seconds."""
        return self.run_until(self.clock.now + duration)

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Dispatch until the queue is empty (bounded by ``max_events``)."""
        dispatched = 0
        while self._heap and dispatched < max_events:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            event.callback()
            dispatched += 1
        return dispatched

"""Replication and consensus cost models (paper Sec. IV-D).

"Decentralization requires the computation to be byzantine faulty tolerant,
which introduces a huge cost in replication and consensus modeling."  This
module quantifies that cost for experiment E8:

* :class:`PrimaryBackup` — crash-fault-tolerant baseline: primary fans a
  write to ``n-1`` backups, waits for a majority of acks (2 message delays,
  O(n) messages).
* :class:`PbftQuorum` — byzantine-fault-tolerant: pre-prepare, prepare, and
  commit phases with all-to-all exchanges (3 message delays, O(n^2)
  messages), requiring ``n >= 3f + 1`` replicas to tolerate ``f`` byzantine
  faults.

Both run over the simulated network so latency is measured rather than
assumed, and both expose analytic message counts for cross-checking.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigurationError
from ..net.simnet import Message, SimulatedNetwork


@dataclass
class ConsensusOutcome:
    committed: bool
    latency: float
    messages: int


class PrimaryBackup:
    """Majority-ack primary/backup replication over the simulated network."""

    def __init__(self, network: SimulatedNetwork, n_replicas: int) -> None:
        if n_replicas < 1:
            raise ConfigurationError("need at least one replica")
        self.network = network
        self.n = n_replicas
        self.primary = network.add_node("pb-primary")
        self.backups = [network.add_node(f"pb-backup-{i}") for i in range(n_replicas - 1)]
        self._acks: set[str] = set()
        self.messages = 0
        for backup in self.backups:
            backup.on("replicate", self._make_backup_handler(backup))
        self.primary.on("ack", self._on_ack)

    def _make_backup_handler(self, backup):
        def handler(message: Message) -> None:
            self.messages += 1
            backup.send(message.src, "ack", {"from": backup.name})
        return handler

    def _on_ack(self, message: Message) -> None:
        self.messages += 1
        self._acks.add(message.payload["from"])

    @staticmethod
    def analytic_messages(n: int) -> int:
        """Replicate to n-1 backups + n-1 acks."""
        return 2 * (n - 1)

    def replicate(self, payload: dict) -> ConsensusOutcome:
        scheduler = self.network.scheduler
        start = scheduler.clock.now
        self._acks = set()
        sent = 0
        for backup in self.backups:
            self.primary.send(backup.name, "replicate", payload)
            sent += 1
        majority = self.n // 2  # acks needed beyond the primary's own vote
        while (
            len(self._acks) < majority and scheduler.next_event_time is not None
        ):
            scheduler.run_until(scheduler.next_event_time)
        committed = len(self._acks) >= majority
        return ConsensusOutcome(
            committed=committed,
            latency=scheduler.clock.now - start,
            messages=sent + len(self._acks),
        )


class PbftQuorum:
    """PBFT-shaped three-phase quorum (message pattern, not full protocol).

    Implements the normal-case message flow: the leader pre-prepares to all,
    every replica prepares to every other, then commits to every other; a
    request commits when ``2f + 1`` replicas report a commit quorum.  View
    changes and byzantine equivocation are out of scope — the experiment
    targets the *cost* of the quadratic exchange, which this reproduces
    exactly.
    """

    def __init__(self, network: SimulatedNetwork, f: int) -> None:
        if f < 1:
            raise ConfigurationError("f must be >= 1")
        self.f = f
        self.n = 3 * f + 1
        self.network = network
        self.replicas = [network.add_node(f"pbft-{i}") for i in range(self.n)]
        self._prepares: dict[int, set[str]] = {}
        self._commits: dict[int, set[str]] = {}
        self._committed_replicas: dict[int, set[str]] = {}
        self.messages = 0
        self._silent: set[str] = set()
        for replica in self.replicas:
            replica.on("pre-prepare", self._make_handler(replica, "prepare"))
            replica.on("prepare", self._make_prepare_handler(replica))
            replica.on("commit", self._make_commit_handler(replica))

    def silence(self, count: int) -> None:
        """Make ``count`` non-leader replicas unresponsive (crash faults)."""
        for replica in self.replicas[1 : 1 + count]:
            self._silent.add(replica.name)

    def _broadcast(self, sender, topic: str, payload: dict) -> None:
        for replica in self.replicas:
            if replica.name != sender.name:
                sender.send(replica.name, topic, payload)
                self.messages += 1

    def _make_handler(self, replica, next_topic: str):
        def handler(message: Message) -> None:
            if replica.name in self._silent:
                return
            self._broadcast(replica, next_topic, message.payload)
        return handler

    def _make_prepare_handler(self, replica):
        def handler(message: Message) -> None:
            if replica.name in self._silent:
                return
            seq = message.payload["seq"]
            prepared = self._prepares.setdefault((replica.name, seq), set())  # type: ignore[arg-type]
            prepared.add(message.src)
            # Quorum of 2f prepares counting the replica's own (which it does
            # not receive from the network): trigger at 2f - 1 from others.
            if len(prepared) == 2 * self.f - 1:
                self._broadcast(replica, "commit", message.payload)
        return handler

    def _make_commit_handler(self, replica):
        def handler(message: Message) -> None:
            if replica.name in self._silent:
                return
            seq = message.payload["seq"]
            commits = self._commits.setdefault((replica.name, seq), set())  # type: ignore[arg-type]
            commits.add(message.src)
            if len(commits) >= 2 * self.f:
                self._committed_replicas.setdefault(seq, set()).add(replica.name)
        return handler

    @staticmethod
    def analytic_messages(n: int) -> int:
        """Honest-case message count of this implementation's flow.

        pre-prepare: leader to n-1 replicas; prepare: the n-1 non-leader
        replicas each broadcast to n-1 peers; commit: all n replicas (the
        leader participates from the prepare phase on) broadcast to n-1
        peers.  Still Theta(n^2), the point of experiment E8.
        """
        return (n - 1) + (n - 1) * (n - 1) + n * (n - 1)

    def propose(self, seq: int, payload: dict | None = None) -> ConsensusOutcome:
        scheduler = self.network.scheduler
        start = scheduler.clock.now
        leader = self.replicas[0]
        body = dict(payload or {})
        body["seq"] = seq
        self._broadcast(leader, "pre-prepare", body)
        while scheduler.next_event_time is not None:
            scheduler.run_until(scheduler.next_event_time)
            if len(self._committed_replicas.get(seq, set())) >= 2 * self.f + 1:
                break
        committed = len(self._committed_replicas.get(seq, set())) >= 2 * self.f + 1
        return ConsensusOutcome(
            committed=committed,
            latency=scheduler.clock.now - start,
            messages=self.messages,
        )

"""Verifiable ledger: Merkle proofs, ledger database, consensus cost models."""

from .chain import Block, Blockchain, ChainTxn
from .consensus import ConsensusOutcome, PbftQuorum, PrimaryBackup
from .ledgerdb import Auditor, BlockHeader, LedgerDB, LedgerEntry, Receipt
from .merkle import (
    ConsistencyProof,
    InclusionProof,
    MerkleTree,
    verify_consistency,
    verify_inclusion,
)

__all__ = [
    "Auditor",
    "Block",
    "Blockchain",
    "ChainTxn",
    "BlockHeader",
    "ConsensusOutcome",
    "ConsistencyProof",
    "InclusionProof",
    "LedgerDB",
    "LedgerEntry",
    "MerkleTree",
    "PbftQuorum",
    "PrimaryBackup",
    "Receipt",
    "verify_consistency",
    "verify_inclusion",
]

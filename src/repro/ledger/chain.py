"""A blockchain for metaverse asset trading (paper Sec. IV-D).

"Blockchains can serve as the basis for connectivity in the metaverse to
make it open and decentralized. Transactions among different parties ...
can be permanently recorded and verifiable" — including the NFT trades of
the gaming/social scenario (Sec. II).

This is an account-model chain with two transaction types:

* ``transfer`` — move fungible balance between accounts;
* ``nft`` — mint or transfer a unique token (ownership tracked on-chain).

Blocks commit to their transactions with a Merkle root and hash-chain to
their parent; :meth:`Blockchain.validate_chain` re-verifies everything, and
invalid transactions (overspends, transfers of un-owned NFTs, double
spends) are rejected at append time and detected at audit time if injected
behind the validator's back.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from ..core.errors import LedgerError
from .merkle import MerkleTree


@dataclass(frozen=True)
class ChainTxn:
    """One transaction; exactly one of the two forms.

    transfer: sender/recipient/amount.  nft: token_id + recipient (mint when
    sender is None, transfer otherwise).
    """

    txn_id: int
    sender: str | None
    recipient: str
    amount: float = 0.0
    token_id: str | None = None

    def serialize(self) -> bytes:
        return json.dumps(
            {
                "id": self.txn_id,
                "from": self.sender,
                "to": self.recipient,
                "amount": self.amount,
                "token": self.token_id,
            },
            sort_keys=True,
        ).encode()

    @property
    def is_nft(self) -> bool:
        return self.token_id is not None


@dataclass(frozen=True)
class Block:
    height: int
    prev_hash: str
    txn_root: str
    txns: tuple[ChainTxn, ...]

    def block_hash(self) -> str:
        body = f"{self.height}|{self.prev_hash}|{self.txn_root}"
        return hashlib.sha256(body.encode()).hexdigest()

    @staticmethod
    def compute_txn_root(txns: tuple[ChainTxn, ...]) -> str:
        tree = MerkleTree()
        for txn in txns:
            tree.append(txn.serialize())
        return tree.root().hex()


@dataclass
class _State:
    balances: dict[str, float] = field(default_factory=dict)
    nft_owner: dict[str, str] = field(default_factory=dict)

    def copy(self) -> "_State":
        return _State(dict(self.balances), dict(self.nft_owner))


class Blockchain:
    """An append-only validated chain with account/NFT state."""

    GENESIS_HASH = "0" * 64

    def __init__(self, block_size: int = 8) -> None:
        if block_size < 1:
            raise LedgerError("block_size must be >= 1")
        self.block_size = block_size
        self.blocks: list[Block] = []
        self._pending: list[ChainTxn] = []
        self._state = _State()
        self._txn_ids = 0
        self.rejected: list[tuple[ChainTxn, str]] = []

    # -- state access ---------------------------------------------------------

    def balance(self, account: str) -> float:
        return self._state.balances.get(account, 0.0)

    def owner_of(self, token_id: str) -> str | None:
        return self._state.nft_owner.get(token_id)

    # -- transaction submission --------------------------------------------------

    def faucet(self, account: str, amount: float) -> None:
        """Genesis-style credit (out-of-band issuance for simulations)."""
        if amount <= 0:
            raise LedgerError("faucet amount must be positive")
        self._state.balances[account] = self.balance(account) + amount

    def submit_transfer(self, sender: str, recipient: str, amount: float) -> ChainTxn:
        self._txn_ids += 1
        txn = ChainTxn(self._txn_ids, sender, recipient, amount=amount)
        error = self._validate(txn, self._state)
        if error:
            self.rejected.append((txn, error))
            raise LedgerError(error)
        self._apply(txn, self._state)
        self._enqueue(txn)
        return txn

    def submit_nft(self, sender: str | None, recipient: str, token_id: str) -> ChainTxn:
        """Mint (sender None) or transfer an NFT."""
        self._txn_ids += 1
        txn = ChainTxn(self._txn_ids, sender, recipient, token_id=token_id)
        error = self._validate(txn, self._state)
        if error:
            self.rejected.append((txn, error))
            raise LedgerError(error)
        self._apply(txn, self._state)
        self._enqueue(txn)
        return txn

    def _enqueue(self, txn: ChainTxn) -> None:
        self._pending.append(txn)
        if len(self._pending) >= self.block_size:
            self.seal_block()

    def seal_block(self) -> Block | None:
        if not self._pending:
            return None
        txns = tuple(self._pending)
        block = Block(
            height=len(self.blocks),
            prev_hash=self.blocks[-1].block_hash() if self.blocks else self.GENESIS_HASH,
            txn_root=Block.compute_txn_root(txns),
            txns=txns,
        )
        self.blocks.append(block)
        self._pending = []
        return block

    # -- validation ------------------------------------------------------------

    @staticmethod
    def _validate(txn: ChainTxn, state: _State) -> str | None:
        if txn.is_nft:
            assert txn.token_id is not None
            owner = state.nft_owner.get(txn.token_id)
            if txn.sender is None:
                if owner is not None:
                    return f"token {txn.token_id!r} already minted"
                return None
            if owner != txn.sender:
                return f"{txn.sender} does not own {txn.token_id!r}"
            return None
        if txn.sender is None:
            return "transfers need a sender"
        if txn.amount <= 0:
            return "amount must be positive"
        if state.balances.get(txn.sender, 0.0) < txn.amount:
            return f"{txn.sender} has insufficient balance"
        return None

    @staticmethod
    def _apply(txn: ChainTxn, state: _State) -> None:
        if txn.is_nft:
            assert txn.token_id is not None
            state.nft_owner[txn.token_id] = txn.recipient
            return
        assert txn.sender is not None
        state.balances[txn.sender] -= txn.amount
        state.balances[txn.recipient] = state.balances.get(txn.recipient, 0.0) + txn.amount

    def validate_chain(self, initial_balances: dict[str, float] | None = None) -> bool:
        """Re-verify hashes, Merkle roots, and every transaction's legality.

        ``initial_balances`` reproduces faucet issuance for replay; defaults
        to "infinitely funded" accounts being disallowed, i.e. the caller
        should pass the same issuance used originally.
        """
        state = _State(balances=dict(initial_balances or {}))
        prev = self.GENESIS_HASH
        for block in self.blocks:
            if block.prev_hash != prev:
                return False
            if Block.compute_txn_root(block.txns) != block.txn_root:
                return False
            for txn in block.txns:
                if self._validate(txn, state) is not None:
                    return False
                self._apply(txn, state)
            prev = block.block_hash()
        return True

    def provenance(self, token_id: str) -> list[ChainTxn]:
        """The full on-chain ownership history of an NFT."""
        out = []
        for block in self.blocks:
            out.extend(t for t in block.txns if t.token_id == token_id)
        out.extend(t for t in self._pending if t.token_id == token_id)
        return out

"""Merkle tree with inclusion and consistency proofs (paper Sec. IV-D).

"The system may combine efficient cryptographic techniques, often found in
authenticated data structures such as the Merkle Tree, and transparency
logs."  This is an RFC-6962-style (Certificate Transparency) Merkle tree
over an append-only leaf sequence:

* :meth:`MerkleTree.root` — the tree head over the current leaves;
* :meth:`MerkleTree.inclusion_proof` / :func:`verify_inclusion` — prove one
  leaf is covered by a head with an O(log n) audit path;
* :meth:`MerkleTree.consistency_proof` / :func:`verify_consistency` — prove
  a later head extends an earlier one (append-only-ness), also O(log n).

Leaf and node hashes are domain-separated (0x00 / 0x01 prefixes) to prevent
second-preimage splicing.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..core.errors import LedgerError, ProofVerificationError


def _leaf_hash(data: bytes) -> bytes:
    return hashlib.sha256(b"\x00" + data).digest()


def _node_hash(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(b"\x01" + left + right).digest()


def _root_of(hashes: list[bytes]) -> bytes:
    """RFC 6962 Merkle tree hash of a leaf-hash list."""
    if not hashes:
        return hashlib.sha256(b"").digest()
    if len(hashes) == 1:
        return hashes[0]
    k = _largest_power_of_two_below(len(hashes))
    return _node_hash(_root_of(hashes[:k]), _root_of(hashes[k:]))


def _largest_power_of_two_below(n: int) -> int:
    """Largest power of two strictly less than n (n >= 2)."""
    k = 1
    while k * 2 < n:
        k *= 2
    return k


@dataclass(frozen=True)
class InclusionProof:
    leaf_index: int
    tree_size: int
    audit_path: tuple[bytes, ...]

    @property
    def size_bytes(self) -> int:
        return sum(len(h) for h in self.audit_path)


@dataclass(frozen=True)
class ConsistencyProof:
    old_size: int
    new_size: int
    path: tuple[bytes, ...]

    @property
    def size_bytes(self) -> int:
        return sum(len(h) for h in self.path)


class MerkleTree:
    """Append-only Merkle tree over byte-string leaves."""

    def __init__(self) -> None:
        self._leaf_hashes: list[bytes] = []

    def __len__(self) -> int:
        return len(self._leaf_hashes)

    def append(self, data: bytes) -> int:
        """Append a leaf; returns its index."""
        if not isinstance(data, (bytes, bytearray)):
            raise LedgerError("leaf must be bytes")
        self._leaf_hashes.append(_leaf_hash(bytes(data)))
        return len(self._leaf_hashes) - 1

    def root(self, tree_size: int | None = None) -> bytes:
        """Tree head over the first ``tree_size`` leaves (default: all)."""
        size = len(self._leaf_hashes) if tree_size is None else tree_size
        if not 0 <= size <= len(self._leaf_hashes):
            raise LedgerError(f"invalid tree_size {size}")
        return _root_of(self._leaf_hashes[:size])

    # -- inclusion ------------------------------------------------------------

    def inclusion_proof(self, leaf_index: int, tree_size: int | None = None) -> InclusionProof:
        size = len(self._leaf_hashes) if tree_size is None else tree_size
        if not 0 <= leaf_index < size <= len(self._leaf_hashes):
            raise LedgerError(f"invalid leaf_index {leaf_index} for size {size}")
        path = self._audit_path(leaf_index, 0, size)
        return InclusionProof(leaf_index, size, tuple(path))

    def _audit_path(self, index: int, lo: int, hi: int) -> list[bytes]:
        """Audit path for leaf ``index`` within leaves [lo, hi)."""
        n = hi - lo
        if n <= 1:
            return []
        k = _largest_power_of_two_below(n)
        if index - lo < k:
            path = self._audit_path(index, lo, lo + k)
            path.append(_root_of(self._leaf_hashes[lo + k : hi]))
        else:
            path = self._audit_path(index, lo + k, hi)
            path.append(_root_of(self._leaf_hashes[lo : lo + k]))
        return path

    # -- consistency ------------------------------------------------------------

    def consistency_proof(self, old_size: int, new_size: int | None = None) -> ConsistencyProof:
        size = len(self._leaf_hashes) if new_size is None else new_size
        if not 0 < old_size <= size <= len(self._leaf_hashes):
            raise LedgerError(f"invalid sizes {old_size}/{size}")
        path = self._consistency(old_size, 0, size, True)
        return ConsistencyProof(old_size, size, tuple(path))

    def _consistency(self, m: int, lo: int, hi: int, old_is_complete: bool) -> list[bytes]:
        n = hi - lo
        if m == n:
            if old_is_complete:
                return []
            return [_root_of(self._leaf_hashes[lo:hi])]
        k = _largest_power_of_two_below(n)
        if m <= k:
            path = self._consistency(m, lo, lo + k, old_is_complete)
            path.append(_root_of(self._leaf_hashes[lo + k : hi]))
        else:
            path = self._consistency(m - k, lo + k, hi, False)
            path.append(_root_of(self._leaf_hashes[lo : lo + k]))
        return path


def verify_inclusion(
    leaf_data: bytes, proof: InclusionProof, expected_root: bytes
) -> bool:
    """Check that ``leaf_data`` at ``proof.leaf_index`` rolls up to the root."""
    node = _leaf_hash(leaf_data)
    index, size = proof.leaf_index, proof.tree_size
    lo, hi = 0, size
    # Recompute the split sequence the prover used, bottom-up.
    splits: list[tuple[bool, None]] = []
    while hi - lo > 1:
        k = _largest_power_of_two_below(hi - lo)
        if index - lo < k:
            splits.append((True, None))   # sibling is the right subtree
            hi = lo + k
        else:
            splits.append((False, None))  # sibling is the left subtree
            lo = lo + k
    if len(splits) != len(proof.audit_path):
        return False
    for (left_side, _), sibling in zip(reversed(splits), proof.audit_path):
        if left_side:
            node = _node_hash(node, sibling)
        else:
            node = _node_hash(sibling, node)
    return node == expected_root


def verify_consistency(
    old_root: bytes, new_root: bytes, proof: ConsistencyProof, tree: MerkleTree
) -> bool:
    """Check append-only consistency between two heads.

    For simplicity the verifier is given the tree (as an auditor with full
    access would be); it recomputes both heads and checks the proof hashes
    match the corresponding subtree roots, rejecting any history rewrite.
    """
    try:
        recomputed_old = tree.root(proof.old_size)
        recomputed_new = tree.root(proof.new_size)
    except LedgerError:
        return False
    if recomputed_old != old_root or recomputed_new != new_root:
        return False
    expected = tree.consistency_proof(proof.old_size, proof.new_size)
    return expected.path == proof.path


def tampered_proof_detected(proof: InclusionProof, leaf_data: bytes, root: bytes) -> bool:
    """Convenience: True when verification (correctly) fails."""
    try:
        return not verify_inclusion(leaf_data, proof, root)
    except ProofVerificationError:  # pragma: no cover - verify returns bool
        return True

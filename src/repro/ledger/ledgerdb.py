"""Verifiable ledger database (paper Sec. IV-D; [87], [90]).

"One possible solution is to use verifiable ledger database systems with a
trusted third party serving as the auditor."  :class:`LedgerDB` is an
append-only transaction log sealed into hash-chained blocks whose entries
live in a global Merkle tree:

* clients append transactions and later obtain *receipts* (inclusion proofs
  against a signed-equivalent tree head);
* an :class:`Auditor` keeps the latest head it has verified and accepts new
  heads only with a valid consistency proof — any history rewrite is caught;
* current key state is materialized so reads are O(1) while every state
  transition stays provable.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any

from ..core.errors import LedgerError
from ..core.metrics import MetricsRegistry
from ..obs.tracing import NoopTracer, Tracer
from .merkle import (
    ConsistencyProof,
    InclusionProof,
    MerkleTree,
    verify_consistency,
    verify_inclusion,
)


@dataclass(frozen=True)
class LedgerEntry:
    """One committed transaction record."""

    index: int
    timestamp: float
    operation: str     # "put" | "delete"
    key: str
    value: Any

    def serialize(self) -> bytes:
        return json.dumps(
            {
                "i": self.index,
                "t": self.timestamp,
                "op": self.operation,
                "k": self.key,
                "v": self.value,
            },
            sort_keys=True,
        ).encode("utf-8")


@dataclass(frozen=True)
class BlockHeader:
    """A sealed block: hash-chained and committing to the tree head."""

    height: int
    prev_hash: str
    tree_size: int
    tree_root: str
    entry_range: tuple[int, int]  # [start, end)

    def block_hash(self) -> str:
        body = f"{self.height}|{self.prev_hash}|{self.tree_size}|{self.tree_root}"
        return hashlib.sha256(body.encode()).hexdigest()


@dataclass(frozen=True)
class Receipt:
    """Client-held proof that an entry is in the ledger."""

    entry: LedgerEntry
    proof: InclusionProof
    tree_root: bytes


class LedgerDB:
    """Append-only verifiable key-value ledger."""

    def __init__(
        self,
        block_size: int = 16,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if block_size < 1:
            raise LedgerError("block_size must be >= 1")
        self.block_size = block_size
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NoopTracer()
        self.tree = MerkleTree()
        self.entries: list[LedgerEntry] = []
        self.blocks: list[BlockHeader] = []
        self._state: dict[str, Any] = {}
        self._unsealed = 0

    # -- writes ---------------------------------------------------------------

    def put(self, key: str, value: Any, timestamp: float = 0.0) -> LedgerEntry:
        return self._append("put", key, value, timestamp)

    def delete(self, key: str, timestamp: float = 0.0) -> LedgerEntry:
        return self._append("delete", key, None, timestamp)

    def _append(self, operation: str, key: str, value: Any, timestamp: float) -> LedgerEntry:
        with self.tracer.span("ledger.append", key=key):
            entry = LedgerEntry(
                index=len(self.entries),
                timestamp=timestamp,
                operation=operation,
                key=key,
                value=value,
            )
            self.entries.append(entry)
            self.tree.append(entry.serialize())
            if operation == "put":
                self._state[key] = value
            else:
                self._state.pop(key, None)
            self._unsealed += 1
            self.metrics.counter("ledger.appends").inc()
            if self._unsealed >= self.block_size:
                self.seal_block()
            return entry

    def seal_block(self) -> BlockHeader | None:
        """Seal pending entries into a block (no-op when nothing pending)."""
        if self._unsealed == 0:
            return None
        start = self.blocks[-1].entry_range[1] if self.blocks else 0
        header = BlockHeader(
            height=len(self.blocks),
            prev_hash=self.blocks[-1].block_hash() if self.blocks else "0" * 64,
            tree_size=len(self.tree),
            tree_root=self.tree.root().hex(),
            entry_range=(start, len(self.entries)),
        )
        self.blocks.append(header)
        self._unsealed = 0
        self.metrics.counter("ledger.blocks_sealed").inc()
        return header

    # -- reads -----------------------------------------------------------------

    def get(self, key: str) -> Any:
        if key not in self._state:
            raise LedgerError(f"key not found: {key!r}")
        return self._state[key]

    def get_or(self, key: str, default: Any = None) -> Any:
        return self._state.get(key, default)

    def history(self, key: str) -> list[LedgerEntry]:
        """Full provable history of one key."""
        return [e for e in self.entries if e.key == key]

    # -- proofs ------------------------------------------------------------------

    def receipt(self, index: int) -> Receipt:
        """Inclusion receipt for entry ``index`` against the current head."""
        if not 0 <= index < len(self.entries):
            raise LedgerError(f"no entry {index}")
        return Receipt(
            entry=self.entries[index],
            proof=self.tree.inclusion_proof(index),
            tree_root=self.tree.root(),
        )

    @staticmethod
    def verify_receipt(receipt: Receipt) -> bool:
        return verify_inclusion(
            receipt.entry.serialize(), receipt.proof, receipt.tree_root
        )

    def consistency_proof(self, old_size: int) -> ConsistencyProof:
        return self.tree.consistency_proof(old_size)

    def verify_chain(self) -> bool:
        """Recompute the block hash chain; False on any tampering."""
        prev = "0" * 64
        for block in self.blocks:
            if block.prev_hash != prev:
                return False
            prev = block.block_hash()
        return True


class Auditor:
    """A third-party auditor tracking the ledger's advertised heads.

    The auditor stores the last (size, root) it verified.  Each new head
    must come with a consistency proof; if the ledger operator rewrote
    history, verification fails and the auditor flags it.
    """

    def __init__(self, ledger: LedgerDB) -> None:
        self.ledger = ledger
        self.trusted_size = 0
        self.trusted_root: bytes | None = None
        self.checks = 0
        self.failures = 0

    def checkpoint(self) -> bool:
        """Verify the current head against the last trusted one."""
        self.checks += 1
        size = len(self.ledger.tree)
        root = self.ledger.tree.root()
        if self.trusted_root is None or self.trusted_size == 0:
            self.trusted_size, self.trusted_root = size, root
            return True
        if size < self.trusted_size:
            self.failures += 1
            return False
        proof = self.ledger.consistency_proof(self.trusted_size)
        ok = verify_consistency(self.trusted_root, root, proof, self.ledger.tree)
        if ok:
            self.trusted_size, self.trusted_root = size, root
        else:
            self.failures += 1
        return ok

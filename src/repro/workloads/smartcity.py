"""Smart-city sensor workload (paper Sec. II "Smart City").

A city-wide grid of traffic and air-quality sensors emitting periodic
readings with a diurnal load pattern.  This is the high-fan-in ingest
workload for the disaggregation experiment (E11): thousands of sensors,
each cheap, whose aggregate stream stresses the device-to-cloud uplink —
exactly the case where device-side (in-network) aggregation pays off
(paper Sec. III: "In-network processing may be needed to aggregate data
before transmission").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.errors import ConfigurationError
from ..core.records import DataKind, DataRecord, Space
from ..spatial.geometry import BBox, Point
from .movement import diurnal_rate


@dataclass
class CityConfig:
    area: BBox = field(default_factory=lambda: BBox(0, 0, 10_000, 10_000))
    grid_side: int = 20            # sensors per axis -> grid_side^2 sensors
    reading_interval_s: float = 10.0
    base_traffic: float = 50.0     # vehicles per interval at the mean

    def __post_init__(self) -> None:
        if self.grid_side < 1 or self.reading_interval_s <= 0:
            raise ConfigurationError("invalid city config")

    @property
    def n_sensors(self) -> int:
        return self.grid_side**2


class SensorGrid:
    """The city's sensor population."""

    def __init__(self, config: CityConfig | None = None, seed: int = 0) -> None:
        self.config = config if config is not None else CityConfig()
        self._rng = random.Random(seed)

    def sensor_id(self, gx: int, gy: int) -> str:
        return f"sensor-{gx:03d}-{gy:03d}"

    def sensor_position(self, gx: int, gy: int) -> Point:
        area = self.config.area
        side = self.config.grid_side
        return Point(
            area.x_min + (gx + 0.5) * area.width / side,
            area.y_min + (gy + 0.5) * area.height / side,
        )

    def readings_at(self, t: float) -> list[DataRecord]:
        """One reading per sensor at simulated time ``t`` (seconds)."""
        hour = (t / 3600.0) % 24.0
        rate = diurnal_rate(self.config.base_traffic, hour)
        out = []
        for gx in range(self.config.grid_side):
            for gy in range(self.config.grid_side):
                position = self.sensor_position(gx, gy)
                # Downtown (center) sensors see more traffic.
                center_boost = 1.0 + 1.0 / (
                    1.0 + position.distance_to(self.config.area.center) / 1000.0
                )
                traffic = max(0.0, rate * center_boost + self._rng.gauss(0, 5))
                air_quality = max(
                    0.0, 40.0 + traffic * 0.4 + self._rng.gauss(0, 3)
                )
                out.append(
                    DataRecord(
                        key=self.sensor_id(gx, gy),
                        payload={
                            "traffic": traffic,
                            "aqi": air_quality,
                            "x": position.x,
                            "y": position.y,
                        },
                        space=Space.PHYSICAL,
                        timestamp=t,
                        kind=DataKind.SENSOR,
                        source="city-grid",
                    )
                )
        return out

    def stream(self, duration_s: float, start_t: float = 0.0) -> list[DataRecord]:
        out: list[DataRecord] = []
        t = start_t
        while t < start_t + duration_s:
            out.extend(self.readings_at(t))
            t += self.config.reading_interval_s
        return out

    def district_of(self, record: DataRecord) -> str:
        """Coarse spatial rollup key (the device-side aggregation group)."""
        x = record.payload["x"]
        y = record.payload["y"]
        area = self.config.area
        dx = int((x - area.x_min) / area.width * 4)
        dy = int((y - area.y_min) / area.height * 4)
        return f"district-{min(dx, 3)}-{min(dy, 3)}"

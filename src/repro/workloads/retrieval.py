"""Text-to-scene retrieval workload (ROADMAP item 1).

A populated virtual scene — rooms full of describable objects ("red
wooden chair", "glass fountain") — plus the natural-language query
stream users aim at it ("find the blue lamp in the lobby").  Grounded in
"A Language-based solution to enable Metaverse Retrieval": users locate
metaverse content by describing it, not by knowing its key, so the
workload's records carry *describable* payloads (name, tags, room) that
:mod:`repro.semantic` embeds, alongside the x/y positions every other
modality expects.  This is the corpus and query driver for experiment
E31 (``benchmarks/bench_semantic.py``).

Everything derives from one seeded :class:`random.Random`: the same
config + seed yields byte-identical records and query phrases on every
host, which is what lets E31 pin recall/speedup numbers as exact gauges.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.errors import ConfigurationError
from ..core.records import DataKind, DataRecord, Space

#: Scene vocabulary: adjectives x materials x object nouns, placed in
#: rooms.  Wide enough (24 x 16 x 24 x 16 ~ 147k combinations) that a
#: 20k-object corpus rarely repeats a full description, which keeps
#: equal-score tie classes small relative to an ANN search beam.
ADJECTIVES = (
    "red", "blue", "green", "golden", "silver", "ancient", "tiny",
    "giant", "carved", "glowing", "broken", "ornate", "crimson", "pale",
    "striped", "dusty", "polished", "crooked", "floating", "enchanted",
    "rusty", "gilded", "cracked", "luminous",
)
MATERIALS = (
    "wooden", "stone", "glass", "metal", "marble", "velvet", "ceramic",
    "bamboo", "copper", "obsidian", "crystal", "leather", "porcelain",
    "granite", "ivory", "bronze",
)
NOUNS = (
    "chair", "table", "lamp", "statue", "vase", "carpet", "mirror",
    "fountain", "bookshelf", "painting", "throne", "chandelier", "clock",
    "globe", "harp", "tapestry", "urn", "pedestal", "cabinet", "bench",
    "telescope", "candelabra", "orrery", "sundial",
)
ROOMS = (
    "lobby", "kitchen", "garden", "library", "ballroom", "cellar",
    "observatory", "gallery", "atrium", "courtyard", "armory", "chapel",
    "solarium", "vault", "terrace", "workshop",
)


@dataclass(frozen=True)
class RetrievalConfig:
    """Shape of the scene corpus and its query stream."""

    n_objects: int = 1000
    n_queries: int = 100
    #: Scene extent: objects are placed uniformly in [0, area_side)^2.
    area_side: float = 1000.0
    #: Tokens per query phrase (drawn from the same vocabulary the
    #: objects describe themselves with, so queries have real matches).
    query_tokens: int = 3

    def __post_init__(self) -> None:
        if self.n_objects < 1:
            raise ConfigurationError("n_objects must be >= 1")
        if self.n_queries < 1:
            raise ConfigurationError("n_queries must be >= 1")
        if self.area_side <= 0:
            raise ConfigurationError("area_side must be positive")
        if self.query_tokens < 1:
            raise ConfigurationError("query_tokens must be >= 1")


class RetrievalWorkload:
    """Seeded generator for scene-object records and text queries."""

    def __init__(self, config: RetrievalConfig | None = None, seed: int = 0) -> None:
        self.config = config if config is not None else RetrievalConfig()
        self.seed = seed

    def object_key(self, i: int) -> str:
        return f"scene/obj/{i:06d}"

    def scene_records(self) -> list[DataRecord]:
        """The corpus: one describable object record per key.

        Payloads mix the semantic surface (``name``, ``tags``, ``room``
        strings) with the numeric surface (``x``/``y`` positions), so a
        single corpus serves the semantic, spatial, and prefix
        modalities at once.
        """
        rng = random.Random(f"{self.seed}:objects")  # str seeds are stable
        side = self.config.area_side
        out = []
        for i in range(self.config.n_objects):
            adjective = rng.choice(ADJECTIVES)
            material = rng.choice(MATERIALS)
            noun = rng.choice(NOUNS)
            room = rng.choice(ROOMS)
            out.append(
                DataRecord(
                    key=self.object_key(i),
                    payload={
                        "name": f"{adjective} {material} {noun}",
                        "tags": [adjective, material, noun],
                        "room": room,
                        "x": rng.uniform(0.0, side),
                        "y": rng.uniform(0.0, side),
                    },
                    space=Space.VIRTUAL,
                    timestamp=float(i),
                    kind=DataKind.STRUCTURED,
                    source="retrieval-workload",
                )
            )
        return out

    def query_texts(self) -> list[str]:
        """The query stream: natural-ish phrases over the scene vocabulary.

        Each phrase samples ``query_tokens`` words across the adjective /
        material / noun / room axes (always at least one noun, so every
        query names a thing), mirroring how a user would describe an
        object they remember.
        """
        rng = random.Random(f"{self.seed}:queries")
        axes = (ADJECTIVES, MATERIALS, ROOMS)
        out = []
        for _ in range(self.config.n_queries):
            tokens = [rng.choice(NOUNS)]
            for _ in range(self.config.query_tokens - 1):
                tokens.append(rng.choice(rng.choice(axes)))
            rng.shuffle(tokens)
            out.append(" ".join(tokens))
        return out

"""Synthetic workload generators for the five Section-II use cases."""

from .gaming import Capture, GameConfig, LocationBasedGame
from .healthcare import (
    AnomalyEpisode,
    SurgerySession,
    VitalsStream,
    is_anomalous,
)
from .marketplace import FlashSaleConfig, MarketplaceWorkload, PurchaseRequest
from .military import MilitaryConfig, MilitaryExercise
from .movement import PatrolRoute, RandomWaypoint, diurnal_rate, zipf_sampler
from .retrieval import RetrievalConfig, RetrievalWorkload
from .smartcity import CityConfig, SensorGrid

__all__ = [
    "AnomalyEpisode",
    "Capture",
    "CityConfig",
    "FlashSaleConfig",
    "GameConfig",
    "LocationBasedGame",
    "MarketplaceWorkload",
    "MilitaryConfig",
    "MilitaryExercise",
    "PatrolRoute",
    "PurchaseRequest",
    "RandomWaypoint",
    "RetrievalConfig",
    "RetrievalWorkload",
    "SensorGrid",
    "SurgerySession",
    "VitalsStream",
    "diurnal_rate",
    "is_anomalous",
    "zipf_sampler",
]

"""The metaverse marketplace workload (paper Sec. II "The Marketplace").

A mall with physical and virtual shoppers buying from a shared product
catalog.  The generator produces:

* a Zipf-skewed purchase stream — flash sales ("Black Friday", Sec. IV-E)
  concentrate demand on a few hot products, the contention driver for
  experiment E4;
* a burst arrival process: background rate with a configurable flash-sale
  window multiplier;
* inventory-update records tagged by originating space, so space-aware
  policies (physical shopper priority, Sec. IV-G) can be exercised.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.errors import ConfigurationError
from ..core.records import DataKind, DataRecord, Space
from .movement import zipf_sampler


@dataclass(frozen=True)
class PurchaseRequest:
    """One shopper attempting to buy one unit of one product."""

    shopper_id: str
    product_id: str
    space: Space
    timestamp: float
    quantity: int = 1


@dataclass(frozen=True)
class FlashSaleConfig:
    """Workload shape for a marketplace run."""

    n_products: int = 100
    n_shoppers: int = 500
    physical_fraction: float = 0.3
    zipf_skew: float = 1.2
    base_rate: float = 10.0          # requests per second off-peak
    burst_rate: float = 500.0        # requests per second during the sale
    burst_start: float = 60.0
    burst_end: float = 90.0
    initial_stock: int = 50

    def __post_init__(self) -> None:
        if not 0 <= self.physical_fraction <= 1:
            raise ConfigurationError("physical_fraction must be in [0, 1]")
        if self.n_products < 1 or self.n_shoppers < 1:
            raise ConfigurationError("need products and shoppers")
        if self.burst_start > self.burst_end:
            raise ConfigurationError("burst window inverted")


class MarketplaceWorkload:
    """Generates the purchase stream and catalog records."""

    def __init__(self, config: FlashSaleConfig, seed: int = 0) -> None:
        self.config = config
        self._rng = random.Random(seed)
        self._product_sampler = zipf_sampler(
            config.n_products, config.zipf_skew, seed=seed + 1
        )

    def product_id(self, index: int) -> str:
        return f"product-{index:05d}"

    def catalog_records(self) -> list[DataRecord]:
        """Initial inventory records (static data, physical space)."""
        return [
            DataRecord(
                key=self.product_id(i),
                payload={"stock": self.config.initial_stock, "price": 5.0 + i % 50},
                space=Space.PHYSICAL,
                kind=DataKind.STRUCTURED,
                source="catalog",
            )
            for i in range(self.config.n_products)
        ]

    def rate_at(self, t: float) -> float:
        if self.config.burst_start <= t < self.config.burst_end:
            return self.config.burst_rate
        return self.config.base_rate

    def requests_between(self, t_start: float, t_end: float) -> list[PurchaseRequest]:
        """Poisson arrivals over [t_start, t_end), thinning by the rate curve."""
        if t_end < t_start:
            raise ConfigurationError("window inverted")
        out: list[PurchaseRequest] = []
        max_rate = max(self.config.base_rate, self.config.burst_rate)
        t = t_start
        while True:
            if max_rate <= 0:
                break
            t += self._rng.expovariate(max_rate)
            if t >= t_end:
                break
            if self._rng.random() > self.rate_at(t) / max_rate:
                continue  # thinned away
            shopper_index = self._rng.randrange(self.config.n_shoppers)
            space = (
                Space.PHYSICAL
                if self._rng.random() < self.config.physical_fraction
                else Space.VIRTUAL
            )
            out.append(
                PurchaseRequest(
                    shopper_id=f"shopper-{shopper_index:05d}",
                    product_id=self.product_id(self._product_sampler()),
                    space=space,
                    timestamp=t,
                )
            )
        return out

    def hot_products(self, requests: list[PurchaseRequest], top: int = 5) -> list[str]:
        counts: dict[str, int] = {}
        for request in requests:
            counts[request.product_id] = counts.get(request.product_id, 0) + 1
        return [
            pid
            for pid, _ in sorted(counts.items(), key=lambda kv: -kv[1])[:top]
        ]

"""Smart-healthcare workload (paper Sec. II "Smart Healthcare").

Telemedicine vitals streams: each monitored patient emits heart rate,
SpO2, and blood pressure at a fixed cadence, with configurable anomaly
episodes (tachycardia, desaturation) that monitoring rules must catch.
Remote assisted surgery is modeled as a media session with a bitrate
ladder, feeding the approximation machinery (low-res fallback under
constrained bandwidth, Sec. IV-G).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..core.errors import ConfigurationError
from ..core.records import DataKind, DataRecord, Space


@dataclass(frozen=True)
class AnomalyEpisode:
    """A window during which a patient's vitals go abnormal."""

    patient_index: int
    start: float
    end: float
    kind: str  # "tachycardia" | "desaturation"

    def active(self, t: float) -> bool:
        return self.start <= t < self.end


class VitalsStream:
    """Periodic vitals for a patient cohort."""

    NORMAL_HR = 72.0
    NORMAL_SPO2 = 98.0

    def __init__(
        self,
        n_patients: int = 20,
        interval_s: float = 1.0,
        episodes: list[AnomalyEpisode] | None = None,
        seed: int = 0,
    ) -> None:
        if n_patients < 1 or interval_s <= 0:
            raise ConfigurationError("invalid vitals config")
        self.n_patients = n_patients
        self.interval_s = interval_s
        self.episodes = list(episodes or [])
        self._rng = random.Random(seed)

    def _episode_for(self, patient: int, t: float) -> AnomalyEpisode | None:
        for episode in self.episodes:
            if episode.patient_index == patient and episode.active(t):
                return episode
        return None

    def readings_at(self, t: float) -> list[DataRecord]:
        out = []
        for patient in range(self.n_patients):
            heart_rate = self.NORMAL_HR + 5 * math.sin(t / 30.0 + patient)
            spo2 = self.NORMAL_SPO2
            episode = self._episode_for(patient, t)
            if episode is not None:
                if episode.kind == "tachycardia":
                    heart_rate = 150.0 + self._rng.gauss(0, 5)
                elif episode.kind == "desaturation":
                    spo2 = 85.0 + self._rng.gauss(0, 2)
            out.append(
                DataRecord(
                    key=f"patient-{patient:03d}",
                    payload={
                        "heart_rate": heart_rate + self._rng.gauss(0, 1),
                        "spo2": spo2 + self._rng.gauss(0, 0.3),
                    },
                    space=Space.PHYSICAL,
                    timestamp=t,
                    kind=DataKind.SENSOR,
                    source="vitals-monitor",
                )
            )
        return out

    def stream(self, duration_s: float) -> list[DataRecord]:
        out: list[DataRecord] = []
        t = 0.0
        while t < duration_s:
            out.extend(self.readings_at(t))
            t += self.interval_s
        return out


def is_anomalous(record: DataRecord) -> bool:
    """The monitoring predicate: out-of-range vitals."""
    heart_rate = record.payload.get("heart_rate", 0.0)
    spo2 = record.payload.get("spo2", 100.0)
    return heart_rate > 120.0 or heart_rate < 45.0 or spo2 < 90.0


@dataclass(frozen=True)
class SurgerySession:
    """A remote assisted-surgery media session (paper Fig. 5)."""

    session_id: str
    required_bps: float = 25e6    # full-fidelity holographic feed
    fallback_bps: float = 4e6     # degraded but usable
    duration_s: float = 3600.0

    def feasible(self, available_bps: float) -> str | None:
        """'full' / 'fallback' / None given the available bandwidth."""
        if available_bps >= self.required_bps:
            return "full"
        if available_bps >= self.fallback_bps:
            return "fallback"
        return None

    def bytes_transferred(self, available_bps: float) -> float:
        mode = self.feasible(available_bps)
        if mode == "full":
            return self.required_bps / 8 * self.duration_s
        if mode == "fallback":
            return self.fallback_bps / 8 * self.duration_s
        return 0.0

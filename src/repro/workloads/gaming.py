"""Location-based gaming and social networking workload (paper Sec. II).

Players move through a city with GPS handsets (Pokemon-GO-style LBG); game
objects ("spawns") appear at locations; a player near a spawn captures it.
Social matching finds physical players near virtual friends — the paper's
cross-space encounter scenario — using the twin world's avatar index.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.errors import ConfigurationError
from ..core.records import DataKind, DataRecord, Space
from ..spatial.geometry import BBox, Point
from ..world.entities import Avatar, Entity
from ..world.twin import MetaverseWorld
from .movement import RandomWaypoint


@dataclass
class GameConfig:
    city: BBox = field(default_factory=lambda: BBox(0, 0, 2000, 2000))
    n_players: int = 200
    n_virtual_players: int = 100
    n_spawns: int = 50
    capture_radius: float = 20.0
    player_speed: tuple[float, float] = (1.0, 3.0)

    def __post_init__(self) -> None:
        if self.n_players < 1 or self.capture_radius <= 0:
            raise ConfigurationError("invalid game config")


@dataclass(frozen=True)
class Capture:
    player_id: str
    spawn_id: str
    timestamp: float


class LocationBasedGame:
    """Drives players and spawns over a :class:`MetaverseWorld`."""

    def __init__(
        self, world: MetaverseWorld, config: GameConfig | None = None, seed: int = 0
    ) -> None:
        self.world = world
        self.config = config if config is not None else GameConfig()
        self._rng = random.Random(seed)
        self._movers: dict[str, RandomWaypoint] = {}
        self.spawns: dict[str, Point] = {}
        self.captures: list[Capture] = []
        self._install_players()
        self._install_spawns()

    def _install_players(self) -> None:
        for i in range(self.config.n_players):
            player_id = f"player-{i:04d}"
            mover = RandomWaypoint(
                self.config.city,
                speed_range=self.config.player_speed,
                seed=self._rng.randrange(1 << 30),
            )
            self._movers[player_id] = mover
            self.world.physical.add(
                Entity(entity_id=player_id, position=mover.position, kind="player")
            )
        for i in range(self.config.n_virtual_players):
            avatar_id = f"vplayer-{i:04d}"
            self.world.virtual.add_avatar(
                Avatar(
                    avatar_id=avatar_id,
                    position=Point(
                        self._rng.uniform(self.config.city.x_min, self.config.city.x_max),
                        self._rng.uniform(self.config.city.y_min, self.config.city.y_max),
                    ),
                )
            )

    def _install_spawns(self) -> None:
        for i in range(self.config.n_spawns):
            self.spawns[f"spawn-{i:04d}"] = Point(
                self._rng.uniform(self.config.city.x_min, self.config.city.x_max),
                self._rng.uniform(self.config.city.y_min, self.config.city.y_max),
            )

    def tick(self, dt: float) -> list[Capture]:
        """Move players, resolve captures, sync the twin world."""
        for player_id, mover in self._movers.items():
            mover.step(dt)
            entity = self.world.physical.entities[player_id]
            entity.position = mover.position
            self.world.physical.index.move(player_id, entity.position)
        self.world.now += dt
        self.world.sync()
        captured = []
        for spawn_id, position in list(self.spawns.items()):
            nearby = self.world.physical.index.query_radius(
                position, self.config.capture_radius
            )
            if nearby:
                winner = min(nearby)  # deterministic tie-break
                capture = Capture(
                    player_id=winner, spawn_id=spawn_id, timestamp=self.world.now
                )
                self.captures.append(capture)
                captured.append(capture)
                del self.spawns[spawn_id]
                self._respawn()
        return captured

    def _respawn(self) -> None:
        spawn_id = f"spawn-{len(self.captures) + self.config.n_spawns:04d}"
        self.spawns[spawn_id] = Point(
            self._rng.uniform(self.config.city.x_min, self.config.city.x_max),
            self._rng.uniform(self.config.city.y_min, self.config.city.y_max),
        )

    def social_encounters(self, radius: float = 30.0):
        """Cross-space meetups (the paper's comrade-detection scenario)."""
        return self.world.cross_space_encounters(radius)

    def position_records(self) -> list[DataRecord]:
        """The update stream LBG pushes into the platform each tick."""
        return [
            DataRecord(
                key=player_id,
                payload={"x": mover.position.x, "y": mover.position.y},
                space=Space.PHYSICAL,
                timestamp=self.world.now,
                kind=DataKind.LOCATION,
                source="gps",
            )
            for player_id, mover in self._movers.items()
        ]

"""The military-exercise workload (paper Sec. II, Fig. 2).

A small physical exercise area embedded in a much larger virtual theatre:
ground units patrol the physical space emitting tracked positions and
status; the virtual command layer injects events (air-raids, reinforcement
orders) whose consequences must reach the ground — the paper's "if a region
... were air-raided, then the troops should perish" rule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.errors import ConfigurationError
from ..core.events import Event, Rule
from ..core.records import Space
from ..spatial.geometry import BBox, Point
from ..world.entities import Entity
from ..world.twin import MetaverseWorld
from .movement import RandomWaypoint


@dataclass
class MilitaryConfig:
    physical_area: BBox = field(default_factory=lambda: BBox(0, 0, 5000, 5000))
    n_units: int = 100
    unit_speed: tuple[float, float] = (1.0, 4.0)
    gps_sigma: float = 3.0

    def __post_init__(self) -> None:
        if self.n_units < 1:
            raise ConfigurationError("need at least one unit")


class MilitaryExercise:
    """Drives units in a :class:`MetaverseWorld` and wires the airstrike rule."""

    def __init__(
        self, world: MetaverseWorld, config: MilitaryConfig | None = None, seed: int = 0
    ) -> None:
        self.world = world
        self.config = config if config is not None else MilitaryConfig()
        self._rng = random.Random(seed)
        self._movers: dict[str, RandomWaypoint] = {}
        self.casualties: set[str] = set()
        self._install_units()
        self._install_rules()

    def _install_units(self) -> None:
        for i in range(self.config.n_units):
            unit_id = f"unit-{i:04d}"
            mover = RandomWaypoint(
                self.config.physical_area,
                speed_range=self.config.unit_speed,
                seed=self._rng.randrange(1 << 30),
            )
            self._movers[unit_id] = mover
            self.world.physical.add(
                Entity(
                    entity_id=unit_id,
                    position=mover.position,
                    kind="unit",
                    attributes={"status": "active", "firepower": 100},
                )
            )

    def _install_rules(self) -> None:
        def on_airstrike(event: Event):
            box = BBox(*event.attributes["region"])
            hit = [
                entity.entity_id
                for entity in self.world.physical.in_region(box)
                if entity.attributes.get("status") == "active"
            ]
            follow_ups = []
            for unit_id in hit:
                self.world.physical.entities[unit_id].attributes["status"] = "down"
                self.casualties.add(unit_id)
                follow_ups.append(
                    Event(
                        topic="ground.perish",
                        space=Space.PHYSICAL,
                        timestamp=event.timestamp,
                        attributes={"unit": unit_id},
                    )
                )
            return follow_ups

        self.world.bus.add_rule(
            Rule(
                name="airstrike-kills-units",
                topic_pattern="command.airstrike",
                space=Space.VIRTUAL,
                action=on_airstrike,
            )
        )

    # -- driving ------------------------------------------------------------

    def tick(self, dt: float) -> int:
        """Move active units, sync the twin; return mirror updates sent."""
        for unit_id, mover in self._movers.items():
            entity = self.world.physical.entities[unit_id]
            if entity.attributes.get("status") != "active":
                continue
            mover.step(dt)
            entity.position = mover.position
            self.world.physical.index.move(unit_id, entity.position)
        self.world.now += dt
        return self.world.sync()

    def order_airstrike(self, region: BBox) -> list[Event]:
        """Virtual command orders an airstrike on ``region``."""
        return self.world.bus.publish(
            Event(
                topic="command.airstrike",
                space=Space.VIRTUAL,
                timestamp=self.world.now,
                attributes={
                    "region": (region.x_min, region.y_min, region.x_max, region.y_max)
                },
            )
        )

    def active_units(self) -> int:
        return sum(
            1
            for entity in self.world.physical.entities.values()
            if entity.attributes.get("status") == "active"
        )

    def noisy_position(self, unit_id: str) -> Point:
        """The GPS-observed position of a unit (sensing substitution)."""
        true = self.world.physical.entities[unit_id].position
        return Point(
            true.x + self._rng.gauss(0, self.config.gps_sigma),
            true.y + self._rng.gauss(0, self.config.gps_sigma),
        )

"""Movement models for simulated populations.

Standard mobility models from the ad-hoc-networking literature, used by the
military, gaming, and marketplace workloads to drive entity positions.
"""

from __future__ import annotations

import math
import random

from ..core.errors import ConfigurationError
from ..spatial.geometry import BBox, Point, Velocity


class RandomWaypoint:
    """Random-waypoint mobility: pick a target, walk to it, repeat."""

    def __init__(
        self,
        domain: BBox,
        speed_range: tuple[float, float] = (1.0, 5.0),
        seed: int = 0,
        start: Point | None = None,
    ) -> None:
        if speed_range[0] <= 0 or speed_range[0] > speed_range[1]:
            raise ConfigurationError("need 0 < min_speed <= max_speed")
        self.domain = domain
        self.speed_range = speed_range
        self._rng = random.Random(seed)
        self.position = start if start is not None else self._random_point()
        self._target = self._random_point()
        self._speed = self._rng.uniform(*speed_range)

    def _random_point(self) -> Point:
        return Point(
            self._rng.uniform(self.domain.x_min, self.domain.x_max),
            self._rng.uniform(self.domain.y_min, self.domain.y_max),
        )

    @property
    def velocity(self) -> Velocity:
        distance = self.position.distance_to(self._target)
        if distance < 1e-9:
            return Velocity(0.0, 0.0)
        return Velocity(
            (self._target.x - self.position.x) / distance * self._speed,
            (self._target.y - self.position.y) / distance * self._speed,
        )

    def step(self, dt: float) -> Point:
        """Advance ``dt`` seconds; returns the new position."""
        remaining = self.position.distance_to(self._target)
        travel = self._speed * dt
        if travel >= remaining:
            self.position = self._target
            self._target = self._random_point()
            self._speed = self._rng.uniform(*self.speed_range)
        else:
            velocity = self.velocity
            self.position = Point(
                self.position.x + velocity.vx * dt,
                self.position.y + velocity.vy * dt,
            )
        return self.position


class PatrolRoute:
    """Deterministic looped patrol through waypoints at constant speed."""

    def __init__(self, waypoints: list[Point], speed: float = 2.0) -> None:
        if len(waypoints) < 2:
            raise ConfigurationError("patrol needs >= 2 waypoints")
        if speed <= 0:
            raise ConfigurationError("speed must be positive")
        self.waypoints = list(waypoints)
        self.speed = speed
        self.position = waypoints[0]
        self._leg = 0

    def step(self, dt: float) -> Point:
        remaining_time = dt
        while remaining_time > 1e-12:
            target = self.waypoints[(self._leg + 1) % len(self.waypoints)]
            distance = self.position.distance_to(target)
            travel = self.speed * remaining_time
            if travel >= distance:
                self.position = target
                self._leg = (self._leg + 1) % len(self.waypoints)
                remaining_time -= distance / self.speed if self.speed else 0.0
            else:
                frac = travel / distance
                self.position = Point(
                    self.position.x + (target.x - self.position.x) * frac,
                    self.position.y + (target.y - self.position.y) * frac,
                )
                remaining_time = 0.0
        return self.position


def zipf_sampler(n_items: int, skew: float, seed: int = 0):
    """A callable sampling item indices [0, n) with Zipf(skew) popularity."""
    if n_items < 1 or skew < 0:
        raise ConfigurationError("need n_items >= 1 and skew >= 0")
    rng = random.Random(seed)
    weights = [1.0 / (rank**skew) for rank in range(1, n_items + 1)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)

    def sample() -> int:
        u = rng.random()
        lo, hi = 0, n_items - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    return sample


def diurnal_rate(base_rate: float, hour: float, peak_hour: float = 18.0, amplitude: float = 0.6) -> float:
    """A daily sinusoidal arrival-rate profile (smart-city sensors)."""
    if base_rate < 0 or not 0 <= amplitude <= 1:
        raise ConfigurationError("invalid rate profile")
    phase = 2 * math.pi * (hour - peak_hour) / 24.0
    return base_rate * (1.0 + amplitude * math.cos(phase))

"""Publish/subscribe over a P2P overlay (paper Sec. IV-E).

"We envision a publish/subscribe system over peer-to-peer networks where
each peer may be a highly parallel cluster that can support a large number
of mobile clients."

:class:`P2PPubSub` shards subscription state across peers on a
:class:`~repro.net.overlay.ChordRing`: a subscription for topic T lives on
``owner(T)``; a publication routes through the ring to the same owner
(O(log n) hops) and is matched only against that peer's local broker.
Compared with one giant broker, per-peer matching state shrinks ~n-fold and
publication work is spread across owners; the routing hop count is the
price, which the paper's architecture accepts for scale-out.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigurationError
from .overlay import ChordRing
from .pubsub import Broker, Publication, Subscription


@dataclass
class P2PDeliveryReport:
    """Result of one routed publication."""

    owner: str
    hops: int
    matched: list[Subscription]


class P2PPubSub:
    """Topic-sharded brokers over a Chord ring."""

    def __init__(self, peers: list[str], grid_cell: float = 100.0) -> None:
        if not peers:
            raise ConfigurationError("need at least one peer")
        self.ring = ChordRing()
        self.brokers: dict[str, Broker] = {}
        for peer in peers:
            self.ring.join(peer)
            self.brokers[peer] = Broker(grid_cell=grid_cell)
        self.total_hops = 0
        self.publications = 0

    # -- membership --------------------------------------------------------

    def add_peer(self, peer: str) -> None:
        if peer in self.brokers:
            raise ConfigurationError(f"peer {peer!r} already present")
        self.ring.join(peer)
        self.brokers[peer] = Broker()
        # Subscriptions are re-homed lazily in real systems; here we re-home
        # eagerly so correctness is unconditional.
        self._rehome()

    def _rehome(self) -> None:
        all_subs: list[Subscription] = []
        for broker in self.brokers.values():
            all_subs.extend(broker._subs.values())
        for peer in self.brokers:
            self.brokers[peer] = Broker()
        for sub in all_subs:
            self.brokers[self._owner_of(sub.topic_pattern)].subscribe(sub)

    def _owner_of(self, topic_pattern: str) -> str:
        # Shard by the topic's first segment so 'shop.*' and 'shop.sale'
        # land on the same owner.
        root = topic_pattern.split(".")[0].rstrip("*") or "_"
        return self.ring.owner_of(root)

    # -- pub/sub -------------------------------------------------------------

    def subscribe(self, sub: Subscription) -> str:
        """Install ``sub`` at its topic owner; returns the owning peer."""
        owner = self._owner_of(sub.topic_pattern)
        self.brokers[owner].subscribe(sub)
        return owner

    def publish(self, pub: Publication, from_peer: str | None = None) -> P2PDeliveryReport:
        """Route ``pub`` to its topic owner and match there."""
        root = pub.topic.split(".")[0]
        lookup = self.ring.lookup(root, start_peer=from_peer)
        matched = self.brokers[lookup.owner].publish(pub)
        self.total_hops += lookup.hops
        self.publications += 1
        return P2PDeliveryReport(owner=lookup.owner, hops=lookup.hops, matched=matched)

    # -- accounting ------------------------------------------------------------

    def mean_hops(self) -> float:
        return self.total_hops / self.publications if self.publications else 0.0

    def max_peer_state(self) -> int:
        """Largest per-peer subscription count (the scale-out win)."""
        return max(len(broker) for broker in self.brokers.values())

    def total_subscriptions(self) -> int:
        return sum(len(broker) for broker in self.brokers.values())

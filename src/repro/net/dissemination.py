"""Coherency-bounded dissemination and priority transmission scheduling.

Paper Sec. IV-C ("Data Consistency"): a truly consistent view across the two
spaces is unattainable under bandwidth constraints, so the virtual world
should track the physical one within *tolerable discrepancy* — numeric data
within coherency bounds, and critical data transmitted before bulk data.

This module implements:

* :class:`CoherencySource` — push-based dissemination of numeric object
  values where each subscriber declares an incoherency bound epsilon; an
  update is pushed to a subscriber only when the value has drifted more than
  epsilon from what that subscriber last saw ([13], [67]).
* :class:`DisseminationTree` — a repeater hierarchy in the spirit of the
  adaptive dissemination framework [96]: interior nodes filter with the
  tightest bound needed below them, so filtering happens as close to the
  source as possible.
* :class:`PriorityScheduler` — a bandwidth-limited transmission queue with
  strict priority classes (critical before bulk), and a FIFO baseline for
  comparison (E2); inspired by scheduling for intermittently-connected
  networks [92].
"""

from __future__ import annotations

import heapq
import itertools
from collections import defaultdict
from dataclasses import dataclass, field

from ..core.errors import ConfigurationError
from ..core.metrics import MetricsRegistry
from ..obs.tracing import NoopTracer, Tracer
from ..obs.profiling import timed


@dataclass
class CoherencySubscription:
    """A subscriber's bound for one object: push when drift > epsilon."""

    subscriber: str
    object_id: str
    epsilon: float

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ConfigurationError("epsilon must be >= 0")


class CoherencySource:
    """Source-side coherency filtering for numeric object streams.

    For each (object, subscriber) pair the source remembers the last pushed
    value; an incoming update is forwarded only if it drifts beyond the
    subscriber's epsilon.  ``epsilon == 0`` degenerates to push-every-update.

    The *incoherency* a subscriber experiences is ``|true - last_pushed|``;
    by construction it never exceeds epsilon at update boundaries, which is
    the guarantee benchmark E1 checks.
    """

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NoopTracer()
        self._subs: dict[str, list[CoherencySubscription]] = defaultdict(list)
        self._last_pushed: dict[tuple[str, str], float] = {}
        self._true_value: dict[str, float] = {}

    def subscribe(self, sub: CoherencySubscription) -> None:
        self._subs[sub.object_id].append(sub)

    def subscriber_count(self, object_id: str) -> int:
        return len(self._subs[object_id])

    def update(self, object_id: str, value: float) -> list[str]:
        """Apply a source update; return subscribers that received a push."""
        self._true_value[object_id] = value
        pushed: list[str] = []
        for sub in self._subs[object_id]:
            key = (object_id, sub.subscriber)
            last = self._last_pushed.get(key)
            if last is None or abs(value - last) > sub.epsilon:
                self._last_pushed[key] = value
                pushed.append(sub.subscriber)
                self.metrics.counter("coherency.pushes").inc()
            else:
                self.metrics.counter("coherency.suppressed").inc()
        self.metrics.counter("coherency.updates").inc()
        return pushed

    def incoherency(self, object_id: str, subscriber: str) -> float:
        """Current |true value - subscriber's view| for the pair."""
        true = self._true_value.get(object_id)
        seen = self._last_pushed.get((object_id, subscriber))
        if true is None or seen is None:
            return float("inf")
        return abs(true - seen)

    def max_incoherency(self, object_id: str) -> float:
        """Worst incoherency across subscribers of ``object_id``."""
        subs = self._subs[object_id]
        if not subs:
            return 0.0
        return max(self.incoherency(object_id, s.subscriber) for s in subs)


@dataclass
class _TreeNode:
    name: str
    epsilon: float  # own requirement (leaves) or +inf for pure repeaters
    children: list["_TreeNode"] = field(default_factory=list)
    effective_epsilon: float = float("inf")
    last_forwarded: float | None = None
    view: float | None = None


class DisseminationTree:
    """Repeater hierarchy with near-source filtering ([96]).

    Each leaf is a subscriber with an epsilon; each interior node forwards an
    update downward only when it drifts beyond the *minimum* epsilon of its
    subtree.  Compared to a flat source (which evaluates every subscriber on
    every update), a tree suppresses traffic on whole subtrees at once; the
    total push count is identical at the leaves, but interior link traffic
    and source-side work drop — the scalability point of Sec. IV-C.
    """

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NoopTracer()
        self._nodes: dict[str, _TreeNode] = {}
        self._root: _TreeNode | None = None

    def add_node(self, name: str, parent: str | None, epsilon: float = float("inf")) -> None:
        if name in self._nodes:
            raise ConfigurationError(f"node {name!r} already in tree")
        node = _TreeNode(name=name, epsilon=epsilon)
        self._nodes[name] = node
        if parent is None:
            if self._root is not None:
                raise ConfigurationError("tree already has a root")
            self._root = node
        else:
            if parent not in self._nodes:
                raise ConfigurationError(f"unknown parent {parent!r}")
            self._nodes[parent].children.append(node)

    def finalize(self) -> None:
        """Assign per-edge forwarding thresholds that preserve leaf bounds.

        A naive "interior threshold = min epsilon of subtree" scheme violates
        leaf guarantees: suppression at an ancestor adds slack on top of the
        leaf's own threshold.  Instead the epsilon *budget* is split along
        each root-to-leaf path: an interior edge receives half of the
        remaining budget of its tightest descendant, and a leaf edge receives
        exactly its epsilon minus the slack already spent above it.  The leaf
        incoherency is then bounded by the path sum, which equals the leaf's
        declared epsilon.
        """
        if self._root is None:
            raise ConfigurationError("tree has no root")

        def subtree_eps(node: _TreeNode) -> float:
            eps = node.epsilon
            for child in node.children:
                eps = min(eps, subtree_eps(child))
            return eps

        def assign(node: _TreeNode, used: float) -> None:
            for child in node.children:
                if child.children:
                    budget = max(0.0, subtree_eps(child) - used)
                    child.effective_epsilon = 0.5 * budget
                else:
                    child.effective_epsilon = max(0.0, child.epsilon - used)
                assign(child, used + child.effective_epsilon)

        self._root.effective_epsilon = 0.0
        assign(self._root, 0.0)

    def update(self, value: float) -> list[str]:
        """Push ``value`` from the root; return leaf subscribers reached."""
        if self._root is None:
            raise ConfigurationError("tree has no root")
        reached: list[str] = []
        frontier = [self._root]
        self._root.view = value
        while frontier:
            node = frontier.pop()
            for child in node.children:
                drift = (
                    float("inf")
                    if child.last_forwarded is None
                    else abs(value - child.last_forwarded)
                )
                if drift > child.effective_epsilon:
                    child.last_forwarded = value
                    child.view = value
                    self.metrics.counter("tree.link_messages").inc()
                    if child.children:
                        frontier.append(child)
                    else:
                        reached.append(child.name)
                else:
                    self.metrics.counter("tree.link_suppressed").inc()
        return reached

    def leaf_incoherency(self, name: str, true_value: float) -> float:
        node = self._nodes[name]
        if node.view is None:
            return float("inf")
        return abs(true_value - node.view)


class OutageBuffer:
    """Catch-up state for intermittently connected subscribers ([92]).

    Mobile metaverse clients disconnect constantly.  While a subscriber is
    offline, buffering *every* missed update wastes memory and replay
    bandwidth; for state-style streams only the latest value per object
    matters.  The buffer therefore *collapses* updates per object and
    replays, on reconnect, one update per dirty object ordered by priority —
    combining the coherency insight of Sec. IV-C with the
    disruption-tolerant delivery of [92].
    """

    def __init__(self) -> None:
        self._online = True
        self._pending: dict[str, tuple[int, float]] = {}  # obj -> (prio, value)
        self.buffered_updates = 0
        self.replayed_updates = 0
        self.delivered_live = 0

    @property
    def online(self) -> bool:
        return self._online

    def disconnect(self) -> None:
        self._online = False

    def offer(self, object_id: str, value: float, priority: int = 1) -> bool:
        """Push an update; returns True if delivered live (subscriber online).

        While offline, the *latest* value per object always wins (state
        streams supersede), and the slot keeps the most critical priority
        seen so replay ordering honours criticality.
        """
        if self._online:
            self.delivered_live += 1
            return True
        self.buffered_updates += 1
        current = self._pending.get(object_id)
        slot_priority = priority if current is None else min(priority, current[0])
        self._pending[object_id] = (slot_priority, value)
        return False

    def reconnect(self) -> list[tuple[str, float]]:
        """Come back online; returns the collapsed catch-up batch,
        most-critical objects first."""
        self._online = True
        batch = sorted(
            self._pending.items(), key=lambda kv: (kv[1][0], kv[0])
        )
        self._pending.clear()
        out = [(object_id, value) for object_id, (_, value) in batch]
        self.replayed_updates += len(out)
        return out

    def replay_savings(self) -> float:
        """Fraction of buffered updates the collapse avoided replaying."""
        if self.buffered_updates == 0:
            return 0.0
        return 1.0 - self.replayed_updates / self.buffered_updates


_seq = itertools.count()


@dataclass(order=True)
class _QueuedItem:
    sort_key: tuple[int, int] = field(compare=True)
    enqueued_at: float = field(compare=False, default=0.0)
    size_bytes: int = field(compare=False, default=0)
    priority: int = field(compare=False, default=0)
    label: str = field(compare=False, default="")


@dataclass
class Delivery:
    """A completed transmission."""

    label: str
    priority: int
    enqueued_at: float
    delivered_at: float
    size_bytes: int

    @property
    def latency(self) -> float:
        return self.delivered_at - self.enqueued_at


class PriorityScheduler:
    """Bandwidth-limited transmitter with strict priority classes.

    ``priority`` 0 is most critical.  ``drain(now, budget_bytes)`` transmits
    queued items in (priority, arrival) order until the byte budget for this
    tick is exhausted; with ``fifo=True`` it degrades to pure arrival order,
    the baseline for experiment E2.
    """

    def __init__(
        self,
        fifo: bool = False,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.fifo = fifo
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NoopTracer()
        self._heap: list[_QueuedItem] = []
        self.deliveries: list[Delivery] = []

    def enqueue(
        self,
        label: str,
        priority: int,
        size_bytes: int,
        now: float,
    ) -> None:
        if priority < 0:
            raise ConfigurationError("priority must be >= 0")
        if size_bytes <= 0:
            raise ConfigurationError("size_bytes must be positive")
        seq = next(_seq)
        sort_key = (seq,) if self.fifo else (priority, seq)
        item = _QueuedItem(
            sort_key=tuple(sort_key),  # type: ignore[arg-type]
            enqueued_at=now,
            size_bytes=size_bytes,
            priority=priority,
            label=label,
        )
        heapq.heappush(self._heap, item)
        self.metrics.counter("sched.enqueued").inc()

    def __len__(self) -> int:
        return len(self._heap)

    @timed("net.scheduler_drain")
    def drain(self, now: float, budget_bytes: int) -> list[Delivery]:
        """Transmit up to ``budget_bytes`` worth of queued items."""
        sent: list[Delivery] = []
        remaining = budget_bytes
        while self._heap and self._heap[0].size_bytes <= remaining:
            item = heapq.heappop(self._heap)
            remaining -= item.size_bytes
            delivery = Delivery(
                label=item.label,
                priority=item.priority,
                enqueued_at=item.enqueued_at,
                delivered_at=now,
                size_bytes=item.size_bytes,
            )
            sent.append(delivery)
            self.deliveries.append(delivery)
            self.metrics.counter("sched.delivered").inc()
            self.metrics.histogram(f"sched.latency.p{item.priority}").observe(
                delivery.latency
            )
        return sent

    def latencies_by_priority(self) -> dict[int, list[float]]:
        out: dict[int, list[float]] = defaultdict(list)
        for delivery in self.deliveries:
            out[delivery.priority].append(delivery.latency)
        return dict(out)

"""Content-based and spatial publish/subscribe (paper Sec. IV-E).

The paper argues that a publish/subscribe architecture ([28], [34], [41],
[21]) is the right fit for streaming metaverse data to large, heterogeneous
subscriber populations.  This broker supports:

* topic subscriptions with ``prefix.*`` wildcards,
* attribute predicates (equality / range over payload fields), and
* spatial predicates (axis-aligned regions over a location payload),

with an inverted attribute index plus a uniform grid over spatial
subscriptions so that matching cost scales with the *matching* subscriber
set rather than the full population — the property benchmark E3 verifies
against a broadcast baseline.
"""

from __future__ import annotations

import itertools
import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from ..core.errors import ConfigurationError, FaultInjectedError
from ..core.metrics import MetricsRegistry
from ..obs.tracing import NoopTracer, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience.faults import FaultInjector

_sub_ids = itertools.count(1)


@dataclass(frozen=True)
class AttributePredicate:
    """Predicate over a publication payload field.

    ``op`` is one of ``== != < <= > >= in contains``; ``in`` tests
    membership of the field value in ``value`` (a tuple); ``contains``
    supports the geo-textual subscriptions of [21]/[41]: it matches when
    the field (a string) contains ``value`` as a case-insensitive keyword,
    or when the field is a collection containing ``value``.
    """

    field: str
    op: str
    value: Any

    _OPS: tuple[str, ...] = ("==", "!=", "<", "<=", ">", ">=", "in", "contains")

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ConfigurationError(f"unknown predicate op {self.op!r}")

    def matches(self, payload: dict[str, Any]) -> bool:
        if self.field not in payload:
            return False
        value = payload[self.field]
        try:
            if self.op == "==":
                return bool(value == self.value)
            if self.op == "!=":
                return bool(value != self.value)
            if self.op == "<":
                return bool(value < self.value)
            if self.op == "<=":
                return bool(value <= self.value)
            if self.op == ">":
                return bool(value > self.value)
            if self.op == ">=":
                return bool(value >= self.value)
            if self.op == "contains":
                if isinstance(value, str):
                    return str(self.value).lower() in value.lower()
                return self.value in value
            return value in self.value
        except TypeError:
            return False


@dataclass(frozen=True)
class Region:
    """Axis-aligned rectangle used for spatial subscriptions."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_min > self.x_max or self.y_min > self.y_max:
            raise ConfigurationError("region min must not exceed max")

    def contains(self, x: float, y: float) -> bool:
        return self.x_min <= x <= self.x_max and self.y_min <= y <= self.y_max


@dataclass
class Subscription:
    """A subscriber's standing interest."""

    subscriber: str
    topic_pattern: str = "*"
    predicates: tuple[AttributePredicate, ...] = ()
    region: Region | None = None
    callback: Callable[["Publication"], None] | None = None
    sub_id: int = field(default_factory=lambda: next(_sub_ids))

    def matches(self, pub: "Publication") -> bool:
        if not _topic_matches(self.topic_pattern, pub.topic):
            return False
        for predicate in self.predicates:
            if not predicate.matches(pub.payload):
                return False
        if self.region is not None:
            x = pub.payload.get("x")
            y = pub.payload.get("y")
            if not isinstance(x, (int, float)) or not isinstance(y, (int, float)):
                return False
            if not self.region.contains(float(x), float(y)):
                return False
        return True


@dataclass
class Publication:
    """An event published into the broker."""

    topic: str
    payload: dict[str, Any]
    timestamp: float = 0.0
    size_bytes: int = 256


def _topic_matches(pattern: str, topic: str) -> bool:
    if pattern == "*" or pattern == topic:
        return True
    if pattern.endswith(".*"):
        return topic.startswith(pattern[:-1])
    return False


class Broker:
    """Matching engine for content-based + spatial pub/sub.

    Two index structures accelerate matching:

    * equality predicates are indexed by ``(field, value)`` so that a
      publication probes only subscriptions whose equality constraints it
      satisfies;
    * spatial subscriptions are bucketed into a uniform grid keyed by cell,
      so a located publication probes only subscriptions whose region
      overlaps its cell.

    Non-indexable subscriptions (pure wildcards, range-only predicates) fall
    back to a scan list; workloads in this library keep that list small,
    mirroring real content-based brokers.
    """

    def __init__(
        self,
        grid_cell: float = 100.0,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        faults: "FaultInjector | None" = None,
    ) -> None:
        if grid_cell <= 0:
            raise ConfigurationError("grid_cell must be positive")
        self.grid_cell = grid_cell
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NoopTracer()
        self.faults = faults
        self._subs: dict[int, Subscription] = {}
        self._eq_index: dict[tuple[str, Any], set[int]] = defaultdict(set)
        self._grid: dict[tuple[int, int], set[int]] = defaultdict(set)
        self._scan: set[int] = set()

    def __len__(self) -> int:
        return len(self._subs)

    # -- subscription management ------------------------------------------

    def subscribe(self, sub: Subscription) -> int:
        self._subs[sub.sub_id] = sub
        eq = next((p for p in sub.predicates if p.op == "=="), None)
        if eq is not None and _hashable(eq.value):
            self._eq_index[(eq.field, eq.value)].add(sub.sub_id)
        elif sub.region is not None:
            for cell in self._cells_of(sub.region):
                self._grid[cell].add(sub.sub_id)
        else:
            self._scan.add(sub.sub_id)
        return sub.sub_id

    def unsubscribe(self, sub_id: int) -> None:
        sub = self._subs.pop(sub_id, None)
        if sub is None:
            return
        for key in list(self._eq_index):
            self._eq_index[key].discard(sub_id)
            if not self._eq_index[key]:
                del self._eq_index[key]
        for key in list(self._grid):
            self._grid[key].discard(sub_id)
            if not self._grid[key]:
                del self._grid[key]
        self._scan.discard(sub_id)

    def _cells_of(self, region: Region) -> list[tuple[int, int]]:
        x0 = math.floor(region.x_min / self.grid_cell)
        x1 = math.floor(region.x_max / self.grid_cell)
        y0 = math.floor(region.y_min / self.grid_cell)
        y1 = math.floor(region.y_max / self.grid_cell)
        return [(cx, cy) for cx in range(x0, x1 + 1) for cy in range(y0, y1 + 1)]

    # -- matching ---------------------------------------------------------

    def candidates(self, pub: Publication) -> set[int]:
        """Candidate subscription ids from the indexes (superset of matches)."""
        out: set[int] = set(self._scan)
        for field_name, value in pub.payload.items():
            if _hashable(value):
                out |= self._eq_index.get((field_name, value), set())
        x = pub.payload.get("x")
        y = pub.payload.get("y")
        if isinstance(x, (int, float)) and isinstance(y, (int, float)):
            cell = (
                math.floor(float(x) / self.grid_cell),
                math.floor(float(y) / self.grid_cell),
            )
            out |= self._grid.get(cell, set())
        return out

    def publish(self, pub: Publication) -> list[Subscription]:
        """Match ``pub``, invoke callbacks, and return matched subscriptions.

        With a fault injector attached, an injected ``crash`` raises
        :class:`FaultInjectedError` before any callback fires (all-or-
        nothing delivery per publication) and an injected ``drop`` loses
        the publication silently, counted in ``pubsub.dropped``.
        """
        if self.faults is not None:
            decision = self.faults.decide(
                "broker.publish", target=pub.topic, kinds=("crash", "drop")
            )
            if decision.kind == "crash":
                raise FaultInjectedError("injected crash at broker.publish")
            if decision.kind == "drop":
                self.metrics.counter("pubsub.dropped").inc()
                return []
        with self.tracer.span("broker.publish", topic=pub.topic) as span:
            matched: list[Subscription] = []
            probed = 0
            for sub_id in self.candidates(pub):
                sub = self._subs.get(sub_id)
                if sub is None:
                    continue
                probed += 1
                if sub.matches(pub):
                    matched.append(sub)
                    if sub.callback is not None:
                        sub.callback(pub)
            self.metrics.counter("pubsub.publications").inc()
            self.metrics.counter("pubsub.probes").inc(probed)
            self.metrics.counter("pubsub.deliveries").inc(len(matched))
            if span is not None:
                span.set_attribute("deliveries", len(matched))
            return matched

    def publish_broadcast(self, pub: Publication) -> list[Subscription]:
        """Baseline: deliver to every subscriber and let them filter (E3)."""
        matched: list[Subscription] = []
        for sub in self._subs.values():
            self.metrics.counter("pubsub.broadcast_deliveries").inc()
            if sub.matches(pub):
                matched.append(sub)
                if sub.callback is not None:
                    sub.callback(pub)
        self.metrics.counter("pubsub.publications").inc()
        return matched


def _hashable(value: Any) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True

"""Peer-to-peer overlay for decentralized search (paper Sec. IV-E1).

The paper envisions "a publish/subscribe system over peer-to-peer networks
where each peer may be a highly parallel cluster".  This module supplies the
P2P substrate: a consistent-hashing ring with finger tables (Chord-style
greedy routing) and a balanced multi-way search tree overlay in the spirit
of BATON [45], both supporting key lookup with O(log n) hop counts.

These are *logical* overlays: routing is computed synchronously and hop
counts / per-hop latencies are reported so experiments can account network
cost, which is what the paper's scalability argument is about.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass

from ..core.errors import ConfigurationError


def stable_hash(key: str, bits: int = 32) -> int:
    """Deterministic hash of ``key`` into ``bits`` bits (stable across runs)."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (1 << bits)


@dataclass
class LookupResult:
    """Result of an overlay lookup: owning peer and the route taken."""

    owner: str
    hops: int
    route: list[str]


class ChordRing:
    """Consistent-hashing ring with Chord-style finger routing.

    Peers own the arc ending at their id.  ``lookup`` routes greedily through
    each hop's finger table — the classic O(log n) hop bound — starting from
    any peer.
    """

    def __init__(self, bits: int = 32) -> None:
        if not 8 <= bits <= 64:
            raise ConfigurationError("ring bits must be in [8, 64]")
        self.bits = bits
        self.size = 1 << bits
        self._ids: list[int] = []          # sorted peer ids
        self._peers: dict[int, str] = {}   # id -> name

    # -- membership -------------------------------------------------------

    def join(self, peer: str) -> int:
        peer_id = stable_hash(peer, self.bits)
        while peer_id in self._peers:  # resolve (unlikely) collisions
            peer_id = (peer_id + 1) % self.size
        bisect.insort(self._ids, peer_id)
        self._peers[peer_id] = peer
        return peer_id

    def leave(self, peer: str) -> None:
        for peer_id, name in list(self._peers.items()):
            if name == peer:
                self._ids.remove(peer_id)
                del self._peers[peer_id]
                return
        raise ConfigurationError(f"peer {peer!r} not in ring")

    def __len__(self) -> int:
        return len(self._ids)

    @property
    def peers(self) -> list[str]:
        return [self._peers[i] for i in self._ids]

    # -- routing ----------------------------------------------------------

    def successor(self, point: int) -> int:
        """The peer id owning ``point`` (first id >= point, wrapping)."""
        if not self._ids:
            raise ConfigurationError("ring is empty")
        idx = bisect.bisect_left(self._ids, point % self.size)
        if idx == len(self._ids):
            idx = 0
        return self._ids[idx]

    def owner_of(self, key: str) -> str:
        return self._peers[self.successor(stable_hash(key, self.bits))]

    def successors(self, key: str, n: int) -> list[str]:
        """The ``n`` distinct peers reached by walking clockwise from the
        owner of ``key`` — the replica-placement walk shared by
        :class:`~repro.storage.sharded.ShardedKVCluster` and the cluster
        router's vnode rings.  Raises when the ring holds fewer than ``n``
        distinct peers.
        """
        if n < 1:
            raise ConfigurationError("need n >= 1 successors")
        distinct = set(self._peers.values())
        if n > len(distinct):
            raise ConfigurationError(
                f"ring has {len(distinct)} distinct peers, need {n}"
            )
        start = bisect.bisect_left(
            self._ids, self.successor(stable_hash(key, self.bits))
        )
        owners: list[str] = []
        idx = start
        while len(owners) < n:
            candidate = self._peers[self._ids[idx % len(self._ids)]]
            if candidate not in owners:
                owners.append(candidate)
            idx += 1
        return owners

    def _fingers(self, peer_id: int) -> list[int]:
        """Finger table of ``peer_id``: successor(peer_id + 2^k) for each k."""
        return [self.successor(peer_id + (1 << k)) for k in range(self.bits)]

    def lookup(self, key: str, start_peer: str | None = None) -> LookupResult:
        """Route to the owner of ``key`` from ``start_peer``, counting hops."""
        if not self._ids:
            raise ConfigurationError("ring is empty")
        target = self.successor(stable_hash(key, self.bits))
        if start_peer is None:
            current = self._ids[0]
        else:
            candidates = [i for i, n in self._peers.items() if n == start_peer]
            if not candidates:
                raise ConfigurationError(f"unknown start peer {start_peer!r}")
            current = candidates[0]
        route = [self._peers[current]]
        hops = 0
        while current != target:
            # Greedy: furthest finger that does not overshoot the target arc.
            best = self.successor(current + 1)
            for finger in self._fingers(current):
                if _in_arc(current, finger, target, self.size):
                    if _arc_len(current, finger, self.size) > _arc_len(current, best, self.size):
                        best = finger
            if best == current:  # safety: should not happen with >=1 peer
                break
            current = best
            route.append(self._peers[current])
            hops += 1
            if hops > 4 * self.bits:
                raise ConfigurationError("routing failed to converge")
        return LookupResult(owner=self._peers[target], hops=hops, route=route)


def _arc_len(start: int, end: int, size: int) -> int:
    return (end - start) % size


def _in_arc(start: int, point: int, end: int, size: int) -> bool:
    """True if ``point`` lies on the clockwise arc (start, end]."""
    return 0 < _arc_len(start, point, size) <= _arc_len(start, end, size)


class BatonTree:
    """Balanced multi-way tree overlay for range-capable P2P search [45].

    Peers hold contiguous key ranges at the leaves of an m-way search tree;
    lookups descend from the root, giving O(log_m n) hops, and range scans
    walk sibling leaves — the capability flat hashing lacks and the reason
    the paper cites tree overlays for search/discovery.
    """

    def __init__(self, fanout: int = 4) -> None:
        if fanout < 2:
            raise ConfigurationError("fanout must be >= 2")
        self.fanout = fanout
        self._peers: list[str] = []          # leaf order = key-range order
        self._boundaries: list[int] = []     # len(peers)-1 split points

    def build(self, peers: list[str], key_space: int = 1 << 32) -> None:
        """(Re)build the overlay over ``peers`` with even range split."""
        if not peers:
            raise ConfigurationError("need at least one peer")
        self._peers = list(peers)
        n = len(peers)
        self._boundaries = [key_space * (i + 1) // n for i in range(n - 1)]
        self.key_space = key_space

    def __len__(self) -> int:
        return len(self._peers)

    def owner_of(self, key: str) -> str:
        point = stable_hash(key) % self.key_space
        idx = bisect.bisect_right(self._boundaries, point)
        return self._peers[idx]

    def lookup(self, key: str) -> LookupResult:
        """Descend the implicit m-way tree; route records visited levels."""
        point = stable_hash(key) % self.key_space
        idx = bisect.bisect_right(self._boundaries, point)
        # Hop count is the tree depth to that leaf in an m-way tree.
        hops = 0
        span = len(self._peers)
        route: list[str] = []
        lo = 0
        while span > 1:
            hops += 1
            child_span = max(1, -(-span // self.fanout))  # ceil division
            child = min((idx - lo) // child_span, self.fanout - 1)
            lo = lo + child * child_span
            span = min(child_span, len(self._peers) - lo)
            route.append(self._peers[min(lo, len(self._peers) - 1)])
        return LookupResult(owner=self._peers[idx], hops=hops, route=route)

    def range_owners(self, lo_key: str, hi_key: str) -> list[str]:
        """Peers covering the hashed range [h(lo), h(hi)] (unwrapped)."""
        lo = stable_hash(lo_key) % self.key_space
        hi = stable_hash(hi_key) % self.key_space
        if lo > hi:
            lo, hi = hi, lo
        i = bisect.bisect_right(self._boundaries, lo)
        j = bisect.bisect_right(self._boundaries, hi)
        return self._peers[i : j + 1]

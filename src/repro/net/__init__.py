"""Network substrate: simulated links, P2P overlays, pub/sub, dissemination."""

from .dissemination import (
    CoherencySource,
    CoherencySubscription,
    Delivery,
    DisseminationTree,
    OutageBuffer,
    PriorityScheduler,
)
from .overlay import BatonTree, ChordRing, LookupResult, stable_hash
from .p2p_pubsub import P2PDeliveryReport, P2PPubSub
from .pubsub import (
    AttributePredicate,
    Broker,
    Publication,
    Region,
    Subscription,
)
from .simnet import Link, Message, Node, SimulatedNetwork

__all__ = [
    "AttributePredicate",
    "BatonTree",
    "Broker",
    "ChordRing",
    "CoherencySource",
    "CoherencySubscription",
    "Delivery",
    "DisseminationTree",
    "Link",
    "LookupResult",
    "Message",
    "Node",
    "OutageBuffer",
    "P2PDeliveryReport",
    "P2PPubSub",
    "PriorityScheduler",
    "Publication",
    "Region",
    "SimulatedNetwork",
    "Subscription",
    "stable_hash",
]

"""Simulated network substrate.

The paper's dissemination, consistency, and distributed-transaction
arguments (Sec. IV-C, IV-E) all hinge on network latency and bandwidth
constraints.  ``SimulatedNetwork`` provides a deterministic message fabric:
nodes register handlers; links have latency, bandwidth, and loss; messages
are delivered through the shared :class:`~repro.core.clock.EventScheduler`.

This substitutes for the paper's real wide-area / 5G network — the results
we reproduce depend on latency/bandwidth *ratios*, which the model captures.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from ..core.clock import EventScheduler
from ..core.errors import ConfigurationError, NetworkError, PartitionedError
from ..core.metrics import MetricsRegistry
from ..obs.tracing import NoopTracer, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience.faults import FaultInjector

_message_ids = itertools.count(1)


@dataclass
class Message:
    """A message in flight between two nodes.

    ``corrupted`` marks a payload damaged in flight (an injected
    ``corrupt`` fault); receivers reject it at delivery, modelling a
    checksum failure, unless the node opts in via ``accept_corrupt``.
    """

    src: str
    dst: str
    topic: str
    payload: Any
    size_bytes: int = 256
    sent_at: float = 0.0
    corrupted: bool = False
    message_id: int = field(default_factory=lambda: next(_message_ids))


@dataclass
class Link:
    """Directed link properties.

    ``latency_s`` is propagation delay; ``bandwidth_bps`` bounds throughput
    (serialization delay = size / bandwidth); ``loss_rate`` drops messages
    independently at random.
    """

    latency_s: float = 0.001
    bandwidth_bps: float = 1e9
    loss_rate: float = 0.0

    def transfer_delay(self, size_bytes: int) -> float:
        if self.bandwidth_bps <= 0:
            raise ConfigurationError("bandwidth must be positive")
        return self.latency_s + (size_bytes * 8.0) / self.bandwidth_bps


class Node:
    """A network endpoint with per-topic handlers."""

    def __init__(self, name: str, network: "SimulatedNetwork") -> None:
        self.name = name
        self.network = network
        self._handlers: dict[str, Callable[[Message], None]] = {}
        self.received: list[Message] = []
        self.keep_received = False
        self.accept_corrupt = False

    def on(self, topic: str, handler: Callable[[Message], None]) -> None:
        """Register ``handler`` for messages with ``topic``."""
        self._handlers[topic] = handler

    def deliver(self, message: Message) -> None:
        if message.corrupted and not self.accept_corrupt:
            self.network.metrics.counter("net.messages_rejected_corrupt").inc()
            return
        if self.keep_received:
            self.received.append(message)
        handler = self._handlers.get(message.topic)
        if handler is None:
            handler = self._handlers.get("*")
        if handler is not None:
            handler(message)

    def send(self, dst: str, topic: str, payload: Any, size_bytes: int = 256) -> Message:
        return self.network.send(self.name, dst, topic, payload, size_bytes)


class SimulatedNetwork:
    """Deterministic message fabric over an :class:`EventScheduler`.

    A default link applies between any pair without an explicit link.
    Partitions are sets of unordered node pairs that drop all traffic.
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        default_link: Link | None = None,
        seed: int = 0,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        faults: "FaultInjector | None" = None,
    ) -> None:
        self.scheduler = scheduler
        self.default_link = default_link if default_link is not None else Link()
        self.nodes: dict[str, Node] = {}
        self._links: dict[tuple[str, str], Link] = {}
        self._partitioned: set[frozenset[str]] = set()
        self._rng = random.Random(seed)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NoopTracer()
        self.faults = faults

    # -- topology ---------------------------------------------------------

    def add_node(self, name: str) -> Node:
        if name in self.nodes:
            raise ConfigurationError(f"node {name!r} already exists")
        node = Node(name, self)
        self.nodes[name] = node
        return node

    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise NetworkError(f"unknown node {name!r}") from None

    def remove_node(self, name: str) -> None:
        """Unregister a node (crash or restart under a new endpoint).

        Idempotent; messages already in flight toward it are silently
        dropped at delivery time, as a dead endpoint would drop them.
        """
        self.nodes.pop(name, None)

    def set_link(self, src: str, dst: str, link: Link, symmetric: bool = True) -> None:
        self._links[(src, dst)] = link
        if symmetric:
            self._links[(dst, src)] = link

    def link_for(self, src: str, dst: str) -> Link:
        return self._links.get((src, dst), self.default_link)

    def partition(self, a: str, b: str) -> None:
        """Sever connectivity between ``a`` and ``b`` (both directions)."""
        self._partitioned.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        self._partitioned.discard(frozenset((a, b)))

    def partition_group(self, groups) -> None:
        """Split the network into isolated ``groups`` of node names.

        Every pair of nodes in *different* groups is partitioned; pairs
        within a group keep their connectivity.  Group-granularity splits
        are what geo chaos drills want (e.g. one region vs. the rest)
        without enumerating pairwise :meth:`partition` calls.  Node names
        may appear in at most one group; an empty group is rejected.
        """
        groups = [list(group) for group in groups]
        seen: set[str] = set()
        for group in groups:
            if not group:
                raise ConfigurationError("partition_group: empty group")
            for name in group:
                if name in seen:
                    raise ConfigurationError(
                        f"partition_group: {name!r} appears in multiple groups"
                    )
                seen.add(name)
        for i, group in enumerate(groups):
            for other in groups[i + 1:]:
                for a in group:
                    for b in other:
                        self.partition(a, b)

    def heal_all(self) -> None:
        """Clear every partition (pairwise or group-granularity)."""
        self._partitioned.clear()

    def is_partitioned(self, a: str, b: str) -> bool:
        return frozenset((a, b)) in self._partitioned

    # -- transport --------------------------------------------------------

    def send(
        self,
        src: str,
        dst: str,
        topic: str,
        payload: Any,
        size_bytes: int = 256,
    ) -> Message:
        """Send a message; it is delivered asynchronously via the scheduler.

        Raises :class:`PartitionedError` immediately if the pair is
        partitioned (the sender can observe the failure, as a real RPC
        timeout would surface it).
        """
        if dst not in self.nodes:
            raise NetworkError(f"unknown destination {dst!r}")
        if self.is_partitioned(src, dst):
            self.metrics.counter("net.partitioned_sends").inc()
            raise PartitionedError(f"{src} -> {dst} is partitioned")
        extra_delay = 0.0
        corrupted = False
        if self.faults is not None:
            decision = self.faults.decide(
                "net.link",
                target=f"{src}->{dst}",
                kinds=("partition", "drop", "delay", "corrupt"),
            )
            if decision.kind == "partition":
                self.metrics.counter("net.partitioned_sends").inc()
                raise PartitionedError(
                    f"{src} -> {dst}: injected transient partition"
                )
            if decision.kind == "drop":
                self.metrics.counter("net.messages_sent").inc()
                self.metrics.counter("net.messages_dropped").inc()
                return Message(
                    src=src, dst=dst, topic=topic, payload=payload,
                    size_bytes=size_bytes, sent_at=self.scheduler.clock.now,
                )
            if decision.kind == "delay":
                extra_delay = decision.delay_s
            elif decision.kind == "corrupt":
                corrupted = True
        message = Message(
            src=src,
            dst=dst,
            topic=topic,
            payload=payload,
            size_bytes=size_bytes,
            sent_at=self.scheduler.clock.now,
            corrupted=corrupted,
        )
        link = self.link_for(src, dst)
        self.metrics.counter("net.messages_sent").inc()
        self.metrics.counter("net.bytes_sent").inc(size_bytes)
        if link.loss_rate > 0 and self._rng.random() < link.loss_rate:
            self.metrics.counter("net.messages_dropped").inc()
            return message
        delay = link.transfer_delay(size_bytes) + extra_delay
        self.scheduler.schedule(delay, lambda: self._deliver(message))
        return message

    def _deliver(self, message: Message) -> None:
        # A partition raised mid-flight also drops the message.
        if self.is_partitioned(message.src, message.dst):
            self.metrics.counter("net.messages_dropped").inc()
            return
        node = self.nodes.get(message.dst)
        if node is None:
            return
        self.metrics.counter("net.messages_delivered").inc()
        self.metrics.histogram("net.delivery_latency").observe(
            self.scheduler.clock.now - message.sent_at
        )
        node.deliver(message)

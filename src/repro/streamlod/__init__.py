"""AR/VR asset management: LOD pyramids, shared avatar codebooks,
bandwidth-adaptive streaming."""

from .adaptive import AdaptiveStreamer, FrameReport, naive_full_fetch_bytes
from .avatars import (
    EncodedAvatar,
    SharedCodebook,
    StorageReport,
    generate_avatar_population,
    storage_comparison,
)
from .lod import LodLevel, VoxelAsset

__all__ = [
    "AdaptiveStreamer",
    "EncodedAvatar",
    "FrameReport",
    "LodLevel",
    "SharedCodebook",
    "StorageReport",
    "VoxelAsset",
    "generate_avatar_population",
    "naive_full_fetch_bytes",
    "storage_comparison",
]

"""Shared avatar representations (paper Sec. IV-I).

"In contrast to learning a representation for each avatar or object
independently, a promising research direction is to create generalizable
representation that can be shared among similar avatars."

The model: an avatar is a high-dimensional feature vector (standing in for
a neural asset's parameters).  A shared *codebook* of basis vectors is
learned from the population (k-means); each avatar is then stored as a
codeword id plus a sparse residual, instead of the full vector.  Storage
accounting compares:

* independent: ``n_avatars x dim`` floats;
* shared: ``k x dim`` (codebook) + per-avatar (id + top-``r`` residual
  components).

Reconstruction error quantifies the fidelity cost.  Experiment E14 sweeps
population size and similarity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import ConfigurationError

_FLOAT_BYTES = 4
_INDEX_BYTES = 4


def generate_avatar_population(
    n_avatars: int,
    dim: int = 256,
    n_archetypes: int = 8,
    within_archetype_sigma: float = 0.1,
    seed: int = 0,
) -> np.ndarray:
    """Avatars clustered around archetypes (humans are similar to humans)."""
    if n_avatars < 1 or dim < 1 or n_archetypes < 1:
        raise ConfigurationError("invalid population parameters")
    rng = np.random.default_rng(seed)
    archetypes = rng.normal(size=(n_archetypes, dim))
    assignments = rng.integers(0, n_archetypes, size=n_avatars)
    noise = rng.normal(scale=within_archetype_sigma, size=(n_avatars, dim))
    return archetypes[assignments] + noise


def _kmeans(data: np.ndarray, k: int, iterations: int, seed: int) -> np.ndarray:
    """Plain Lloyd's k-means returning centroids (k, dim)."""
    rng = np.random.default_rng(seed)
    centroids = data[rng.choice(len(data), size=min(k, len(data)), replace=False)]
    if len(centroids) < k:
        extra = rng.normal(size=(k - len(centroids), data.shape[1]))
        centroids = np.vstack([centroids, extra])
    for _ in range(iterations):
        distances = ((data[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        labels = distances.argmin(axis=1)
        for j in range(k):
            members = data[labels == j]
            if len(members):
                centroids[j] = members.mean(axis=0)
    return centroids


@dataclass
class EncodedAvatar:
    """Codeword id + sparse residual."""

    codeword: int
    residual_indices: np.ndarray
    residual_values: np.ndarray

    def size_bytes(self) -> int:
        return _INDEX_BYTES + len(self.residual_indices) * (
            _INDEX_BYTES + _FLOAT_BYTES
        )


class SharedCodebook:
    """K-means codebook with sparse-residual encoding."""

    def __init__(
        self,
        k: int = 16,
        residual_components: int = 16,
        iterations: int = 10,
        seed: int = 0,
    ) -> None:
        if k < 1 or residual_components < 0:
            raise ConfigurationError("invalid codebook parameters")
        self.k = k
        self.residual_components = residual_components
        self.iterations = iterations
        self.seed = seed
        self.centroids: np.ndarray | None = None

    def fit(self, avatars: np.ndarray) -> "SharedCodebook":
        self.centroids = _kmeans(avatars, self.k, self.iterations, self.seed)
        return self

    def _require_fit(self) -> np.ndarray:
        if self.centroids is None:
            raise ConfigurationError("codebook not fitted")
        return self.centroids

    def encode(self, avatar: np.ndarray) -> EncodedAvatar:
        centroids = self._require_fit()
        distances = ((centroids - avatar) ** 2).sum(axis=1)
        codeword = int(distances.argmin())
        residual = avatar - centroids[codeword]
        order = np.argsort(-np.abs(residual))[: self.residual_components]
        return EncodedAvatar(
            codeword=codeword,
            residual_indices=order.astype(np.int32),
            residual_values=residual[order].astype(np.float32),
        )

    def decode(self, encoded: EncodedAvatar, dim: int) -> np.ndarray:
        centroids = self._require_fit()
        out = centroids[encoded.codeword].copy()
        out[encoded.residual_indices] += encoded.residual_values
        return out

    def codebook_bytes(self) -> int:
        centroids = self._require_fit()
        return centroids.size * _FLOAT_BYTES


@dataclass
class StorageReport:
    """E14's headline numbers."""

    n_avatars: int
    independent_bytes: int
    shared_bytes: int
    mean_reconstruction_error: float

    @property
    def compression_ratio(self) -> float:
        return self.independent_bytes / max(1, self.shared_bytes)


def storage_comparison(
    avatars: np.ndarray, codebook: SharedCodebook
) -> StorageReport:
    """Store the population both ways; report sizes and fidelity."""
    codebook.fit(avatars)
    independent = avatars.size * _FLOAT_BYTES
    shared = codebook.codebook_bytes()
    errors = []
    dim = avatars.shape[1]
    for avatar in avatars:
        encoded = codebook.encode(avatar)
        shared += encoded.size_bytes()
        reconstructed = codebook.decode(encoded, dim)
        scale = float(np.linalg.norm(avatar)) or 1.0
        errors.append(float(np.linalg.norm(reconstructed - avatar)) / scale)
    return StorageReport(
        n_avatars=len(avatars),
        independent_bytes=independent,
        shared_bytes=shared,
        mean_reconstruction_error=float(np.mean(errors)),
    )

"""Bandwidth-adaptive progressive asset streaming (paper Sec. IV-C/IV-I).

The AR/VR client must fill each frame's visible-asset set within a frame
budget of bytes.  :class:`AdaptiveStreamer` decides, per frame, which
asset's LOD to upgrade next: a greedy utility/byte rule (largest error
reduction per transferred byte first), degrading gracefully when bandwidth
is scarce instead of missing deadlines — the paper's "low resolution
instead of late" principle made concrete.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigurationError
from .lod import VoxelAsset


@dataclass
class FrameReport:
    frame: int
    bytes_sent: int
    budget: int
    upgrades: list[tuple[str, int]]  # (asset, new level)
    mean_error: float
    deadline_missed: bool


@dataclass
class _AssetState:
    asset: VoxelAsset
    current_level: int = -1  # -1 = nothing fetched yet


class AdaptiveStreamer:
    """Greedy per-frame LOD upgrade scheduler."""

    def __init__(self, frame_budget_bytes: int) -> None:
        if frame_budget_bytes <= 0:
            raise ConfigurationError("frame budget must be positive")
        self.frame_budget_bytes = frame_budget_bytes
        self._assets: dict[str, _AssetState] = {}
        self.frames: list[FrameReport] = []

    def set_frame_budget(self, frame_budget_bytes: int) -> None:
        """Re-bound the per-frame byte budget (graceful degradation hook).

        A :class:`~repro.resilience.degrade.DegradationController` calls
        this to cut fidelity when links degrade and restore it after.
        """
        if frame_budget_bytes <= 0:
            raise ConfigurationError("frame budget must be positive")
        self.frame_budget_bytes = frame_budget_bytes

    def add_asset(self, asset: VoxelAsset) -> None:
        if asset.name in self._assets:
            raise ConfigurationError(f"duplicate asset {asset.name!r}")
        self._assets[asset.name] = _AssetState(asset)

    def level_of(self, name: str) -> int:
        return self._assets[name].current_level

    def _error_of(self, state: _AssetState) -> float:
        if state.current_level < 0:
            return 1.0  # nothing shown yet: maximal error
        return state.asset.error(state.current_level)

    def mean_error(self) -> float:
        if not self._assets:
            return 0.0
        return sum(self._error_of(s) for s in self._assets.values()) / len(self._assets)

    def _candidates(self) -> list[tuple[float, str, int, int]]:
        """(utility_per_byte, asset, next_level, cost) for every upgrade."""
        out = []
        for name, state in self._assets.items():
            next_level = state.current_level + 1
            if next_level >= state.asset.levels:
                continue
            cost = state.asset.size_bytes(next_level)
            gain = self._error_of(state) - state.asset.error(next_level)
            out.append((gain / max(cost, 1), name, next_level, cost))
        return out

    def stream_frame(self) -> FrameReport:
        """Spend one frame's budget on the best upgrades available."""
        budget = self.frame_budget_bytes
        spent = 0
        upgrades: list[tuple[str, int]] = []
        # A frame misses its deadline only if some asset has *nothing* to
        # show and even its coarsest level does not fit the remaining budget.
        while True:
            candidates = [c for c in self._candidates() if c[3] <= budget - spent]
            if not candidates:
                break
            candidates.sort(reverse=True)
            _, name, level, cost = candidates[0]
            self._assets[name].current_level = level
            spent += cost
            upgrades.append((name, level))
        unshowable = [
            s for s in self._assets.values() if s.current_level < 0
        ]
        report = FrameReport(
            frame=len(self.frames),
            bytes_sent=spent,
            budget=self.frame_budget_bytes,
            upgrades=upgrades,
            mean_error=self.mean_error(),
            deadline_missed=bool(unshowable),
        )
        self.frames.append(report)
        return report

    def stream(self, n_frames: int) -> list[FrameReport]:
        for _ in range(n_frames):
            self.stream_frame()
        return self.frames

    def total_bytes(self) -> int:
        return sum(f.bytes_sent for f in self.frames)

    def deadline_miss_rate(self) -> float:
        if not self.frames:
            return 0.0
        return sum(f.deadline_missed for f in self.frames) / len(self.frames)


def naive_full_fetch_bytes(assets: list[VoxelAsset]) -> int:
    """Baseline: ship every asset at finest LOD up front."""
    return sum(asset.size_bytes(asset.levels - 1) for asset in assets)

"""Level-of-detail asset representation (paper Sec. IV-I).

High-fidelity digital assets explode in size; LOD pyramids are the data-
management answer: a voxel occupancy grid at full resolution plus
recursively 2x-downsampled levels.  This substitutes for NeRF-style neural
assets — the *systems* questions (bytes per level, quality-vs-transfer
trade-off, progressive refinement) are identical for any multi-resolution
representation, which is what the experiments measure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import ConfigurationError


def _downsample(grid: np.ndarray) -> np.ndarray:
    """Halve resolution by 2x2x2 majority pooling."""
    n = grid.shape[0]
    reshaped = grid.reshape(n // 2, 2, n // 2, 2, n // 2, 2)
    return (reshaped.mean(axis=(1, 3, 5)) >= 0.5).astype(np.uint8)


def _upsample_to(grid: np.ndarray, target_n: int) -> np.ndarray:
    """Nearest-neighbour upsample a cubic grid to ``target_n`` per axis."""
    factor = target_n // grid.shape[0]
    return np.repeat(np.repeat(np.repeat(grid, factor, 0), factor, 1), factor, 2)


@dataclass(frozen=True)
class LodLevel:
    """One level of the pyramid (level 0 = coarsest)."""

    level: int
    resolution: int
    size_bytes: int
    error: float  # voxel disagreement vs the finest level, in [0, 1]


class VoxelAsset:
    """A cubic voxel occupancy asset with an LOD pyramid.

    ``resolution`` must be a power of two.  The pyramid stores every level
    from coarsest (4^3) to finest; ``size_bytes`` models 1 bit per voxel
    (packed), the floor for any occupancy codec.
    """

    MIN_RES = 4

    def __init__(self, name: str, occupancy: np.ndarray) -> None:
        if occupancy.ndim != 3 or len(set(occupancy.shape)) != 1:
            raise ConfigurationError("occupancy must be a cube")
        n = occupancy.shape[0]
        if n < self.MIN_RES or n & (n - 1):
            raise ConfigurationError("resolution must be a power of two >= 4")
        self.name = name
        self._grids: list[np.ndarray] = []  # coarsest first
        grid = (occupancy > 0).astype(np.uint8)
        chain = [grid]
        while grid.shape[0] > self.MIN_RES:
            grid = _downsample(grid)
            chain.append(grid)
        self._grids = list(reversed(chain))

    @classmethod
    def sphere(cls, name: str, resolution: int = 64, radius_frac: float = 0.4) -> "VoxelAsset":
        """A procedurally generated solid-sphere asset."""
        axis = np.arange(resolution) - (resolution - 1) / 2
        x, y, z = np.meshgrid(axis, axis, axis, indexing="ij")
        occupancy = (x**2 + y**2 + z**2) <= (radius_frac * resolution) ** 2
        return cls(name, occupancy.astype(np.uint8))

    @classmethod
    def random_blob(cls, name: str, resolution: int = 64, seed: int = 0, fill: float = 0.3) -> "VoxelAsset":
        """A random blob: low-frequency structure plus fine surface detail.

        The fine detail (random voxel flips) is unrepresentable at coarse
        levels, so every LOD has genuinely lower fidelity than the next —
        the property adaptive streaming trades on.
        """
        rng = np.random.default_rng(seed)
        coarse = rng.random((8, 8, 8))
        blob = _upsample_to((coarse > (1 - fill)).astype(np.uint8), resolution)
        detail = rng.random((resolution, resolution, resolution)) < 0.05
        return cls(name, np.bitwise_xor(blob, detail.astype(np.uint8)))

    @property
    def levels(self) -> int:
        return len(self._grids)

    @property
    def finest_resolution(self) -> int:
        return self._grids[-1].shape[0]

    def grid(self, level: int) -> np.ndarray:
        if not 0 <= level < self.levels:
            raise ConfigurationError(f"no level {level}")
        return self._grids[level]

    def size_bytes(self, level: int) -> int:
        resolution = self.grid(level).shape[0]
        return max(1, resolution**3 // 8)  # 1 bit per voxel, packed

    def error(self, level: int) -> float:
        """Fraction of finest-level voxels the level gets wrong."""
        finest = self._grids[-1]
        approx = _upsample_to(self.grid(level), finest.shape[0])
        return float(np.mean(approx != finest))

    def pyramid(self) -> list[LodLevel]:
        return [
            LodLevel(
                level=i,
                resolution=self.grid(i).shape[0],
                size_bytes=self.size_bytes(i),
                error=self.error(i),
            )
            for i in range(self.levels)
        ]

    def total_pyramid_bytes(self) -> int:
        return sum(self.size_bytes(i) for i in range(self.levels))

    def progressive_delta_bytes(self) -> list[int]:
        """Bytes to *upgrade* level by level (progressive streaming).

        Modeled as the full size of each next level (conservative: real
        codecs send residuals, which are smaller still).
        """
        return [self.size_bytes(i) for i in range(self.levels)]

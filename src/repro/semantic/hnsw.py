"""A from-scratch HNSW approximate-nearest-neighbour index.

Hierarchical Navigable Small World graphs (Malkov & Yashunin) built like
everything else in this repo: deterministic and instrumented.  The three
departures from a textbook implementation, and why:

* **Node levels derive from the key, not an RNG stream.**  A node's
  level is ``⌊-ln(u)·mL⌋`` with ``u`` uniform from
  :func:`repro.net.overlay.stable_hash` of the key, so there is no RNG
  state to thread through shards: the same ingest sequence builds the
  same graph on every host and every run, and a key keeps its level no
  matter which shard it lands on — which is what lets E31 pin identical
  top-k across 1-vs-4-shard builds (at search beams wide enough that
  link-order differences cannot change the returned keys).
* **Deletes are tombstones.**  A removed node keeps its links and stays
  traversable (dropping it could disconnect the graph) but is filtered
  from results; re-adding the key inserts a fresh node.  Ingest-path
  maintenance (``drop_entity``, payload updates) therefore never
  degrades reachability.
* **Distance work is counted.**  Every scored candidate increments
  :attr:`HNSWIndex.distance_evals`; the benchmark's ≥5× speedup claim is
  over this simulated work metric (evaluations avoided vs brute force),
  which is host-independent, with wall-clock reported alongside.

Vectors are L2-normalized on insert so cosine similarity is a dot
product; per-hop neighbour scoring is one vectorized ``matrix @ query``.
All orderings break ties on node id (insertion order) or key, never on
float identity alone.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from ..core.errors import ConfigurationError
from ..net.overlay import stable_hash


def normalize(vector: np.ndarray) -> np.ndarray:
    """L2-normalize; rejects zero vectors (no direction to compare)."""
    arr = np.asarray(vector, dtype=np.float64)
    norm = float(np.linalg.norm(arr))
    if norm == 0.0:
        raise ConfigurationError("cannot index/search a zero vector")
    return arr / norm


def brute_force_topk(
    keys: list[str], matrix: np.ndarray, vector: np.ndarray, k: int
) -> list[tuple[str, float]]:
    """Exact top-k by cosine score over normalized rows: the recall oracle.

    Scores every row (``len(keys)`` distance evaluations — the baseline
    the index's ``distance_evals`` speedup is measured against) and
    orders by ``(-score, key)``, the same total order the ANN paths use.
    """
    if not keys:
        return []
    scores = matrix @ normalize(vector)
    ranked = sorted(zip(keys, scores.tolist()), key=lambda pair: (-pair[1], pair[0]))
    return ranked[:k]


class HNSWIndex:
    """Deterministic HNSW over cosine similarity.

    ``m`` is the connectivity (max degree ``m`` per upper layer, ``2m``
    on layer 0), ``ef_construction``/``ef_search`` the candidate-beam
    widths for insert and query.  ``search`` returns ``(key, score)``
    pairs ordered by ``(-score, key)``.
    """

    def __init__(
        self,
        dim: int,
        m: int = 8,
        ef_construction: int = 64,
        ef_search: int = 48,
    ) -> None:
        if dim < 1:
            raise ConfigurationError("dim must be >= 1")
        if m < 2:
            raise ConfigurationError("m must be >= 2")
        if ef_construction < m or ef_search < 1:
            raise ConfigurationError(
                "ef_construction must be >= m and ef_search >= 1"
            )
        self.dim = dim
        self.m = m
        self.ef_construction = ef_construction
        self.ef_search = ef_search
        self._level_mult = 1.0 / math.log(m)
        # Node storage: id = insertion order.  The matrix over-allocates
        # (doubling) so per-hop scoring can fancy-index live rows.
        self._matrix = np.zeros((0, dim), dtype=np.float64)
        self._count = 0
        self._key_of: list[str] = []
        self._level_of: list[int] = []
        self._links: list[list[list[int]]] = []  # id → level → neighbour ids
        self._alive: list[bool] = []
        self._id_of: dict[str, int] = {}
        self._entry: int | None = None
        self._max_level = -1
        #: Cumulative scored-candidate count (the simulated work metric).
        self.distance_evals = 0

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._id_of)

    def __contains__(self, key: str) -> bool:
        return key in self._id_of

    def keys(self) -> list[str]:
        return sorted(self._id_of)

    @property
    def node_count(self) -> int:
        """Graph nodes including tombstones (storage actually held)."""
        return self._count

    def vector_of(self, key: str) -> np.ndarray:
        return self._matrix[self._id_of[key]].copy()

    # -- level assignment ---------------------------------------------------

    def level_for(self, key: str) -> int:
        """The key's graph level: exponential, derived from the key alone."""
        u = (stable_hash(f"hnsw:{key}") + 1) / float((1 << 32) + 1)
        return int(-math.log(u) * self._level_mult)

    # -- scoring ------------------------------------------------------------

    def _distances(self, ids: list[int], query: np.ndarray) -> np.ndarray:
        """Negated cosine scores of ``ids`` (lower = closer), counted."""
        self.distance_evals += len(ids)
        return -(self._matrix[ids] @ query)

    # -- graph search -------------------------------------------------------

    def _greedy_descent(
        self, query: np.ndarray, entry: tuple[float, int], level: int
    ) -> tuple[float, int]:
        """ef=1 walk on one upper layer: hop to the best neighbour until
        no neighbour improves."""
        best_dist, best_id = entry
        improved = True
        while improved:
            improved = False
            neighbours = self._links[best_id][level]
            if not neighbours:
                break
            dists = self._distances(neighbours, query)
            pick = int(np.argmin(dists))  # first occurrence: id-order tie-break
            if dists[pick] < best_dist:
                best_dist, best_id = float(dists[pick]), neighbours[pick]
                improved = True
        return best_dist, best_id

    def _search_layer(
        self,
        query: np.ndarray,
        entries: list[tuple[float, int]],
        ef: int,
        level: int,
    ) -> list[tuple[float, int]]:
        """Beam search on one layer; returns ≤ ``ef`` (dist, id) ascending."""
        visited = {node for _, node in entries}
        candidates = list(entries)
        heapq.heapify(candidates)
        # Max-heap of the current best ef results, as (-dist, -id): when
        # the beam overflows on equal distances it must evict the LARGEST
        # id, because the final ranking breaks score ties toward smaller
        # keys (ids follow insertion order, which follows key order on
        # the seeded corpora) — evicting small ids first would throw away
        # exactly the tie members the exact oracle keeps.
        results = [(-dist, -node) for dist, node in entries]
        heapq.heapify(results)
        while candidates:
            dist, node = heapq.heappop(candidates)
            if len(results) >= ef and dist > -results[0][0]:
                break
            neighbours = [
                n for n in self._links[node][level] if n not in visited
            ]
            if not neighbours:
                continue
            visited.update(neighbours)
            dists = self._distances(neighbours, query)
            worst = -results[0][0] if results else math.inf
            for n_dist, n_id in zip(dists.tolist(), neighbours):
                if len(results) < ef or n_dist < worst:
                    heapq.heappush(candidates, (n_dist, n_id))
                    heapq.heappush(results, (-n_dist, -n_id))
                    if len(results) > ef:
                        heapq.heappop(results)
                    worst = -results[0][0]
        return sorted((-neg, -node) for neg, node in results)

    # -- neighbour selection ------------------------------------------------

    def _select_neighbours(
        self, candidates: list[tuple[float, int]], cap: int
    ) -> list[int]:
        """Diversity-pruned selection (the paper's SELECT-NEIGHBORS-HEURISTIC).

        Taking the ``cap`` *closest* candidates fails on clustered data:
        every link lands inside the new node's own near-duplicate
        cluster and the graph loses the long-range edges beam search
        needs to hop between clusters.  So a candidate is kept only if
        it is closer to the new node than to every neighbour already
        chosen — each accepted link covers a distinct direction — and
        any remaining capacity is backfilled with the closest pruned
        candidates (keepPrunedConnections) so degree stays high.
        """
        chosen: list[int] = []
        pruned: list[int] = []
        for dist, node in candidates:
            if len(chosen) >= cap:
                break
            if chosen and bool(
                np.any(self._distances(chosen, self._matrix[node]) < dist)
            ):
                pruned.append(node)
            else:
                chosen.append(node)
        chosen.extend(pruned[: cap - len(chosen)])
        return chosen

    # -- mutation -----------------------------------------------------------

    def _append_node(self, key: str, vector: np.ndarray, level: int) -> int:
        if self._count == self._matrix.shape[0]:
            grown = np.zeros(
                (max(64, 2 * self._matrix.shape[0]), self.dim), dtype=np.float64
            )
            grown[: self._count] = self._matrix[: self._count]
            self._matrix = grown
        node = self._count
        self._matrix[node] = vector
        self._count += 1
        self._key_of.append(key)
        self._level_of.append(level)
        self._links.append([[] for _ in range(level + 1)])
        self._alive.append(True)
        self._id_of[key] = node
        return node

    def add(self, key: str, vector: np.ndarray) -> None:
        """Insert (or replace) ``key``; the replace is delete + fresh insert."""
        if key in self._id_of:
            self.remove(key)
        query = normalize(vector)
        if query.shape != (self.dim,):
            raise ConfigurationError(
                f"vector has dim {query.shape}, index wants ({self.dim},)"
            )
        level = self.level_for(key)
        node = self._append_node(key, query, level)
        if self._entry is None:
            self._entry, self._max_level = node, level
            return
        entry_dist = float(self._distances([self._entry], query)[0])
        entry: tuple[float, int] = (entry_dist, self._entry)
        for layer in range(self._max_level, level, -1):
            entry = self._greedy_descent(query, entry, layer)
        for layer in range(min(level, self._max_level), -1, -1):
            found = self._search_layer(
                query, [entry], self.ef_construction, layer
            )
            cap = self.m if layer > 0 else 2 * self.m
            chosen = self._select_neighbours(found, self.m)
            self._links[node][layer] = chosen
            for neighbour in chosen:
                back = self._links[neighbour][layer]
                back.append(node)
                if len(back) > cap:
                    # Re-select the neighbour's links with the same
                    # diversity pruning (ranked ascending, id tie-break).
                    dists = self._distances(back, self._matrix[neighbour])
                    ranked = sorted(zip(dists.tolist(), back))
                    self._links[neighbour][layer] = self._select_neighbours(
                        ranked, cap
                    )
            entry = found[0]
        if level > self._max_level:
            self._entry, self._max_level = node, level

    def remove(self, key: str) -> None:
        """Tombstone ``key``: unreturnable, but still traversable."""
        node = self._id_of.pop(key, None)
        if node is None:
            raise ConfigurationError(f"key {key!r} not in index")
        self._alive[node] = False

    def discard(self, key: str) -> bool:
        """Tombstone ``key`` if present; True when something was removed."""
        if key in self._id_of:
            self.remove(key)
            return True
        return False

    # -- queries ------------------------------------------------------------

    def search(
        self, vector: np.ndarray, k: int, ef: int | None = None
    ) -> list[tuple[str, float]]:
        """Approximate top-k: ``(key, score)`` ordered by ``(-score, key)``."""
        if k < 1:
            raise ConfigurationError("k must be >= 1")
        if self._entry is None or not self._id_of:
            return []
        query = normalize(vector)
        beam = max(ef if ef is not None else self.ef_search, k)
        entry_dist = float(self._distances([self._entry], query)[0])
        entry: tuple[float, int] = (entry_dist, self._entry)
        for layer in range(self._max_level, 0, -1):
            entry = self._greedy_descent(query, entry, layer)
        found = self._search_layer(query, [entry], beam, 0)
        out = [
            (self._key_of[node], -dist)
            for dist, node in found
            if self._alive[node]
        ]
        out.sort(key=lambda pair: (-pair[1], pair[0]))
        return out[:k]

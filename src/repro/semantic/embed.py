"""Deterministic feature-hashed embeddings for text and scene payloads.

Language-based retrieval (ROADMAP item 1, grounded in "A Language-based
solution to enable Metaverse Retrieval") needs query and object vectors
that are *reproducible*: every benchmark claim in this repo derives from
seeded streams, so embeddings come from feature hashing — each token is
hashed with the repo-wide :func:`repro.net.overlay.stable_hash` onto one
of ``dim`` buckets with a deterministic ±1 sign, and the bucket counts
are L2-normalized.  Cosine similarity between two such vectors is then a
signed bag-of-words overlap: no model weights, no floating-point
nondeterminism, identical on every host and every run.

Objects embed from the *describable* parts of their payload only: string
fields and lists of strings (names, tags, room labels).  Numeric
telemetry (positions, stock, prices) contributes no tokens, so pure
telemetry records embed to ``None`` and stay out of the semantic index —
which also keeps the ingest hot path cheap for the numeric workloads
E27 measures.
"""

from __future__ import annotations

import re

import numpy as np

from ..net.overlay import stable_hash

#: Default embedding width.  64 signed buckets keep hash collisions rare
#: for scene-scale vocabularies while a 20k-object corpus still fits in
#: ~10 MB of float64.
DEFAULT_DIM = 64

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> list[str]:
    """Lower-cased alphanumeric tokens, in order of appearance."""
    return _TOKEN_RE.findall(text.lower())


def payload_tokens(payload: dict) -> list[str]:
    """Tokens from a payload's describable fields, in sorted-field order.

    Strings and (nested) lists/tuples of strings contribute; numbers and
    everything else do not.  Field order is sorted so dict insertion
    order can never leak into the embedding.
    """
    tokens: list[str] = []
    for name in sorted(payload):
        value = payload[name]
        if isinstance(value, str):
            tokens.extend(tokenize(value))
        elif isinstance(value, (list, tuple)):
            for element in value:
                if isinstance(element, str):
                    tokens.extend(tokenize(element))
    return tokens


def embed_tokens(tokens: list[str], dim: int = DEFAULT_DIM) -> np.ndarray | None:
    """L2-normalized signed bucket counts, or ``None`` with no tokens."""
    if not tokens:
        return None
    vector = np.zeros(dim, dtype=np.float64)
    for token in tokens:
        h = stable_hash(f"embed:{token}")
        # Low bits pick the bucket, an independent high bit the sign
        # (classic feature hashing keeps collisions unbiased in
        # expectation).
        vector[h % dim] += 1.0 if (h >> 16) & 1 else -1.0
    norm = float(np.linalg.norm(vector))
    if norm == 0.0:
        # Colliding signs cancelled every bucket; treat as undescribable.
        return None
    return vector / norm


def embed_text(text: str, dim: int = DEFAULT_DIM) -> np.ndarray | None:
    """Embed a free-text query phrase."""
    return embed_tokens(tokenize(text), dim)


def embed_payload(payload: dict, dim: int = DEFAULT_DIM) -> np.ndarray | None:
    """Embed a stored object's payload (``None`` if nothing describable)."""
    return embed_tokens(payload_tokens(payload), dim)

"""Semantic retrieval: language-based queries over the metaverse world.

Deterministic feature-hashed embeddings (:mod:`repro.semantic.embed`), a
from-scratch HNSW ANN index maintained per shard from the ingest path
(:mod:`repro.semantic.hnsw`, :mod:`repro.semantic.index`), and the query
modality that plugs it all into the modality-agnostic query plane
(:mod:`repro.semantic.modality`).  Importing this package registers the
modality — the one and only integration step; no deployment-layer
dispatch code knows semantic retrieval exists.
"""

from ..query.plane import register_modality
from .embed import (
    DEFAULT_DIM,
    embed_payload,
    embed_text,
    embed_tokens,
    payload_tokens,
    tokenize,
)
from .hnsw import HNSWIndex, brute_force_topk, normalize
from .index import (
    JITTER_SCALE,
    SemanticIndex,
    SemanticIndexConfig,
    indexed_vector,
    tie_break_jitter,
)
from .modality import DEFAULT_K, SemanticModality, semantic_query

#: The registered modality instance (idempotent across re-imports).
SEMANTIC_MODALITY = register_modality(SemanticModality(), replace=True)

__all__ = [
    "DEFAULT_DIM",
    "DEFAULT_K",
    "HNSWIndex",
    "JITTER_SCALE",
    "SEMANTIC_MODALITY",
    "SemanticIndex",
    "SemanticIndexConfig",
    "SemanticModality",
    "brute_force_topk",
    "embed_payload",
    "embed_text",
    "embed_tokens",
    "indexed_vector",
    "normalize",
    "payload_tokens",
    "semantic_query",
    "tie_break_jitter",
    "tokenize",
]

"""The semantic-retrieval query modality: the query plane's fourth tenant.

This module is the *entire* integration surface between semantic
retrieval and the deployment layers: :class:`SemanticModality` registers
itself in the plane's default registry (see :mod:`repro.semantic`) and
from then on ``platform.query``, ``cluster.query``, and ``geo.query``
dispatch it exactly like prefix/spatial — zero edits to any of their
code, which is the property the tentpole exists to prove.

Planning embeds the query text *once* (a real rewrite-hook use: the
text → vector step is per-query work, not per-shard work); shard-local
execution is a :meth:`~repro.platform.platform.MetaversePlatform.
semantic_search` over that shard's HNSW graph; the merge is the
scatter-gather top-k fold ordered by ``(-score, key)``, identical no
matter how the corpus is sharded.
"""

from __future__ import annotations

from typing import Any

from ..core.errors import ConfigurationError
from ..query.plane import QueryModality, QueryPlan, QueryRequest
from .embed import DEFAULT_DIM, embed_text

#: Default result width for semantic queries.
DEFAULT_K = 10


class SemanticModality(QueryModality):
    """Top-k semantic retrieval over per-shard HNSW indexes."""

    name = "semantic"

    def plan(self, request: QueryRequest) -> QueryPlan:
        params = dict(request.params)
        params.setdefault("k", DEFAULT_K)
        if int(params["k"]) < 1:
            raise ConfigurationError("semantic queries need k >= 1")
        if params.get("vector") is None and not params.get("text"):
            raise ConfigurationError(
                "semantic queries need 'text' or a precomputed 'vector'"
            )
        return QueryPlan(request.modality, params)

    def rewrite(self, plan: QueryPlan) -> QueryPlan:
        """Embed the query text once at plan time, not once per shard.

        A text whose tokens all hash away (or an empty phrase) plans to
        a ``None`` vector, which executes as an empty result set rather
        than a meaningless similarity ranking.
        """
        if plan.params.get("vector") is not None:
            return super().rewrite(plan)
        params = dict(plan.params)
        params["vector"] = embed_text(
            str(params["text"]), int(params.get("dim", DEFAULT_DIM))
        )
        return super().rewrite(QueryPlan(plan.modality, params))

    def execute(self, shard, plan: QueryPlan) -> list:
        vector = plan.params.get("vector")
        if vector is None:
            return []
        items = shard.semantic_search(
            vector, int(plan.params["k"]), ef=plan.params.get("ef")
        )
        return self.apply_filters(plan, items)

    def merge(self, partials: list[list], plan: QueryPlan) -> list:
        """Fold per-shard top-k lists into the global top-k by (score, key)."""
        items = [item for partial in partials for item in partial]
        items.sort(key=lambda pair: (-pair[1], pair[0]))
        return items[: int(plan.params["k"])]


def semantic_query(
    text: str | None = None,
    *,
    vector=None,
    k: int = DEFAULT_K,
    ef: int | None = None,
    dim: int = DEFAULT_DIM,
) -> QueryRequest:
    """A :class:`QueryRequest` for the semantic modality."""
    params: dict[str, Any] = {"k": k, "dim": dim}
    if text is not None:
        params["text"] = text
    if vector is not None:
        params["vector"] = vector
    if ef is not None:
        params["ef"] = ef
    return QueryRequest("semantic", params)

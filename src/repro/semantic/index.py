"""Per-shard semantic index: embeddings + HNSW, fed from the ingest path.

:class:`SemanticIndex` is what a :class:`~repro.platform.platform.
MetaversePlatform` owns when built with ``semantic_index``: every entity
write (``write_record``, ``write_record_batch``, ``import_entity``) and
delete (``drop_entity``) keeps it coherent, exactly like the spatial
position memo — so shard failover promotion, which replays entities via
``import_entity``, rebuilds the graph for free.  Records whose payloads
carry nothing describable (pure numeric telemetry) embed to ``None`` and
are skipped; a record *updated* from describable to numeric is evicted.

Stored vectors are the payload embedding plus a tiny deterministic
per-key **tie-breaking jitter** (:func:`tie_break_jitter`).  Bag-of-words
embeddings give distinct objects with the same description *identical*
vectors; exact-duplicate clusters are the one input graph-based ANN
handles badly (they collapse into distance-zero cliques that can trap or
exclude the search beam), and they make "the top-k" ill-defined — any
tie member is as right as another.  An ~1e-4 key-derived offset gives
every query a strict total score order that is a pure function of
``(key, payload)``: the same record scores bit-identically on any shard
of any deployment, which is what lets E31 pin identical top-k across
1-vs-4-shard builds.  The brute-force oracle (:meth:`SemanticIndex.
exact_search`) reads the same stored vectors, so recall is measured
against the same order.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..core.errors import ConfigurationError
from .embed import DEFAULT_DIM, embed_payload
from .hnsw import HNSWIndex, brute_force_topk, normalize

#: Jitter magnitude per component: large enough to order ties strictly
#: (float64 resolves ~1e-16), small enough to never reorder genuinely
#: different similarity scores (token-overlap steps are >= ~1e-2).
JITTER_SCALE = 1e-4


def tie_break_jitter(key: str, dim: int) -> np.ndarray:
    """A key-derived offset in [-scale/2, +scale/2]^dim.

    Components come straight from counter-mode SHA-256 of the key, not a
    seeded RNG, so the bytes (and every artifact derived from them) are
    identical on every host, numpy version, and run.
    """
    out = np.empty(dim, dtype=np.float64)
    filled, block = 0, 0
    while filled < dim:
        digest = hashlib.sha256(f"jitter:{key}:{block}".encode()).digest()
        take = min(dim - filled, len(digest))
        out[filled:filled + take] = [
            byte / 255.0 - 0.5 for byte in digest[:take]
        ]
        filled += take
        block += 1
    return out * JITTER_SCALE


def indexed_vector(key: str, payload: dict, dim: int = DEFAULT_DIM) -> np.ndarray | None:
    """The exact vector the index stores for ``(key, payload)`` —
    embedding plus jitter, normalized — or ``None`` if undescribable.
    Benchmarks build their brute-force oracle matrices from this."""
    vector = embed_payload(payload, dim)
    if vector is None:
        return None
    return normalize(vector + tie_break_jitter(key, dim))


@dataclass(frozen=True)
class SemanticIndexConfig:
    """Shape of one shard's semantic index."""

    dim: int = DEFAULT_DIM
    m: int = 8
    ef_construction: int = 64
    ef_search: int = 48

    def validate(self) -> "SemanticIndexConfig":
        if self.dim < 1:
            raise ConfigurationError("dim must be >= 1")
        if self.m < 2:
            raise ConfigurationError("m must be >= 2")
        if self.ef_construction < self.m or self.ef_search < 1:
            raise ConfigurationError(
                "ef_construction must be >= m and ef_search >= 1"
            )
        return self


class SemanticIndex:
    """Embeds payloads and maintains the shard-local ANN graph."""

    def __init__(self, config: SemanticIndexConfig | None = None) -> None:
        self.config = (config or SemanticIndexConfig()).validate()
        self.hnsw = HNSWIndex(
            dim=self.config.dim,
            m=self.config.m,
            ef_construction=self.config.ef_construction,
            ef_search=self.config.ef_search,
        )

    def __len__(self) -> int:
        return len(self.hnsw)

    def __contains__(self, key: str) -> bool:
        return key in self.hnsw

    @property
    def distance_evals(self) -> int:
        return self.hnsw.distance_evals

    def index_record(self, key: str, payload: dict) -> bool:
        """(Re-)index one entity; True when it landed in the graph."""
        vector = indexed_vector(key, payload, self.config.dim)
        if vector is None:
            self.hnsw.discard(key)
            return False
        self.hnsw.add(key, vector)
        return True

    def discard(self, key: str) -> bool:
        return self.hnsw.discard(key)

    def search(
        self, vector: np.ndarray, k: int, ef: int | None = None
    ) -> list[tuple[str, float]]:
        return self.hnsw.search(vector, k, ef=ef)

    def exact_search(self, vector: np.ndarray, k: int) -> list[tuple[str, float]]:
        """Brute-force oracle over the *live* indexed vectors (recall floor)."""
        keys = self.hnsw.keys()
        if not keys:
            return []
        matrix = np.stack([self.hnsw.vector_of(key) for key in keys])
        return brute_force_topk(keys, matrix, normalize(vector), k)

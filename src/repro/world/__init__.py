"""The twin world: spaces, entities, sync, and data organization."""

from .entities import Avatar, Entity, ProximityMatch
from .history import HistoryRecorder, ReplayFrame
from .organization import (
    HybridStore,
    SeparateStores,
    TaggedUnifiedStore,
    make_organization,
    run_query_mix,
)
from .twin import MetaverseWorld, MirroredEntity, PhysicalSpace, VirtualSpace

__all__ = [
    "Avatar",
    "Entity",
    "HistoryRecorder",
    "HybridStore",
    "MetaverseWorld",
    "MirroredEntity",
    "PhysicalSpace",
    "ProximityMatch",
    "ReplayFrame",
    "SeparateStores",
    "TaggedUnifiedStore",
    "VirtualSpace",
    "make_organization",
    "run_query_mix",
]

"""The physical/virtual twin world and its synchronization engine.

Paper Fig. 1: "data flow within a single space, but more importantly, data
also flow into the other space" — and Sec. IV-C: perfect cross-space
consistency is unattainable, so the virtual mirror tracks the physical
world within *coherency bounds*.

:class:`MetaverseWorld` holds both spaces:

* the :class:`PhysicalSpace` tracks entities in a grid index and advances
  their motion;
* the :class:`VirtualSpace` holds avatars plus the *mirrored* view of
  physical entities, updated by the sync engine;
* :meth:`MetaverseWorld.sync` mirrors each entity's position only when it
  drifted more than ``position_epsilon`` from the last mirrored value —
  the coherency filter — and counts the messages saved;
* the shared :class:`~repro.core.events.EventBus` carries cross-space
  events (virtual air-raid -> physical "perish", per the military example).

Cross-space social matching (:meth:`cross_space_encounters`) implements the
paper's gaming scenario: a physical user and a virtual avatar at the same
location discover each other.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigurationError, KeyNotFoundError
from ..core.events import EventBus
from ..core.metrics import MetricsRegistry
from ..core.records import Space
from ..obs.tracing import NoopTracer, Tracer
from ..spatial.geometry import BBox, Point
from ..spatial.grid import GridIndex
from .entities import Avatar, Entity, ProximityMatch


@dataclass
class MirroredEntity:
    """The virtual space's view of a physical entity."""

    entity_id: str
    position: Point
    mirrored_at: float


class PhysicalSpace:
    """Ground truth: entities with motion, indexed for range queries."""

    def __init__(self, cell_size: float = 50.0) -> None:
        self.entities: dict[str, Entity] = {}
        self.index = GridIndex(cell_size=cell_size)

    def add(self, entity: Entity) -> None:
        if entity.entity_id in self.entities:
            raise ConfigurationError(f"duplicate entity {entity.entity_id!r}")
        self.entities[entity.entity_id] = entity
        self.index.insert(entity.entity_id, entity.position)

    def remove(self, entity_id: str) -> None:
        if entity_id not in self.entities:
            raise KeyNotFoundError(entity_id)
        del self.entities[entity_id]
        self.index.remove(entity_id)

    def advance(self, dt: float) -> None:
        for entity in self.entities.values():
            entity.advance(dt)
            self.index.move(entity.entity_id, entity.position)

    def in_region(self, box: BBox) -> list[Entity]:
        return [self.entities[eid] for eid in self.index.query_range(box)]


class VirtualSpace:
    """Avatars plus the mirrored physical view."""

    def __init__(self, cell_size: float = 50.0) -> None:
        self.avatars: dict[str, Avatar] = {}
        self.mirror: dict[str, MirroredEntity] = {}
        self.avatar_index = GridIndex(cell_size=cell_size)

    def add_avatar(self, avatar: Avatar) -> None:
        if avatar.avatar_id in self.avatars:
            raise ConfigurationError(f"duplicate avatar {avatar.avatar_id!r}")
        self.avatars[avatar.avatar_id] = avatar
        self.avatar_index.insert(avatar.avatar_id, avatar.position)

    def move_avatar(self, avatar_id: str, position: Point) -> None:
        avatar = self.avatars.get(avatar_id)
        if avatar is None:
            raise KeyNotFoundError(avatar_id)
        avatar.position = position
        self.avatar_index.move(avatar_id, position)

    def mirrored_position(self, entity_id: str) -> Point:
        mirrored = self.mirror.get(entity_id)
        if mirrored is None:
            raise KeyNotFoundError(entity_id)
        return mirrored.position


class MetaverseWorld:
    """Both spaces plus the coherency-bounded sync engine."""

    def __init__(
        self,
        position_epsilon: float = 5.0,
        cell_size: float = 50.0,
        bus: EventBus | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if position_epsilon < 0:
            raise ConfigurationError("position_epsilon must be >= 0")
        self.physical = PhysicalSpace(cell_size=cell_size)
        self.virtual = VirtualSpace(cell_size=cell_size)
        self.position_epsilon = position_epsilon
        self.bus = bus if bus is not None else EventBus()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NoopTracer()
        self.now = 0.0

    # -- time -------------------------------------------------------------

    def tick(self, dt: float) -> int:
        """Advance physical motion and sync; returns mirror updates sent."""
        self.now += dt
        self.physical.advance(dt)
        return self.sync()

    # -- synchronization -----------------------------------------------------

    def sync(self) -> int:
        """Mirror drifted entities into the virtual space (coherency filter)."""
        with self.tracer.span("world.sync", entities=len(self.physical.entities)):
            return self._sync_mirrors()

    def _sync_mirrors(self) -> int:
        sent = 0
        for entity in self.physical.entities.values():
            mirrored = self.virtual.mirror.get(entity.entity_id)
            if (
                mirrored is None
                or mirrored.position.distance_to(entity.position)
                > self.position_epsilon
            ):
                self.virtual.mirror[entity.entity_id] = MirroredEntity(
                    entity_id=entity.entity_id,
                    position=entity.position,
                    mirrored_at=self.now,
                )
                sent += 1
                self.metrics.counter("world.mirror_updates").inc()
            else:
                self.metrics.counter("world.mirror_suppressed").inc()
        # Drop mirrors of entities that left the physical space.
        for entity_id in list(self.virtual.mirror):
            if entity_id not in self.physical.entities:
                del self.virtual.mirror[entity_id]
        return sent

    def staleness(self, entity_id: str) -> float:
        """Positional divergence between truth and the virtual mirror."""
        entity = self.physical.entities.get(entity_id)
        mirrored = self.virtual.mirror.get(entity_id)
        if entity is None or mirrored is None:
            return float("inf")
        return entity.position.distance_to(mirrored.position)

    def max_staleness(self) -> float:
        if not self.physical.entities:
            return 0.0
        return max(self.staleness(eid) for eid in self.physical.entities)

    # -- cross-space features -----------------------------------------------------

    def cross_space_encounters(self, radius: float) -> list[ProximityMatch]:
        """Physical entities near avatars at the 'same' location (Sec. II).

        A linked avatar is skipped against its own physical owner — finding
        yourself is not an encounter.
        """
        if radius <= 0:
            raise ConfigurationError("radius must be positive")
        matches: list[ProximityMatch] = []
        for entity in self.physical.entities.values():
            nearby = self.virtual.avatar_index.query_radius(entity.position, radius)
            for avatar_id in nearby:
                avatar = self.virtual.avatars[avatar_id]
                if avatar.owner_entity_id == entity.entity_id:
                    continue
                matches.append(
                    ProximityMatch(
                        first=entity.entity_id,
                        second=avatar_id,
                        distance=entity.position.distance_to(avatar.position),
                        first_space=Space.PHYSICAL,
                        second_space=Space.VIRTUAL,
                    )
                )
        return matches

    def physical_entities_in_virtual_view(
        self, viewpoint: Point, radius: float
    ) -> list[str]:
        """What a cyber user 'sees' of the physical world: mirror state only."""
        out = []
        for mirrored in self.virtual.mirror.values():
            if mirrored.position.distance_to(viewpoint) <= radius:
                out.append(mirrored.entity_id)
        return sorted(out)

"""Historical replay of the physical world (paper Sec. V).

"With virtual space technology, time no longer 'bounds' us — we can, for
example, be physically at a historical site experiencing virtually an event
that transpired in history on the exact spot that we are standing."

:class:`HistoryRecorder` taps a :class:`~repro.world.twin.MetaverseWorld`,
sampling entity positions and events into a
:class:`~repro.spatial.trajectory.TrajectoryStore`; :meth:`replay_at`
reconstructs the physical world's state at any past instant (interpolated
between samples), and :meth:`events_between` returns what happened in a
window — the data layer a "back to the future" viewer needs.  Storage is
kept in check with Douglas-Peucker compaction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigurationError
from ..core.events import Event
from ..spatial.geometry import BBox, Point
from ..spatial.trajectory import TrajectoryStore
from .twin import MetaverseWorld


@dataclass
class ReplayFrame:
    """The reconstructed world at one past instant."""

    timestamp: float
    positions: dict[str, Point]
    events: list[Event]


class HistoryRecorder:
    """Samples a world's physical state for later replay."""

    def __init__(self, world: MetaverseWorld, sample_interval: float = 1.0) -> None:
        if sample_interval <= 0:
            raise ConfigurationError("sample_interval must be positive")
        self.world = world
        self.sample_interval = sample_interval
        self.store = TrajectoryStore()
        self._last_sample: float | None = None
        self.samples_taken = 0

    def capture(self) -> bool:
        """Sample now if an interval has elapsed; returns True if sampled."""
        now = self.world.now
        if self._last_sample is not None and now - self._last_sample < self.sample_interval:
            return False
        for entity_id, entity in self.world.physical.entities.items():
            # Trajectories require strictly increasing time; skip an entity
            # whose trajectory already has this timestamp.
            trajectory = (
                self.store.trajectory(entity_id) if entity_id in self.store else None
            )
            if trajectory is not None and len(trajectory) and trajectory.end_time >= now:
                continue
            self.store.append(entity_id, now, entity.position)
        self._last_sample = now
        self.samples_taken += 1
        return True

    # -- replay -------------------------------------------------------------

    def replay_at(self, timestamp: float) -> ReplayFrame:
        """Reconstruct positions (interpolated) and events at ``timestamp``."""
        if timestamp > self.world.now:
            raise ConfigurationError("cannot replay the future")
        window = self.sample_interval
        events = [
            event
            for event in self.world.bus.history
            if timestamp - window <= event.timestamp <= timestamp + window
        ]
        return ReplayFrame(
            timestamp=timestamp,
            positions=self.store.positions_at(timestamp),
            events=events,
        )

    def replay_window(
        self, t_start: float, t_end: float, step: float
    ) -> list[ReplayFrame]:
        """A frame sequence covering [t_start, t_end] — a replay 'video'."""
        if step <= 0 or t_start > t_end:
            raise ConfigurationError("invalid replay window")
        frames = []
        t = t_start
        while t <= t_end + 1e-9:
            frames.append(self.replay_at(t))
            t += step
        return frames

    def events_between(self, t_start: float, t_end: float) -> list[Event]:
        return [
            event
            for event in self.world.bus.history
            if t_start <= event.timestamp <= t_end
        ]

    def entities_near_spot_during(
        self, spot: Point, radius: float, t_start: float, t_end: float
    ) -> list[str]:
        """Who was at this exact spot back then (the paper's scenario)."""
        box = BBox.around(spot, radius)
        candidates = self.store.objects_in_region_during(box, t_start, t_end)
        out = []
        for entity_id in candidates:
            samples = self.store.trajectory(entity_id).slice(t_start, t_end)
            if any(s.point.distance_to(spot) <= radius for s in samples):
                out.append(entity_id)
        return sorted(out)

    # -- storage management --------------------------------------------------

    def total_samples(self) -> int:
        return self.store.total_samples()

    def compact(self, tolerance: float) -> int:
        """Douglas-Peucker compaction; returns samples removed."""
        before = self.store.total_samples()
        self.store = self.store.simplified(tolerance)
        return before - self.store.total_samples()

"""Data-organization strategies for two-space data (paper Sec. IV-F).

"Should the location of a shopper in the physical mall be stored together
with the location of an online shopper? ... it may be possible to have a
hybrid strategy."  Three concrete organizations over the KV tier, sharing
one interface so experiment E15 can compare them on the same query mixes:

* :class:`TaggedUnifiedStore` — one store, keys carry a space tag in the
  payload.  Cross-space queries scan once; single-space queries must scan
  (and discard) the other space's rows.
* :class:`SeparateStores` — one store per space.  Single-space queries
  touch only their store; cross-space queries scan both and merge.
* :class:`HybridStore` — per-``kind`` routing: kinds listed in
  ``unified_kinds`` go to a shared store, the rest to per-space stores —
  the paper's "for certain data types, integrating them may be the best".

``rows_scanned`` counts the physical work, the comparison metric.
"""

from __future__ import annotations

from ..core.errors import ConfigurationError
from ..core.records import DataKind, DataRecord, Space
from ..storage.kv import KVStore

_HI = "￿"


class _BaseOrganization:
    def __init__(self) -> None:
        self.rows_scanned = 0
        self.rows_returned = 0

    @staticmethod
    def _encode(record: DataRecord) -> dict:
        return {
            "payload": record.payload,
            "space": record.space.value,
            "kind": record.kind.value,
            "timestamp": record.timestamp,
        }

    @staticmethod
    def _matches_prefix(key: str, prefix: str) -> bool:
        return key.startswith(prefix)


class TaggedUnifiedStore(_BaseOrganization):
    """One store for both spaces; rows are space-tagged."""

    name = "tagged-unified"

    def __init__(self) -> None:
        super().__init__()
        self._store = KVStore()

    def put(self, record: DataRecord) -> None:
        self._store.put(record.key, self._encode(record))

    def query_space(self, space: Space, prefix: str = "") -> list[dict]:
        """Single-space query: must scan all rows and filter by tag."""
        out = []
        for _, value in self._store.scan(prefix, prefix + _HI):
            self.rows_scanned += 1
            if value["space"] == space.value:
                out.append(value)
        self.rows_returned += len(out)
        return out

    def query_cross(self, prefix: str = "") -> list[dict]:
        """Cross-space query: one unified scan, no merge needed."""
        out = [value for _, value in self._store.scan(prefix, prefix + _HI)]
        self.rows_scanned += len(out)
        self.rows_returned += len(out)
        return out


class SeparateStores(_BaseOrganization):
    """One store per space."""

    name = "separate"

    def __init__(self) -> None:
        super().__init__()
        self._stores = {Space.PHYSICAL: KVStore(), Space.VIRTUAL: KVStore()}

    def put(self, record: DataRecord) -> None:
        self._stores[record.space].put(record.key, self._encode(record))

    def query_space(self, space: Space, prefix: str = "") -> list[dict]:
        out = [
            value for _, value in self._stores[space].scan(prefix, prefix + _HI)
        ]
        self.rows_scanned += len(out)
        self.rows_returned += len(out)
        return out

    def query_cross(self, prefix: str = "") -> list[dict]:
        """Cross-space query: scan both stores and merge by timestamp."""
        out = []
        for store in self._stores.values():
            rows = [value for _, value in store.scan(prefix, prefix + _HI)]
            self.rows_scanned += len(rows)
            out.extend(rows)
        out.sort(key=lambda v: v["timestamp"])
        # Merge overhead: the sort touches every row again.
        self.rows_scanned += len(out)
        self.rows_returned += len(out)
        return out


class HybridStore(_BaseOrganization):
    """Per-kind routing between a unified store and per-space stores."""

    name = "hybrid"

    def __init__(self, unified_kinds: set[DataKind] | None = None) -> None:
        super().__init__()
        if unified_kinds is None:
            # Default per the paper's intuition: cross-space-heavy kinds
            # (events, locations) unified; bulk single-space kinds separate.
            unified_kinds = {DataKind.EVENT, DataKind.LOCATION}
        self.unified_kinds = set(unified_kinds)
        self._unified = TaggedUnifiedStore()
        self._separate = SeparateStores()

    def put(self, record: DataRecord) -> None:
        if record.kind in self.unified_kinds:
            self._unified.put(record)
        else:
            self._separate.put(record)

    def _collect_counts(self) -> None:
        self.rows_scanned = self._unified.rows_scanned + self._separate.rows_scanned
        self.rows_returned = (
            self._unified.rows_returned + self._separate.rows_returned
        )

    def query_space(self, space: Space, prefix: str = "") -> list[dict]:
        out = self._separate.query_space(space, prefix)
        out += self._unified.query_space(space, prefix)
        self._collect_counts()
        return out

    def query_cross(self, prefix: str = "") -> list[dict]:
        out = self._unified.query_cross(prefix)
        out += self._separate.query_cross(prefix)
        self._collect_counts()
        return out


def make_organization(name: str) -> TaggedUnifiedStore | SeparateStores | HybridStore:
    """Factory used by benchmarks: 'tagged-unified' | 'separate' | 'hybrid'."""
    strategies = {
        "tagged-unified": TaggedUnifiedStore,
        "separate": SeparateStores,
        "hybrid": HybridStore,
    }
    if name not in strategies:
        raise ConfigurationError(f"unknown organization {name!r}")
    return strategies[name]()


def run_query_mix(
    organization,
    records: list[DataRecord],
    single_space_queries: int,
    cross_space_queries: int,
) -> int:
    """Load records, run the mix, return total rows scanned (the cost)."""
    for record in records:
        organization.put(record)
    for i in range(single_space_queries):
        space = Space.PHYSICAL if i % 2 == 0 else Space.VIRTUAL
        organization.query_space(space)
    for _ in range(cross_space_queries):
        organization.query_cross()
    return organization.rows_scanned

"""Entities and avatars of the twin world (paper Fig. 1).

A physical entity (soldier, shopper, book, sensor) has a position and a set
of dynamic attributes; a cyber user's :class:`Avatar` is its presence in
the virtual space.  Linking the two is what makes cross-space features
(the paper's "detect a friend at the same location in the other space")
expressible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.records import Space
from ..spatial.geometry import Point, Velocity


@dataclass
class Entity:
    """A tracked object in the physical space."""

    entity_id: str
    position: Point
    velocity: Velocity = field(default_factory=lambda: Velocity(0.0, 0.0))
    attributes: dict[str, Any] = field(default_factory=dict)
    kind: str = "generic"

    def advance(self, dt: float) -> None:
        self.position = Point(
            self.position.x + self.velocity.vx * dt,
            self.position.y + self.velocity.vy * dt,
        )


@dataclass
class Avatar:
    """A presence in the virtual space, optionally bound to a physical user."""

    avatar_id: str
    position: Point
    owner_entity_id: str | None = None
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def is_linked(self) -> bool:
        return self.owner_entity_id is not None


@dataclass(frozen=True)
class ProximityMatch:
    """Two principals near each other, possibly across spaces."""

    first: str
    second: str
    distance: float
    first_space: Space
    second_space: Space

    @property
    def cross_space(self) -> bool:
        return self.first_space is not self.second_space

"""Human-machine co-learning simulation (paper Sec. IV-I, Fig. 8).

The paper sketches three learning workflows: (a) machine-only learning from
human labels, (b) self-interactive learning, and (c) *co-learning*, a
bidirectional loop where "humans could learn from the model and the model
could learn from humans."

This module simulates the clinician scenario: a stream of cases must be
labelled; the machine is a simple online learner; the human is an expert
with a per-concept error rate that *decreases when the model's explanations
expose a concept the human systematically gets wrong* (the human learning
from the machine).  The machine trains on the human-corrected labels (the
machine learning from the human).  Experiment E20 compares the three
workflows on final team accuracy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from ..core.errors import ConfigurationError


@dataclass
class Case:
    """One decision case: feature vector, true label, governing concept."""

    features: np.ndarray
    label: int
    concept: int


def generate_cases(
    n: int, dim: int = 8, n_concepts: int = 4, seed: int = 0
) -> list[Case]:
    """Cases drawn from several concepts (distinct linear rules)."""
    rng = np.random.default_rng(seed)
    rules = rng.normal(size=(n_concepts, dim))
    cases = []
    for _ in range(n):
        concept = int(rng.integers(0, n_concepts))
        features = rng.normal(size=dim)
        label = int(features @ rules[concept] > 0)
        cases.append(Case(features, label, concept))
    return cases


class OnlineModel:
    """A per-concept online perceptron (the "machine")."""

    def __init__(self, dim: int, n_concepts: int, lr: float = 0.1) -> None:
        self.weights = np.zeros((n_concepts, dim))
        self.lr = lr

    def predict(self, case: Case) -> int:
        return int(case.features @ self.weights[case.concept] > 0)

    def confidence(self, case: Case) -> float:
        margin = abs(float(case.features @ self.weights[case.concept]))
        return min(1.0, margin / 2.0)

    def learn(self, case: Case, label: int) -> None:
        prediction = self.predict(case)
        if prediction != label:
            direction = 1.0 if label == 1 else -1.0
            self.weights[case.concept] += self.lr * direction * case.features


@dataclass
class Human:
    """An expert with per-concept error rates that can improve."""

    error_rates: list[float]
    learn_rate: float = 0.25
    seed: int = 0
    _rng: random.Random = field(init=False)

    def __post_init__(self) -> None:
        if any(not 0 <= e <= 1 for e in self.error_rates):
            raise ConfigurationError("error rates must be in [0, 1]")
        self._rng = random.Random(self.seed)

    def label(self, case: Case) -> int:
        if self._rng.random() < self.error_rates[case.concept]:
            return 1 - case.label
        return case.label

    def study(self, concept: int) -> None:
        """The human learns from the model's explanation of a concept."""
        self.error_rates[concept] *= 1 - self.learn_rate


@dataclass
class CoLearnReport:
    workflow: str
    team_accuracy: float
    model_accuracy: float
    human_error_rates: list[float]


class CoLearningLoop:
    """Runs one of the three Fig. 8 workflows over a case stream.

    * ``machine-only`` (Fig. 8a): the human labels every case; the machine
      learns from those (possibly wrong) labels; the human never improves.
    * ``self-interactive`` (Fig. 8b): the machine additionally self-trains
      on its own high-confidence predictions; the human never improves.
    * ``co-learning`` (Fig. 8c): as (a), plus the machine flags concepts
      where it *persistently disagrees* with the human; the human studies
      the flagged concept (their error rate drops) — the bidirectional loop.
    """

    def __init__(
        self,
        workflow: str,
        dim: int = 8,
        n_concepts: int = 4,
        disagreement_window: int = 10,
        disagreement_threshold: float = 0.3,
        seed: int = 0,
    ) -> None:
        if workflow not in ("machine-only", "self-interactive", "co-learning"):
            raise ConfigurationError(f"unknown workflow {workflow!r}")
        self.workflow = workflow
        self.model = OnlineModel(dim, n_concepts)
        self.n_concepts = n_concepts
        self.disagreement_window = disagreement_window
        self.disagreement_threshold = disagreement_threshold
        self._disagreements: dict[int, list[int]] = {
            c: [] for c in range(n_concepts)
        }

    def run(self, cases: list[Case], human: Human) -> CoLearnReport:
        for case in cases:
            human_label = human.label(case)
            model_prediction = self.model.predict(case)
            self.model.learn(case, human_label)
            if self.workflow == "self-interactive" and self.model.confidence(case) > 0.8:
                self.model.learn(case, model_prediction)
            if self.workflow == "co-learning":
                history = self._disagreements[case.concept]
                history.append(int(model_prediction != human_label))
                if len(history) >= self.disagreement_window:
                    rate = sum(history[-self.disagreement_window:]) / self.disagreement_window
                    if rate > self.disagreement_threshold:
                        human.study(case.concept)
                        history.clear()
        return self._evaluate(cases, human)

    def _evaluate(self, cases: list[Case], human: Human) -> CoLearnReport:
        """Team decision: trust the model when confident, else the human."""
        eval_cases = cases[-200:]
        team_correct = model_correct = 0
        for case in eval_cases:
            model_prediction = self.model.predict(case)
            model_correct += int(model_prediction == case.label)
            if self.model.confidence(case) > 0.5:
                decision = model_prediction
            else:
                decision = human.label(case)
            team_correct += int(decision == case.label)
        return CoLearnReport(
            workflow=self.workflow,
            team_accuracy=team_correct / len(eval_cases),
            model_accuracy=model_correct / len(eval_cases),
            human_error_rates=list(human.error_rates),
        )


def compare_workflows(
    n_cases: int = 1500,
    dim: int = 8,
    n_concepts: int = 4,
    weak_concept_error: float = 0.45,
    seed: int = 0,
) -> dict[str, CoLearnReport]:
    """Run all three workflows on identical streams and humans."""
    out = {}
    for workflow in ("machine-only", "self-interactive", "co-learning"):
        cases = generate_cases(n_cases, dim, n_concepts, seed=seed)
        human = Human(
            error_rates=[0.05] * (n_concepts - 1) + [weak_concept_error],
            seed=seed + 1,
        )
        loop = CoLearningLoop(workflow, dim, n_concepts, seed=seed)
        out[workflow] = loop.run(cases, human)
    return out

"""Learned cardinality estimation with drift detection (paper Sec. IV-H).

"Learning from a particular instance of dataset and query patterns may only
improve database optimization ... temporarily. The fact that databases are
dynamic in nature may make the AI/ML models and algorithms ineffective due
to data and feature drift problems."

This module makes that claim measurable:

* :class:`HistogramEstimator` — an equi-width histogram "model" trained on
  a sample of a numeric column, answering range-cardinality estimates;
* :class:`DriftDetector` — a Page-Hinkley-style detector over the
  estimator's relative errors: sustained error growth (the symptom of data
  drift) triggers an alarm;
* :class:`AdaptiveEstimator` — the self-driving loop: estimate, observe the
  true count (post-execution feedback), retrain when drift fires.

Experiment E19 shows the static model degrading after a distribution shift
while the adaptive loop recovers.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass

from ..core.errors import ConfigurationError


class HistogramEstimator:
    """Equi-width histogram over a numeric column."""

    def __init__(self, values: list[float], n_buckets: int = 32) -> None:
        if not values:
            raise ConfigurationError("cannot train on an empty sample")
        if n_buckets < 1:
            raise ConfigurationError("need at least one bucket")
        self.n_buckets = n_buckets
        self.lo = min(values)
        self.hi = max(values)
        width = (self.hi - self.lo) or 1.0
        self.bucket_width = width / n_buckets
        self.counts = [0] * n_buckets
        for value in values:
            self.counts[self._bucket(value)] += 1
        self.trained_on = len(values)

    def _bucket(self, value: float) -> int:
        idx = int((value - self.lo) / self.bucket_width)
        return max(0, min(self.n_buckets - 1, idx))

    def estimate_range(self, lo: float, hi: float) -> float:
        """Estimated number of column values in [lo, hi]."""
        if lo > hi:
            raise ConfigurationError("range inverted")
        if hi < self.lo or lo > self.hi:
            return 0.0
        total = 0.0
        for bucket in range(self.n_buckets):
            b_lo = self.lo + bucket * self.bucket_width
            b_hi = b_lo + self.bucket_width
            overlap = max(0.0, min(hi, b_hi) - max(lo, b_lo))
            if overlap > 0:
                total += self.counts[bucket] * overlap / self.bucket_width
        return total

    @staticmethod
    def true_range_count(sorted_values: list[float], lo: float, hi: float) -> int:
        """Exact answer on a sorted column (ground truth for feedback)."""
        return bisect_right(sorted_values, hi) - bisect_left(sorted_values, lo)


@dataclass
class DriftAlarm:
    at_observation: int
    cumulative_signal: float


class DriftDetector:
    """Page-Hinkley test on a stream of error observations.

    Alarms when the cumulative (error - running_mean - delta) exceeds
    ``threshold``, i.e. errors have been persistently above their historical
    mean — the signature of a stale model after drift.
    """

    def __init__(self, delta: float = 0.05, threshold: float = 2.0) -> None:
        if threshold <= 0:
            raise ConfigurationError("threshold must be positive")
        self.delta = delta
        self.threshold = threshold
        self.reset()

    def reset(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._cumulative = 0.0
        self._min_cumulative = 0.0

    def observe(self, error: float) -> bool:
        """Feed one error; returns True when drift is detected."""
        self._n += 1
        self._mean += (error - self._mean) / self._n
        self._cumulative += error - self._mean - self.delta
        self._min_cumulative = min(self._min_cumulative, self._cumulative)
        return (self._cumulative - self._min_cumulative) > self.threshold

    @property
    def observations(self) -> int:
        return self._n


class AdaptiveEstimator:
    """Estimate -> feedback -> (on drift) retrain loop.

    ``column_provider()`` returns the *current* column contents, which is
    what a retrain samples.  A static baseline is just this class with
    ``retrain_on_drift=False``.
    """

    def __init__(
        self,
        column_provider,
        n_buckets: int = 32,
        retrain_on_drift: bool = True,
        detector: DriftDetector | None = None,
    ) -> None:
        self.column_provider = column_provider
        self.n_buckets = n_buckets
        self.retrain_on_drift = retrain_on_drift
        self.detector = detector if detector is not None else DriftDetector()
        self.model = HistogramEstimator(column_provider(), n_buckets)
        self.retrains = 0
        self.errors: list[float] = []

    def query(self, lo: float, hi: float) -> float:
        return self.model.estimate_range(lo, hi)

    def feedback(self, lo: float, hi: float, true_count: int) -> None:
        """Post-execution feedback: record error, maybe retrain."""
        estimate = self.model.estimate_range(lo, hi)
        denominator = max(1.0, float(true_count))
        error = abs(estimate - true_count) / denominator
        self.errors.append(error)
        if self.detector.observe(error) and self.retrain_on_drift:
            self.model = HistogramEstimator(self.column_provider(), self.n_buckets)
            self.detector.reset()
            self.retrains += 1

    def recent_mean_error(self, window: int = 20) -> float:
        recent = self.errors[-window:]
        return sum(recent) / len(recent) if recent else 0.0

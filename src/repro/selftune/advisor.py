"""Workload-driven physical-design advice and knob tuning (paper Sec. IV-H).

Two self-driving components:

* :class:`IndexAdvisor` — watches a spatial workload trace (update/query
  ratio, query extent) and recommends an index (grid / R-tree / Bx) plus a
  grid cell size, using the measured cost model from experiment E6's
  structures;
* :class:`CoherencyTuner` — a feedback controller for the twin-sync
  epsilon: given a message budget per tick, it adjusts the coherency bound
  to use the budget while minimizing staleness — turning Sec. IV-C's manual
  trade-off into a self-tuning knob.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.errors import ConfigurationError


@dataclass
class WorkloadProfile:
    """Observed spatial-workload statistics."""

    updates: int = 0
    range_queries: int = 0
    query_extents: list[float] = field(default_factory=list)
    object_count: int = 0

    def record_update(self, n: int = 1) -> None:
        self.updates += n

    def record_query(self, extent: float) -> None:
        self.range_queries += 1
        self.query_extents.append(extent)

    @property
    def update_ratio(self) -> float:
        total = self.updates + self.range_queries
        return self.updates / total if total else 0.0

    @property
    def mean_extent(self) -> float:
        if not self.query_extents:
            return 0.0
        return sum(self.query_extents) / len(self.query_extents)


@dataclass(frozen=True)
class IndexRecommendation:
    index: str          # "grid" | "rtree" | "bx"
    cell_size: float | None
    rationale: str


class IndexAdvisor:
    """Rule-of-thumb advisor matching E6's measured cost asymmetries.

    * update-dominated (>50% updates) + dead-reckonable motion -> Bx;
    * update-dominated otherwise -> grid with cell ~ mean query extent
      (each query touches ~O(1) cells while moves stay cheap);
    * query-dominated static data -> R-tree.
    """

    def __init__(self, bx_friendly_motion: bool = False) -> None:
        self.bx_friendly_motion = bx_friendly_motion

    def recommend(self, profile: WorkloadProfile) -> IndexRecommendation:
        if profile.updates + profile.range_queries == 0:
            raise ConfigurationError("empty workload profile")
        if profile.update_ratio > 0.5:
            if self.bx_friendly_motion:
                return IndexRecommendation(
                    "bx", None,
                    "update-dominated with predictable motion: index predicted "
                    "positions, avoid per-tick updates",
                )
            cell = self._cell_size(profile)
            return IndexRecommendation(
                "grid", cell,
                f"update-dominated ({profile.update_ratio:.0%}): O(1) moves; "
                f"cell sized to mean query extent {profile.mean_extent:.0f}",
            )
        return IndexRecommendation(
            "rtree", None,
            f"query-dominated ({1 - profile.update_ratio:.0%} queries): "
            "R-tree wins static range search",
        )

    @staticmethod
    def _cell_size(profile: WorkloadProfile) -> float:
        extent = profile.mean_extent or 100.0
        # One query should overlap a handful of cells: cell ~ extent / 2,
        # clamped to sane bounds.
        return max(10.0, min(1000.0, extent / 2.0))


class CoherencyTuner:
    """Feedback controller for the sync epsilon (multiplicative update).

    Each control tick the caller reports the messages actually sent; the
    tuner nudges epsilon down when under budget (buy accuracy) and up when
    over budget (shed traffic).  Multiplicative-increase/decrease converges
    to the budget boundary for monotone traffic curves.
    """

    def __init__(
        self,
        initial_epsilon: float,
        budget_per_tick: float,
        adjust_factor: float = 1.25,
        epsilon_bounds: tuple[float, float] = (0.1, 1000.0),
    ) -> None:
        if initial_epsilon <= 0 or budget_per_tick <= 0 or adjust_factor <= 1:
            raise ConfigurationError("invalid tuner configuration")
        self.epsilon = initial_epsilon
        self.budget_per_tick = budget_per_tick
        self.adjust_factor = adjust_factor
        self.epsilon_bounds = epsilon_bounds
        self.history: list[tuple[float, float]] = []  # (epsilon, messages)

    def observe(self, messages_sent: float) -> float:
        """Report a tick's traffic; returns the epsilon for the next tick."""
        self.history.append((self.epsilon, messages_sent))
        lo, hi = self.epsilon_bounds
        if messages_sent > self.budget_per_tick:
            self.epsilon = min(hi, self.epsilon * self.adjust_factor)
        elif messages_sent < 0.7 * self.budget_per_tick:
            self.epsilon = max(lo, self.epsilon / self.adjust_factor)
        return self.epsilon

    def converged(self, window: int = 5, tolerance: float = 0.35) -> bool:
        """Recent traffic within tolerance of the budget?"""
        if len(self.history) < window:
            return False
        recent = [messages for _, messages in self.history[-window:]]
        mean = sum(recent) / len(recent)
        return abs(mean - self.budget_per_tick) <= tolerance * self.budget_per_tick


def knee_epsilon(epsilon_to_messages: dict[float, float]) -> float:
    """Pick the elbow of a measured epsilon->traffic curve.

    Utility used by reports: the knee is where doubling epsilon stops
    halving the traffic (largest second-difference in log space).
    """
    if len(epsilon_to_messages) < 3:
        raise ConfigurationError("need at least three sweep points")
    points = sorted(epsilon_to_messages.items())
    best_epsilon, best_curvature = points[1][0], -math.inf
    for i in range(1, len(points) - 1):
        _, prev_messages = points[i - 1]
        epsilon, messages = points[i]
        _, next_messages = points[i + 1]
        curvature = (
            math.log(max(prev_messages, 1.0))
            - 2 * math.log(max(messages, 1.0))
            + math.log(max(next_messages, 1.0))
        )
        if curvature > best_curvature:
            best_epsilon, best_curvature = epsilon, curvature
    return best_epsilon

"""Self-driving optimizations and co-learning (paper Sec. IV-H / IV-I)."""

from .advisor import (
    CoherencyTuner,
    IndexAdvisor,
    IndexRecommendation,
    WorkloadProfile,
    knee_epsilon,
)
from .cardinality import (
    AdaptiveEstimator,
    DriftDetector,
    HistogramEstimator,
)
from .heat import HeatSketch
from .diststats import (
    ExchangeReport,
    MergeableHistogram,
    coordinate_estimate,
    merge_all,
)
from .colearn import (
    Case,
    CoLearningLoop,
    CoLearnReport,
    Human,
    OnlineModel,
    compare_workflows,
    generate_cases,
)

__all__ = [
    "AdaptiveEstimator",
    "Case",
    "CoLearnReport",
    "CoLearningLoop",
    "CoherencyTuner",
    "DriftDetector",
    "ExchangeReport",
    "HeatSketch",
    "MergeableHistogram",
    "HistogramEstimator",
    "Human",
    "IndexAdvisor",
    "IndexRecommendation",
    "OnlineModel",
    "WorkloadProfile",
    "compare_workflows",
    "coordinate_estimate",
    "merge_all",
    "generate_cases",
    "knee_epsilon",
]

"""Per-key heat estimation for hot-shard mitigation (paper Sec. IV).

Flash sales concentrate the deluge on a few keys (Sec. II "The
Marketplace"; Sec. IV-E's elasticity argument), so the cluster's
elasticity layer needs to know *which* keys are hot right now without
holding a counter per key.  :class:`HeatSketch` is a count-min sketch
with exponential decay:

* **count-min core** — ``depth`` rows of ``width`` float cells; a key
  increments one cell per row (sha256-derived, deterministic across
  runs) and its estimate is the minimum over its cells.  Collisions only
  ever *over*-estimate, so a key the sketch calls cold really is cold —
  the safe direction for a controller that salts hot keys.
* **exponential decay** — :meth:`decay` multiplies every cell by a
  factor, so the estimate tracks recent traffic rather than lifetime
  counts (the same recency argument as
  :meth:`repro.core.metrics.Histogram.window`).
* **candidate tracking** — the sketch alone cannot enumerate keys, so a
  bounded candidate dict remembers keys whose estimated *share* of total
  traffic crossed ``candidate_fraction`` when observed; :meth:`hot_keys`
  reports the candidates currently above the caller's threshold, sorted
  hottest first (deterministically tie-broken by key).

Used by :class:`repro.cluster.elasticity.ElasticityController` to drive
key salting; generic enough for any skew detector.
"""

from __future__ import annotations

import hashlib

from ..core.errors import ConfigurationError


def _cell_index(key: str, row: int, width: int) -> int:
    """Deterministic per-row cell index (independent hashes per row)."""
    digest = hashlib.sha256(f"{row}\x1f{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % width


class HeatSketch:
    """Count-min sketch with decay and heavy-hitter candidate tracking."""

    def __init__(
        self,
        width: int = 512,
        depth: int = 4,
        decay: float = 0.5,
        candidate_fraction: float = 0.05,
        max_candidates: int = 64,
    ) -> None:
        if width < 1 or depth < 1:
            raise ConfigurationError("width and depth must be >= 1")
        if not 0.0 < decay <= 1.0:
            raise ConfigurationError("decay must be in (0, 1]")
        if not 0.0 < candidate_fraction < 1.0:
            raise ConfigurationError("candidate_fraction must be in (0, 1)")
        if max_candidates < 1:
            raise ConfigurationError("max_candidates must be >= 1")
        self.width = width
        self.depth = depth
        self.decay_factor = decay
        self.candidate_fraction = candidate_fraction
        self.max_candidates = max_candidates
        self._rows = [[0.0] * width for _ in range(depth)]
        self.total = 0.0
        # Insertion-ordered; pruned on decay and when over capacity.
        self._candidates: dict[str, None] = {}

    # -- observation --------------------------------------------------------

    def observe(self, key: str, count: float = 1.0) -> None:
        """Record ``count`` accesses of ``key``."""
        if count < 0:
            raise ConfigurationError("count must be >= 0")
        for row in range(self.depth):
            self._rows[row][_cell_index(key, row, self.width)] += count
        self.total += count
        if (
            key not in self._candidates
            and self.estimate(key) >= self.candidate_fraction * self.total
        ):
            self._candidates[key] = None
            if len(self._candidates) > self.max_candidates:
                self._prune_candidates()

    def decay(self) -> None:
        """Age the sketch: every cell (and the total) shrinks by the decay
        factor, so estimates track recent traffic.  Candidates whose share
        fell below half the candidate fraction are forgotten."""
        for row in self._rows:
            for i, value in enumerate(row):
                row[i] = value * self.decay_factor
        self.total *= self.decay_factor
        self._prune_candidates()

    def _prune_candidates(self) -> None:
        floor = 0.5 * self.candidate_fraction * self.total
        kept = {
            key: None
            for key in self._candidates
            if self.estimate(key) >= floor
        }
        if len(kept) > self.max_candidates:
            # Keep the hottest; deterministic tie-break by key.
            kept = {
                key: None
                for key in sorted(
                    kept, key=lambda key: (-self.estimate(key), key)
                )[: self.max_candidates]
            }
        self._candidates = kept

    # -- queries ------------------------------------------------------------

    def estimate(self, key: str) -> float:
        """Estimated (decayed) access count; never under the true count
        for an un-decayed sketch."""
        return min(
            self._rows[row][_cell_index(key, row, self.width)]
            for row in range(self.depth)
        )

    def share(self, key: str) -> float:
        """Estimated fraction of total (decayed) traffic on ``key``."""
        return self.estimate(key) / self.total if self.total > 0 else 0.0

    def hot_keys(
        self, fraction: float, min_total: float = 0.0
    ) -> list[tuple[str, float]]:
        """Tracked keys whose traffic share is at least ``fraction``,
        hottest first (ties broken by key for determinism).  Empty until
        total traffic reaches ``min_total`` — a controller should not
        salt on a handful of samples."""
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError("fraction must be in (0, 1]")
        if self.total < min_total or self.total <= 0.0:
            return []
        hot = [
            (key, self.share(key))
            for key in self._candidates
            if self.share(key) >= fraction
        ]
        hot.sort(key=lambda item: (-item[1], item[0]))
        return hot

"""Distributed statistics with minimal information exchange (Sec. IV-G).

"One key challenge in designing a distributed architecture is to ensure
that meta-data that are required for optimization can be estimated locally
at each site/cluster to minimize information exchange, while at the same
time the quality of the generated plan may not be significantly
compromised."

:class:`MergeableHistogram` is the mechanism: each site summarizes its
local column into a fixed-size sketch over an agreed domain; a coordinator
merges sketches by bucket-wise addition and answers global cardinality /
quantile estimates.  The exchange is O(buckets) per site instead of O(rows)
— the trade the paper asks for, with the accuracy cost measurable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigurationError

_FLOAT_BYTES = 8


@dataclass
class MergeableHistogram:
    """A fixed-domain equi-width histogram that adds across sites."""

    lo: float
    hi: float
    counts: list[int]

    @classmethod
    def empty(cls, lo: float, hi: float, n_buckets: int = 64) -> "MergeableHistogram":
        if lo >= hi or n_buckets < 1:
            raise ConfigurationError("need lo < hi and n_buckets >= 1")
        return cls(lo=lo, hi=hi, counts=[0] * n_buckets)

    @classmethod
    def of(cls, values: list[float], lo: float, hi: float, n_buckets: int = 64) -> "MergeableHistogram":
        histogram = cls.empty(lo, hi, n_buckets)
        for value in values:
            histogram.add(value)
        return histogram

    @property
    def n_buckets(self) -> int:
        return len(self.counts)

    @property
    def total(self) -> int:
        return sum(self.counts)

    def _bucket(self, value: float) -> int:
        width = (self.hi - self.lo) / self.n_buckets
        idx = int((value - self.lo) / width)
        return max(0, min(self.n_buckets - 1, idx))

    def add(self, value: float) -> None:
        self.counts[self._bucket(value)] += 1

    def merge(self, other: "MergeableHistogram") -> "MergeableHistogram":
        """Bucket-wise sum; domains and bucket counts must agree."""
        if (self.lo, self.hi, self.n_buckets) != (other.lo, other.hi, other.n_buckets):
            raise ConfigurationError("histograms have different shapes")
        return MergeableHistogram(
            lo=self.lo,
            hi=self.hi,
            counts=[a + b for a, b in zip(self.counts, other.counts)],
        )

    # -- estimates ------------------------------------------------------------

    def estimate_range(self, lo: float, hi: float) -> float:
        """Estimated count of values in [lo, hi]."""
        if lo > hi:
            raise ConfigurationError("range inverted")
        width = (self.hi - self.lo) / self.n_buckets
        total = 0.0
        for bucket, count in enumerate(self.counts):
            b_lo = self.lo + bucket * width
            b_hi = b_lo + width
            overlap = max(0.0, min(hi, b_hi) - max(lo, b_lo))
            if overlap > 0:
                total += count * overlap / width
        return total

    def estimate_quantile(self, q: float) -> float:
        """Approximate q-quantile via the bucket CDF."""
        if not 0 <= q <= 1:
            raise ConfigurationError("q must be in [0, 1]")
        if self.total == 0:
            raise ConfigurationError("empty histogram")
        target = q * self.total
        width = (self.hi - self.lo) / self.n_buckets
        running = 0.0
        for bucket, count in enumerate(self.counts):
            if running + count >= target and count > 0:
                frac = (target - running) / count
                return self.lo + (bucket + frac) * width
            running += count
        return self.hi

    def wire_bytes(self) -> int:
        """Exchange cost of shipping this sketch to the coordinator."""
        return self.n_buckets * _FLOAT_BYTES + 2 * _FLOAT_BYTES


def merge_all(sketches: list[MergeableHistogram]) -> MergeableHistogram:
    if not sketches:
        raise ConfigurationError("nothing to merge")
    merged = sketches[0]
    for sketch in sketches[1:]:
        merged = merged.merge(sketch)
    return merged


@dataclass
class ExchangeReport:
    """Cost/accuracy comparison for E-style analysis."""

    sketch_bytes: int
    raw_bytes: int
    relative_error: float

    @property
    def savings(self) -> float:
        return self.raw_bytes / max(1, self.sketch_bytes)


def coordinate_estimate(
    site_columns: list[list[float]],
    query_lo: float,
    query_hi: float,
    domain: tuple[float, float],
    n_buckets: int = 64,
) -> ExchangeReport:
    """Run the full protocol: sites sketch, coordinator merges, estimates.

    Returns the exchange cost versus shipping raw values and the estimate's
    relative error against exact evaluation.
    """
    lo, hi = domain
    sketches = [
        MergeableHistogram.of(column, lo, hi, n_buckets) for column in site_columns
    ]
    merged = merge_all(sketches)
    estimate = merged.estimate_range(query_lo, query_hi)
    exact = sum(
        sum(1 for value in column if query_lo <= value <= query_hi)
        for column in site_columns
    )
    error = abs(estimate - exact) / max(1.0, exact)
    return ExchangeReport(
        sketch_bytes=sum(s.wire_bytes() for s in sketches),
        raw_bytes=sum(len(c) for c in site_columns) * _FLOAT_BYTES,
        relative_error=error,
    )

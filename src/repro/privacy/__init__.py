"""Privacy and collaboration: DP mechanisms, federated learning, incentives."""

from .dp import (
    DpQueryEngine,
    PrivacyAccountant,
    gaussian_mechanism,
    laplace_expected_error,
    laplace_mechanism,
    noisy_histogram,
    randomized_response,
    randomized_response_estimate,
)
from .federated import (
    ClientData,
    FederatedTrainer,
    RoundReport,
    accuracy,
    dirichlet_partition,
    local_sgd,
    logistic_loss,
    make_synthetic_dataset,
)
from .incentives import (
    detect_free_riders,
    efficiency_gap,
    proportional_rewards,
    shapley_values,
)

__all__ = [
    "ClientData",
    "DpQueryEngine",
    "FederatedTrainer",
    "PrivacyAccountant",
    "RoundReport",
    "accuracy",
    "detect_free_riders",
    "dirichlet_partition",
    "efficiency_gap",
    "gaussian_mechanism",
    "laplace_expected_error",
    "laplace_mechanism",
    "local_sgd",
    "logistic_loss",
    "make_synthetic_dataset",
    "noisy_histogram",
    "proportional_rewards",
    "randomized_response",
    "randomized_response_estimate",
    "shapley_values",
]

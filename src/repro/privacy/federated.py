"""Federated learning simulation with Non-IID clients (paper Sec. IV-B).

"Privacy-preserving data and knowledge sharing mechanisms with fair
contributions of useful data have to be designed ... users are likely to be
heterogeneous in data qualities and quantities, possibly with Non-IID
[data]."  This module provides the substrate for those claims ([49]):

* :func:`dirichlet_partition` — split a labelled dataset across clients
  with label-distribution skew controlled by the Dirichlet alpha (small
  alpha = severe Non-IID);
* :class:`FederatedTrainer` — FedAvg over a logistic-regression model:
  each round, sampled clients run local SGD epochs and the server averages
  weight deltas weighted by example counts;
* optional per-client DP noise on updates.

Experiment E10 measures convergence versus alpha and feeds the incentive
scoring of :mod:`repro.privacy.incentives`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.errors import ConfigurationError


@dataclass
class ClientData:
    """One client's local dataset."""

    client_id: str
    features: np.ndarray  # (n, d)
    labels: np.ndarray    # (n,), values in {0, 1}

    def __post_init__(self) -> None:
        if len(self.features) != len(self.labels):
            raise ConfigurationError("features/labels length mismatch")

    @property
    def n_examples(self) -> int:
        return len(self.labels)


def make_synthetic_dataset(
    n: int, dim: int = 10, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """A linearly separable-ish binary classification dataset."""
    rng = np.random.default_rng(seed)
    true_w = rng.normal(size=dim)
    features = rng.normal(size=(n, dim))
    logits = features @ true_w
    labels = (logits + rng.normal(scale=0.5, size=n) > 0).astype(float)
    return features, labels


def dirichlet_partition(
    features: np.ndarray,
    labels: np.ndarray,
    n_clients: int,
    alpha: float,
    seed: int = 0,
) -> list[ClientData]:
    """Label-skewed partition: per label, client shares ~ Dirichlet(alpha).

    alpha -> infinity approaches IID; alpha ~ 0.1 gives each client a few
    dominant labels, the standard Non-IID benchmark construction.
    """
    if n_clients < 1 or alpha <= 0:
        raise ConfigurationError("need n_clients >= 1 and alpha > 0")
    rng = np.random.default_rng(seed)
    client_indices: list[list[int]] = [[] for _ in range(n_clients)]
    for label in np.unique(labels):
        label_idx = np.flatnonzero(labels == label)
        rng.shuffle(label_idx)
        shares = rng.dirichlet([alpha] * n_clients)
        cuts = (np.cumsum(shares) * len(label_idx)).astype(int)[:-1]
        for client, chunk in enumerate(np.split(label_idx, cuts)):
            client_indices[client].extend(chunk.tolist())
    clients = []
    for i, idx in enumerate(client_indices):
        idx_arr = np.array(sorted(idx), dtype=int)
        clients.append(
            ClientData(
                client_id=f"client-{i}",
                features=features[idx_arr] if len(idx_arr) else features[:0],
                labels=labels[idx_arr] if len(idx_arr) else labels[:0],
            )
        )
    return clients


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))


def logistic_loss(weights: np.ndarray, features: np.ndarray, labels: np.ndarray) -> float:
    p = _sigmoid(features @ weights)
    eps = 1e-9
    return float(-np.mean(labels * np.log(p + eps) + (1 - labels) * np.log(1 - p + eps)))


def accuracy(weights: np.ndarray, features: np.ndarray, labels: np.ndarray) -> float:
    if len(labels) == 0:
        return 0.0
    predictions = (_sigmoid(features @ weights) > 0.5).astype(float)
    return float(np.mean(predictions == labels))


def local_sgd(
    weights: np.ndarray,
    client: ClientData,
    epochs: int,
    lr: float,
    batch_size: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Run local SGD epochs; return the updated weights."""
    w = weights.copy()
    n = client.n_examples
    if n == 0:
        return w
    for _ in range(epochs):
        order = rng.permutation(n)
        for start in range(0, n, batch_size):
            batch = order[start : start + batch_size]
            x = client.features[batch]
            y = client.labels[batch]
            gradient = x.T @ (_sigmoid(x @ w) - y) / len(batch)
            w -= lr * gradient
    return w


@dataclass
class RoundReport:
    round_index: int
    loss: float
    accuracy: float
    participants: list[str] = field(default_factory=list)


class FederatedTrainer:
    """FedAvg server loop over logistic regression."""

    def __init__(
        self,
        clients: list[ClientData],
        dim: int,
        lr: float = 0.5,
        local_epochs: int = 1,
        batch_size: int = 32,
        clients_per_round: int | None = None,
        update_noise_sigma: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not clients:
            raise ConfigurationError("need at least one client")
        self.clients = clients
        self.weights = np.zeros(dim)
        self.lr = lr
        self.local_epochs = local_epochs
        self.batch_size = batch_size
        self.clients_per_round = clients_per_round or len(clients)
        self.update_noise_sigma = update_noise_sigma
        self._rng = np.random.default_rng(seed)
        self.history: list[RoundReport] = []

    def run_round(
        self, eval_features: np.ndarray, eval_labels: np.ndarray
    ) -> RoundReport:
        participating = list(
            self._rng.choice(
                len(self.clients),
                size=min(self.clients_per_round, len(self.clients)),
                replace=False,
            )
        )
        total_examples = 0
        weighted_delta = np.zeros_like(self.weights)
        names = []
        for idx in participating:
            client = self.clients[idx]
            if client.n_examples == 0:
                continue
            names.append(client.client_id)
            local_weights = local_sgd(
                self.weights,
                client,
                self.local_epochs,
                self.lr,
                self.batch_size,
                self._rng,
            )
            delta = local_weights - self.weights
            if self.update_noise_sigma > 0:
                delta = delta + self._rng.normal(
                    scale=self.update_noise_sigma, size=delta.shape
                )
            weighted_delta += client.n_examples * delta
            total_examples += client.n_examples
        if total_examples > 0:
            self.weights = self.weights + weighted_delta / total_examples
        report = RoundReport(
            round_index=len(self.history),
            loss=logistic_loss(self.weights, eval_features, eval_labels),
            accuracy=accuracy(self.weights, eval_features, eval_labels),
            participants=names,
        )
        self.history.append(report)
        return report

    def train(
        self, rounds: int, eval_features: np.ndarray, eval_labels: np.ndarray
    ) -> list[RoundReport]:
        for _ in range(rounds):
            self.run_round(eval_features, eval_labels)
        return self.history

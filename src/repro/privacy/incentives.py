"""Contribution scoring and free-rider detection (paper Sec. IV-B; [58]).

"To promote data collaboration and to discourage free-riders from
intentionally obtaining the others' data and parameters without doing their
part, effective and computationally efficient incentive models have to be
designed."

The canonical fair-attribution tool is the Shapley value over a coalition
utility function (here: model accuracy trained on the coalition's pooled
data).  Exact Shapley is exponential; :func:`shapley_values` does exact
enumeration for small n and Monte-Carlo permutation sampling beyond that.
:func:`detect_free_riders` flags participants whose marginal value is
indistinguishable from zero.
"""

from __future__ import annotations

import itertools
import math
import random
from typing import Callable, Hashable, Sequence

from ..core.errors import ConfigurationError

Utility = Callable[[frozenset], float]


def shapley_values(
    players: Sequence[Hashable],
    utility: Utility,
    exact_threshold: int = 8,
    samples: int = 200,
    seed: int = 0,
) -> dict[Hashable, float]:
    """Shapley value of each player under ``utility``.

    Exact (all permutations, via subset enumeration) when
    ``len(players) <= exact_threshold``; otherwise Monte-Carlo over random
    permutations with ``samples`` draws.
    """
    if not players:
        raise ConfigurationError("need at least one player")
    if len(set(players)) != len(players):
        raise ConfigurationError("players must be unique")
    if len(players) <= exact_threshold:
        return _exact_shapley(list(players), utility)
    return _monte_carlo_shapley(list(players), utility, samples, seed)


def _exact_shapley(players: list[Hashable], utility: Utility) -> dict[Hashable, float]:
    n = len(players)
    values = {p: 0.0 for p in players}
    cache: dict[frozenset, float] = {}

    def u(coalition: frozenset) -> float:
        if coalition not in cache:
            cache[coalition] = utility(coalition)
        return cache[coalition]

    for player in players:
        others = [p for p in players if p != player]
        for size in range(n):
            weight = (
                math.factorial(size) * math.factorial(n - size - 1) / math.factorial(n)
            )
            for subset in itertools.combinations(others, size):
                coalition = frozenset(subset)
                marginal = u(coalition | {player}) - u(coalition)
                values[player] += weight * marginal
    return values


def _monte_carlo_shapley(
    players: list[Hashable], utility: Utility, samples: int, seed: int
) -> dict[Hashable, float]:
    rng = random.Random(seed)
    values = {p: 0.0 for p in players}
    cache: dict[frozenset, float] = {}

    def u(coalition: frozenset) -> float:
        if coalition not in cache:
            cache[coalition] = utility(coalition)
        return cache[coalition]

    for _ in range(samples):
        order = players[:]
        rng.shuffle(order)
        coalition: frozenset = frozenset()
        previous = u(coalition)
        for player in order:
            coalition = coalition | {player}
            current = u(coalition)
            values[player] += current - previous
            previous = current
    return {p: v / samples for p, v in values.items()}


def efficiency_gap(
    values: dict[Hashable, float], utility: Utility
) -> float:
    """|sum of Shapley values - grand coalition utility| (0 for exact)."""
    grand = utility(frozenset(values))
    return abs(sum(values.values()) - grand)


def detect_free_riders(
    values: dict[Hashable, float], threshold_fraction: float = 0.05
) -> set[Hashable]:
    """Players whose share is below ``threshold_fraction`` of the mean
    positive share."""
    if not 0 <= threshold_fraction < 1:
        raise ConfigurationError("threshold_fraction must be in [0, 1)")
    positives = [v for v in values.values() if v > 0]
    if not positives:
        return set(values)
    mean_positive = sum(positives) / len(positives)
    cutoff = threshold_fraction * mean_positive
    return {p for p, v in values.items() if v <= cutoff}


def proportional_rewards(
    values: dict[Hashable, float], budget: float
) -> dict[Hashable, float]:
    """Split a reward budget proportionally to (non-negative) Shapley shares."""
    if budget < 0:
        raise ConfigurationError("budget must be >= 0")
    clipped = {p: max(0.0, v) for p, v in values.items()}
    total = sum(clipped.values())
    if total == 0:
        return {p: budget / len(values) for p in values}
    return {p: budget * v / total for p, v in clipped.items()}

"""Differential privacy mechanisms and budget accounting (paper Sec. IV-D).

"Protecting data privacy in the metaverse requires a delicate balance
between minimizing privacy risk and maximizing data utility" — mechanisms
here ([27]) let analytics over user data trade epsilon for error:

* :func:`laplace_mechanism` / :func:`gaussian_mechanism` — additive noise
  calibrated to sensitivity;
* :func:`randomized_response` — local DP for binary attributes (the
  client-side option the streaming-collection work [11] builds on);
* :class:`PrivacyAccountant` — per-principal epsilon budget with basic
  (linear) composition and an advanced-composition estimate for k-fold
  queries.

Experiment E9 sweeps epsilon and verifies error scales as 1/epsilon.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..core.errors import ConfigurationError, PrivacyBudgetExceeded


def laplace_mechanism(
    true_value: float, sensitivity: float, epsilon: float, rng: random.Random
) -> float:
    """epsilon-DP noisy value via Laplace(sensitivity / epsilon) noise."""
    if epsilon <= 0 or sensitivity < 0:
        raise ConfigurationError("need epsilon > 0 and sensitivity >= 0")
    scale = sensitivity / epsilon
    # Inverse-CDF sampling of Laplace(0, scale).
    u = rng.random() - 0.5
    noise = -scale * math.copysign(math.log(1 - 2 * abs(u)), u)
    return true_value + noise


def gaussian_mechanism(
    true_value: float,
    sensitivity: float,
    epsilon: float,
    delta: float,
    rng: random.Random,
) -> float:
    """(epsilon, delta)-DP noisy value via calibrated Gaussian noise."""
    if not (0 < epsilon < 1) or not (0 < delta < 1):
        raise ConfigurationError("classic Gaussian mechanism needs 0 < eps < 1, 0 < delta < 1")
    sigma = sensitivity * math.sqrt(2 * math.log(1.25 / delta)) / epsilon
    return true_value + rng.gauss(0, sigma)


def laplace_expected_error(sensitivity: float, epsilon: float) -> float:
    """E|noise| of the Laplace mechanism = sensitivity / epsilon."""
    return sensitivity / epsilon


def randomized_response(
    truth: bool, epsilon: float, rng: random.Random
) -> bool:
    """Local DP for one bit: answer truthfully with p = e^eps / (e^eps + 1)."""
    if epsilon <= 0:
        raise ConfigurationError("epsilon must be positive")
    p_truth = math.exp(epsilon) / (math.exp(epsilon) + 1)
    return truth if rng.random() < p_truth else not truth


def randomized_response_estimate(
    responses: list[bool], epsilon: float
) -> float:
    """Debiased population proportion from randomized responses."""
    if not responses:
        raise ConfigurationError("no responses")
    p = math.exp(epsilon) / (math.exp(epsilon) + 1)
    observed = sum(responses) / len(responses)
    return (observed - (1 - p)) / (2 * p - 1)


def noisy_histogram(
    counts: dict[str, int], epsilon: float, rng: random.Random
) -> dict[str, float]:
    """DP histogram: each disjoint bucket gets Laplace(1/epsilon) noise."""
    return {
        bucket: laplace_mechanism(float(count), 1.0, epsilon, rng)
        for bucket, count in counts.items()
    }


@dataclass
class PrivacyAccountant:
    """Tracks epsilon spend per principal against a total budget."""

    total_epsilon: float
    spent: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.total_epsilon <= 0:
            raise ConfigurationError("budget must be positive")

    def remaining(self, principal: str) -> float:
        return self.total_epsilon - self.spent.get(principal, 0.0)

    def charge(self, principal: str, epsilon: float) -> None:
        """Spend (basic composition); raises when the budget would overrun."""
        if epsilon <= 0:
            raise ConfigurationError("epsilon must be positive")
        if self.remaining(principal) < epsilon - 1e-12:
            raise PrivacyBudgetExceeded(
                f"{principal}: requested {epsilon}, remaining "
                f"{self.remaining(principal):.4f}"
            )
        self.spent[principal] = self.spent.get(principal, 0.0) + epsilon

    @staticmethod
    def advanced_composition(epsilon_each: float, k: int, delta_prime: float) -> float:
        """Total epsilon for k-fold (eps, 0)-DP under advanced composition.

        Dwork-Rothblum-Vadhan bound; for small per-query epsilon this is
        O(sqrt(k)) instead of the linear k of basic composition.
        """
        if epsilon_each <= 0 or k < 1 or not 0 < delta_prime < 1:
            raise ConfigurationError("invalid advanced composition parameters")
        return (
            math.sqrt(2 * k * math.log(1 / delta_prime)) * epsilon_each
            + k * epsilon_each * (math.exp(epsilon_each) - 1)
        )


class DpQueryEngine:
    """A small DP front-end over a numeric column store.

    Each query charges the caller's budget via the accountant, then answers
    with the Laplace mechanism; count queries have sensitivity 1, bounded
    sums sensitivity equal to the clamp bound.
    """

    def __init__(self, accountant: PrivacyAccountant, seed: int = 0) -> None:
        self.accountant = accountant
        self._rng = random.Random(seed)

    def count(self, principal: str, values: list[float], epsilon: float) -> float:
        self.accountant.charge(principal, epsilon)
        return laplace_mechanism(float(len(values)), 1.0, epsilon, self._rng)

    def sum(
        self, principal: str, values: list[float], bound: float, epsilon: float
    ) -> float:
        if bound <= 0:
            raise ConfigurationError("clamp bound must be positive")
        self.accountant.charge(principal, epsilon)
        clamped = sum(max(-bound, min(bound, v)) for v in values)
        return laplace_mechanism(clamped, bound, epsilon, self._rng)

    def mean(
        self, principal: str, values: list[float], bound: float, epsilon: float
    ) -> float:
        """Mean via half-budget sum + half-budget count."""
        noisy_sum = self.sum(principal, values, bound, epsilon / 2)
        noisy_count = self.count(principal, values, epsilon / 2)
        return noisy_sum / max(noisy_count, 1.0)

"""Pluggable storage engines: the compute/storage split of Fig. 7 (Sec. IV-E2).

The paper's architectural answer to the data deluge is a *disaggregated*
stack: stateless compute elastically scaled over a shared storage/memory
tier.  Before this module the :class:`~repro.platform.platform.
MetaversePlatform` constructed and privately owned its stores, so compute
and data could only scale together.  :class:`StorageEngine` is the seam
that separates them — the full operation surface a platform needs from its
storage tier (entity KV ops, committed-product records, content-addressed
objects) behind one interface with two implementations:

* :class:`LocalStorageEngine` — today's in-process tier (LSM KV store +
  WAL, object store, plain product map).  The byte-identical default: a
  platform built without an engine argument behaves exactly as before.
* :class:`RemoteStorageEngine` — a compute-side client that speaks to
  standalone :class:`StorageNode` processes over a
  :class:`~repro.net.simnet.SimulatedNetwork`: every operation pays
  round-trip link latency on the simulated clock, respects partitions,
  and consults the fault injector at the new ``storage.rpc`` site
  (crash / delay / drop-as-timeout).  Optional retry and circuit-breaker
  policies guard the link; per-engine counters, latency histograms, and
  ``storage.rpc`` trace spans make the tier observable.

A :class:`StorageTier` groups M storage nodes under a consistent-hash
(vnode) ring so N compute nodes can mount the same tier with N ≠ M —
the topology experiment E26 (``bench_disaggregated_scaleout.py``)
scales.  Because state lives in the tier, a compute node is *stateless*:
cluster membership changes become pure ring remaps (zero entity
migration) and a crashed compute node recovers by re-mounting the
surviving storage nodes instead of replaying a WAL.
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterable

from ..core.clock import EventScheduler, SimulationClock
from ..core.errors import (
    CircuitOpenError,
    ConfigurationError,
    FaultInjectedError,
    KeyNotFoundError,
    PartitionedError,
)
from ..core.metrics import MetricsRegistry
from ..net.overlay import ChordRing
from ..net.simnet import Link, SimulatedNetwork
from ..obs.tracing import NoopTracer, Tracer
from .kv import KVStore
from .objectstore import ObjectRef, ObjectStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience.faults import FaultInjector
    from ..resilience.policies import CircuitBreaker, RetryPolicy

#: Separator between a storage-node name and its vnode index on the ring.
_VNODE_SEP = "#"


def _approx_size(value: object) -> int:
    """Payload size estimate for RPC serialization-delay accounting."""
    try:
        return len(json.dumps(value))
    except (TypeError, ValueError):
        return len(repr(value))


class StorageEngine(ABC):
    """The operation surface a platform needs from its storage tier.

    Three key families, mirroring Fig. 7's storage boxes: *entities* (hot
    structured state, the KV tier), *products* (committed marketplace
    post-states the compute tier's MVCC cache hydrates from), and
    *objects* (content-addressed blobs).  Implementations must keep
    entity scans sorted by key and raise
    :class:`~repro.core.errors.KeyNotFoundError` for missing entities.
    """

    #: Implementation tag exported in gauges and describe().
    kind: str = "abstract"

    # -- entities (KV tier) -------------------------------------------------

    @abstractmethod
    def get(self, key: str) -> object: ...

    @abstractmethod
    def put(self, key: str, value: object) -> None: ...

    @abstractmethod
    def delete(self, key: str) -> None: ...

    @abstractmethod
    def scan(self, lo: str, hi: str) -> list[tuple[str, object]]: ...

    def keys(self) -> list[str]:
        return [key for key, _ in self.scan("", "￿")]

    # -- bulk entity ops (the tick-coalesced hot path) ----------------------
    #
    # One tick's worth of gets/puts moves as a single call: in-process
    # engines loop (free), but a remote engine coalesces every key owned
    # by the same storage node into ONE round trip, cutting simulated RPC
    # count from O(keys) to O(nodes) per tick (experiment E27).

    def mget(self, keys: Iterable[str]) -> dict[str, object]:
        """Values for every *present* key in ``keys`` (absent keys are
        simply omitted — bulk readers filter, they don't except)."""
        out: dict[str, object] = {}
        for key in keys:
            try:
                out[key] = self.get(key)
            except KeyNotFoundError:
                continue
        return out

    def mput(self, items: "list[tuple[str, object]]") -> None:
        """Store every (key, value) pair; later duplicates win, exactly
        as the equivalent sequence of :meth:`put` calls would."""
        for key, value in items:
            self.put(key, value)

    # -- committed product records ------------------------------------------

    @abstractmethod
    def put_product(self, product_id: str, value: dict) -> None: ...

    @abstractmethod
    def get_product(self, product_id: str) -> dict | None: ...

    @abstractmethod
    def delete_product(self, product_id: str) -> None: ...

    @abstractmethod
    def products(self) -> dict[str, dict]: ...

    # -- objects (blob tier) ------------------------------------------------

    @abstractmethod
    def put_object(
        self, name: str, data: bytes, metadata: dict[str, str] | None = None
    ) -> ObjectRef: ...

    @abstractmethod
    def get_object(self, name: str, version: int | None = None) -> bytes: ...

    # -- lifecycle -----------------------------------------------------------

    def maintain(self, now: float | None = None) -> dict:
        """One data-lifecycle sweep (checkpointing, tier demotion).

        No-op by default; :class:`~repro.storage.lifecycle.
        TieredStorageEngine` overrides it.  The platform and cluster tick
        loops call this unconditionally, so any engine can opt into
        lifecycle work without new wiring.
        """
        return {}

    # -- introspection ------------------------------------------------------

    def describe(self) -> dict:
        return {"kind": self.kind, "entities": len(self.keys())}


class LocalStorageEngine(StorageEngine):
    """The in-process storage tier: LSM KV store (+WAL), objects, products.

    This is exactly the tier a pre-split platform owned privately, so a
    platform built with a default engine is byte-identical to one built
    before the seam existed.  Product records live in a plain dict — on a
    single node they shadow the MVCC catalog and only matter as the
    hydration source once the engine is mounted remotely.
    """

    kind = "local"

    def __init__(
        self,
        memtable_budget_bytes: int = 64 * 1024,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        faults: "FaultInjector | None" = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NoopTracer()
        self.faults = faults
        self.kv = KVStore(
            memtable_budget_bytes=memtable_budget_bytes,
            metrics=self.metrics,
            tracer=self.tracer,
            faults=faults,
        )
        self.objects = ObjectStore(metrics=self.metrics, tracer=self.tracer)
        self._products: dict[str, dict] = {}

    # -- entities -----------------------------------------------------------

    def get(self, key: str) -> object:
        return self.kv.get(key)

    def put(self, key: str, value: object) -> None:
        self.kv.put(key, value)

    def mput(self, items: "Iterable[tuple[str, object]]") -> None:
        # Group commit: one WAL entry and one memtable merge for the batch.
        self.kv.mput(list(items))

    def delete(self, key: str) -> None:
        self.kv.delete(key)

    def scan(self, lo: str, hi: str) -> list[tuple[str, object]]:
        return list(self.kv.scan(lo, hi))

    def keys(self) -> list[str]:
        return self.kv.keys()

    # -- products -----------------------------------------------------------

    def put_product(self, product_id: str, value: dict) -> None:
        self._products[product_id] = dict(value)

    def get_product(self, product_id: str) -> dict | None:
        value = self._products.get(product_id)
        return dict(value) if value is not None else None

    def delete_product(self, product_id: str) -> None:
        self._products.pop(product_id, None)

    def products(self) -> dict[str, dict]:
        return {pid: dict(value) for pid, value in self._products.items()}

    # -- objects ------------------------------------------------------------

    def put_object(
        self, name: str, data: bytes, metadata: dict[str, str] | None = None
    ) -> ObjectRef:
        return self.objects.put(name, data, metadata)

    def get_object(self, name: str, version: int | None = None) -> bytes:
        return self.objects.get(name, version)


class StorageNode:
    """One standalone storage server: a named :class:`LocalStorageEngine`
    endpoint on the tier's network.

    Nodes are deliberately dumb — routing, retries, and fault handling are
    the client's job (the classic disaggregated split: smart client,
    simple shared storage).  Per-node counters
    (``storage.node.<name>.ops``) expose the load each node absorbs.
    """

    def __init__(
        self,
        name: str,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        engine_factory=None,
    ) -> None:
        self.name = name
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NoopTracer()
        # ``engine_factory(metrics, tracer)`` lets a tier run lifecycle-
        # managed nodes (e.g. TieredStorageEngine) without this module
        # depending on the lifecycle layer.
        self.engine = (
            engine_factory(self.metrics, self.tracer)
            if engine_factory is not None
            else LocalStorageEngine(metrics=self.metrics, tracer=self.tracer)
        )
        self.ops = 0

    def execute(self, op: str, *args):
        """Run one storage operation locally (the RPC server side)."""
        self.ops += 1
        self.metrics.counter(f"storage.node.{self.name}.ops").inc()
        return getattr(self.engine, op)(*args)


class StorageTier:
    """M storage nodes behind a consistent-hash ring, mountable by any
    number of compute nodes.

    The ring (vnode-balanced, same construction as the cluster's
    :class:`~repro.cluster.router.ShardRouter`) maps every entity key,
    product id, and object name to its owning node *independently of
    compute membership* — which is precisely what makes compute remaps
    free.  The tier's :class:`~repro.net.simnet.SimulatedNetwork` models
    the compute↔storage links: per-op latency, partitions, and
    bandwidth-proportional serialization delay.
    """

    def __init__(
        self,
        n_nodes: int = 2,
        node_names: Iterable[str] | None = None,
        vnodes: int = 32,
        clock: SimulationClock | None = None,
        link: Link | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        engine_factory=None,
    ) -> None:
        names = list(node_names) if node_names is not None else [
            f"storage-{i}" for i in range(n_nodes)
        ]
        if not names:
            raise ConfigurationError("storage tier needs at least one node")
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate storage node names")
        if vnodes < 1:
            raise ConfigurationError("vnodes must be >= 1")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NoopTracer()
        self.clock = clock if clock is not None else SimulationClock()
        self.scheduler = EventScheduler(self.clock)
        self.net = SimulatedNetwork(
            self.scheduler,
            default_link=link if link is not None else Link(),
            metrics=self.metrics,
            tracer=self.tracer,
        )
        self.vnodes = vnodes
        self.ring = ChordRing()
        self.nodes: dict[str, StorageNode] = {}
        for name in names:
            if _VNODE_SEP in name:
                raise ConfigurationError(
                    f"storage node name {name!r} may not contain {_VNODE_SEP!r}"
                )
            self.nodes[name] = StorageNode(
                name, metrics=self.metrics, tracer=self.tracer,
                engine_factory=engine_factory,
            )
            self.net.add_node(name)
            for i in range(vnodes):
                self.ring.join(f"{name}{_VNODE_SEP}{i}")
        self._mounts = 0
        # Key -> node-name routing cache.  Tier membership is fixed at
        # construction, so entries never invalidate; the cap only bounds
        # memory under adversarial key churn.  Saves a sha256 + bisect
        # per RPC — measurable on the coalesced batch path, dominant on
        # the per-key one.
        self._owner_cache: dict[str, str] = {}
        self._owner_cache_cap = 1 << 20
        self.metrics.gauge("storage.tier.nodes").set(float(len(self.nodes)))

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def node_names(self) -> list[str]:
        return list(self.nodes)

    def node_of(self, key: str) -> StorageNode:
        """The storage node owning ``key`` (compute-membership-independent)."""
        name = self._owner_cache.get(key)
        if name is None:
            name = self.ring.owner_of(key).split(_VNODE_SEP, 1)[0]
            if len(self._owner_cache) >= self._owner_cache_cap:
                self._owner_cache.clear()
            self._owner_cache[key] = name
        return self.nodes[name]

    def group_by_node(self, keys: Iterable[str]) -> "dict[StorageNode, list[str]]":
        """Partition ``keys`` by owning node (input order preserved,
        nodes in first-appearance order) — the coalescing primitive."""
        grouped: dict[StorageNode, list[str]] = {}
        for key in keys:
            grouped.setdefault(self.node_of(key), []).append(key)
        return grouped

    def mget(self, keys: Iterable[str]) -> dict[str, object]:
        """Server-side bulk read across nodes (audits and invariants;
        clients go through :meth:`RemoteStorageEngine.mget` to pay the
        simulated round trips)."""
        merged: dict[str, object] = {}
        for node, node_keys in self.group_by_node(keys).items():
            merged.update(node.execute("mget", node_keys))
        return merged

    def mput(self, items: "list[tuple[str, object]]") -> None:
        """Server-side bulk write across nodes (mirror of :meth:`mget`)."""
        grouped: dict[StorageNode, list[tuple[str, object]]] = {}
        for key, value in items:
            grouped.setdefault(self.node_of(key), []).append((key, value))
        for node, node_items in grouped.items():
            node.execute("mput", node_items)

    def mount(
        self,
        client: str | None = None,
        faults: "FaultInjector | None" = None,
        retry: "RetryPolicy | None" = None,
        breaker: "CircuitBreaker | None" = None,
        rpc_timeout_s: float = 0.05,
    ) -> "RemoteStorageEngine":
        """Attach a new compute-side client and return its engine.

        Every mount gets a unique endpoint name, so a re-mounted compute
        node is a *new* network identity — exactly how a restarted
        process rejoins a real fabric.
        """
        self._mounts += 1
        name = f"compute/{client or 'node'}@{self._mounts}"
        return RemoteStorageEngine(
            self,
            client=name,
            faults=faults,
            retry=retry,
            breaker=breaker,
            rpc_timeout_s=rpc_timeout_s,
        )

    def keys(self) -> list[str]:
        """Every entity key held anywhere in the tier (introspection —
        benchmarks and invariant tests audit the tier directly)."""
        merged: set[str] = set()
        for node in self.nodes.values():
            merged.update(node.engine.keys())
        return sorted(merged)

    def maintain(self, now: float | None = None) -> dict[str, dict]:
        """Run one lifecycle sweep on every storage node's engine.

        Server-side maintenance: checkpointing and tier demotion happen
        where the data lives, not on the compute clients.  Returns each
        node's sweep summary.
        """
        now = self.clock.now if now is None else now
        return {
            name: node.engine.maintain(now) for name, node in self.nodes.items()
        }

    def refresh_gauges(self) -> None:
        for name, node in self.nodes.items():
            self.metrics.gauge(f"storage.node.{name}.entities").set(
                float(len(node.engine.keys()))
            )
            self.metrics.gauge(f"storage.node.{name}.ops_total").set(
                float(node.ops)
            )

    def describe(self) -> dict:
        return {
            "nodes": self.node_names,
            "vnodes": self.vnodes,
            "mounts": self._mounts,
            "entities": len(self.keys()),
        }


class RemoteStorageEngine(StorageEngine):
    """Compute-side client of a :class:`StorageTier`.

    Each operation routes its key through the tier ring to the owning
    node and pays a synchronous round trip on the simulated clock:
    request serialization + propagation out, response back, plus any
    injected extra latency.  The ``storage.rpc`` fault site models the
    disaggregation tax in failure form — ``crash`` (the RPC errors),
    ``delay`` (slow link), and ``drop`` (the request vanishes; the client
    burns its ``rpc_timeout_s`` budget before surfacing the failure) —
    all raised as retryable
    :class:`~repro.core.errors.FaultInjectedError`, so the platform's
    existing retry policy recovers transient storage faults and an
    optional :class:`~repro.resilience.policies.CircuitBreaker` sheds
    load from a persistently failing tier.
    """

    kind = "remote"

    def __init__(
        self,
        tier: StorageTier,
        client: str = "compute/node@0",
        faults: "FaultInjector | None" = None,
        retry: "RetryPolicy | None" = None,
        breaker: "CircuitBreaker | None" = None,
        rpc_timeout_s: float = 0.05,
    ) -> None:
        if rpc_timeout_s <= 0:
            raise ConfigurationError("rpc_timeout_s must be positive")
        self.tier = tier
        self.client = client
        self.metrics = tier.metrics
        self.tracer = tier.tracer
        self.faults = faults
        self.retry = retry
        self.breaker = breaker
        self.rpc_timeout_s = rpc_timeout_s
        if client not in tier.net.nodes:
            tier.net.add_node(client)
        self.rpcs = 0

    # -- the RPC core -------------------------------------------------------

    def _rpc(self, node: StorageNode, op: str, request_size: int, *args):
        if self.retry is not None:
            return self.retry.call(lambda: self._rpc_once(node, op, request_size, *args))
        return self._rpc_once(node, op, request_size, *args)

    def _rpc_once(self, node: StorageNode, op: str, request_size: int, *args):
        if self.breaker is not None and not self.breaker.allow():
            raise CircuitOpenError(
                f"storage link breaker open for {self.client}"
            )
        try:
            result = self._transact(node, op, request_size, *args)
        except FaultInjectedError:
            if self.breaker is not None:
                self.breaker.record_failure()
            raise
        if self.breaker is not None:
            self.breaker.record_success()
        return result

    def _transact(self, node: StorageNode, op: str, request_size: int, *args):
        clock = self.tier.clock
        net = self.tier.net
        if net.is_partitioned(self.client, node.name):
            self.metrics.counter("storage.rpc.partitioned").inc()
            raise PartitionedError(
                f"{self.client} -> {node.name} is partitioned"
            )
        extra_delay = 0.0
        if self.faults is not None:
            decision = self.faults.decide(
                "storage.rpc",
                target=f"{self.client}->{node.name}",
                kinds=("crash", "delay", "drop"),
            )
            if decision.kind == "crash":
                self.metrics.counter("storage.rpc.faults").inc()
                raise FaultInjectedError(
                    f"injected crash at storage.rpc ({op} -> {node.name})"
                )
            if decision.kind == "drop":
                # A lost request looks like a timeout from the client side:
                # the full budget burns before the failure surfaces.
                clock.advance(self.rpc_timeout_s)
                self.metrics.counter("storage.rpc.faults").inc()
                self.metrics.counter("storage.rpc.timeouts").inc()
                raise FaultInjectedError(
                    f"storage.rpc timed out after {self.rpc_timeout_s}s "
                    f"({op} -> {node.name}: request dropped)"
                )
            if decision.kind == "delay":
                extra_delay = decision.delay_s
        link = net.link_for(self.client, node.name)
        started = clock.now
        with self.tracer.span("storage.rpc", op=op, node=node.name):
            clock.advance(link.transfer_delay(request_size) + extra_delay)
            result = node.execute(op, *args)
            clock.advance(link.transfer_delay(max(1, _approx_size(result))))
        self.rpcs += 1
        self.metrics.counter("storage.rpc.calls").inc()
        self.metrics.counter("storage.rpc.bytes").inc(request_size)
        self.metrics.histogram("storage.rpc.latency_s").observe(
            clock.now - started
        )
        return result

    def _fan_out(self, op: str, request_size: int, *args) -> list:
        """Run ``op`` against every node (scans have no single owner)."""
        return [
            self._rpc(node, op, request_size, *args)
            for node in self.tier.nodes.values()
        ]

    # -- entities -----------------------------------------------------------

    def get(self, key: str) -> object:
        return self._rpc(self.tier.node_of(key), "get", len(key), key)

    def put(self, key: str, value: object) -> None:
        self._rpc(
            self.tier.node_of(key), "put",
            len(key) + _approx_size(value), key, value,
        )

    def delete(self, key: str) -> None:
        self._rpc(self.tier.node_of(key), "delete", len(key), key)

    def scan(self, lo: str, hi: str) -> list[tuple[str, object]]:
        merged: list[tuple[str, object]] = []
        for part in self._fan_out("scan", len(lo) + len(hi), lo, hi):
            merged.extend(part)
        merged.sort(key=lambda kv: kv[0])
        return merged

    # -- coalesced bulk ops -------------------------------------------------
    #
    # The disaggregation tax is per-round-trip, not per-key: a tick's
    # worth of keys owned by the same storage node travels as ONE RPC
    # (``mget``/``mput`` on the node side), so per-tick round trips are
    # O(storage nodes) instead of O(keys).  Fault semantics are
    # batch-grained by construction — the injector is consulted once per
    # round trip in _transact, so a dropped batch burns one timeout and
    # fails (and retries) as a unit.

    def mget(self, keys: Iterable[str]) -> dict[str, object]:
        merged: dict[str, object] = {}
        for node, node_keys in self.tier.group_by_node(keys).items():
            merged.update(
                self._rpc(
                    node, "mget",
                    sum(len(key) for key in node_keys), node_keys,
                )
            )
        return merged

    def mput(self, items: "list[tuple[str, object]]") -> None:
        grouped: dict[StorageNode, list[tuple[str, object]]] = {}
        for key, value in items:
            grouped.setdefault(self.tier.node_of(key), []).append((key, value))
        for node, node_items in grouped.items():
            request_size = sum(
                len(key) for key, _ in node_items
            ) + _approx_size([value for _, value in node_items])
            self._rpc(node, "mput", request_size, node_items)

    # -- products -----------------------------------------------------------

    def put_product(self, product_id: str, value: dict) -> None:
        self._rpc(
            self.tier.node_of(product_id), "put_product",
            len(product_id) + _approx_size(value), product_id, value,
        )

    def get_product(self, product_id: str) -> dict | None:
        return self._rpc(
            self.tier.node_of(product_id), "get_product",
            len(product_id), product_id,
        )

    def delete_product(self, product_id: str) -> None:
        self._rpc(
            self.tier.node_of(product_id), "delete_product",
            len(product_id), product_id,
        )

    def products(self) -> dict[str, dict]:
        merged: dict[str, dict] = {}
        for part in self._fan_out("products", 1):
            merged.update(part)
        return merged

    # -- objects ------------------------------------------------------------

    def put_object(
        self, name: str, data: bytes, metadata: dict[str, str] | None = None
    ) -> ObjectRef:
        return self._rpc(
            self.tier.node_of(name), "put_object",
            len(name) + len(data), name, data, metadata,
        )

    def get_object(self, name: str, version: int | None = None) -> bytes:
        return self._rpc(
            self.tier.node_of(name), "get_object", len(name), name, version
        )

    # -- introspection ------------------------------------------------------

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "client": self.client,
            "tier": self.tier.describe(),
            "rpcs": self.rpcs,
        }

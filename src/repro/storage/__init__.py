"""Storage tiers: WAL, LSM KV store, object store, block store, buffer pool,
and the pluggable compute/storage engine seam."""

from .blockstore import BlockStore, Extent
from .bufferpool import (
    BufferPool,
    LRUKPolicy,
    LRUPolicy,
    PageMeta,
    SpaceAwarePolicy,
)
from .engine import (
    LocalStorageEngine,
    RemoteStorageEngine,
    StorageEngine,
    StorageNode,
    StorageTier,
)
from .kv import KVStore, MemTable, SSTable
from .lifecycle import (
    CheckpointManager,
    LifecyclePolicy,
    TieredStorageEngine,
)
from .objectstore import ObjectRef, ObjectStore
from .polystore import PolyStore, PolyStoreStats
from .sharded import ShardedKVCluster, Versioned
from .wal import WalEntry, WriteAheadLog

__all__ = [
    "BlockStore",
    "BufferPool",
    "CheckpointManager",
    "Extent",
    "KVStore",
    "LifecyclePolicy",
    "LRUKPolicy",
    "LRUPolicy",
    "LocalStorageEngine",
    "MemTable",
    "ObjectRef",
    "ObjectStore",
    "PageMeta",
    "PolyStore",
    "PolyStoreStats",
    "RemoteStorageEngine",
    "SSTable",
    "ShardedKVCluster",
    "SpaceAwarePolicy",
    "StorageEngine",
    "StorageNode",
    "StorageTier",
    "TieredStorageEngine",
    "Versioned",
    "WalEntry",
    "WriteAheadLog",
]

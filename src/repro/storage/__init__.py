"""Storage tiers: WAL, LSM KV store, object store, block store, buffer pool."""

from .blockstore import BlockStore, Extent
from .bufferpool import (
    BufferPool,
    LRUKPolicy,
    LRUPolicy,
    PageMeta,
    SpaceAwarePolicy,
)
from .kv import KVStore, MemTable, SSTable
from .objectstore import ObjectRef, ObjectStore
from .polystore import PolyStore, PolyStoreStats
from .sharded import ShardedKVCluster, Versioned
from .wal import WalEntry, WriteAheadLog

__all__ = [
    "BlockStore",
    "BufferPool",
    "Extent",
    "KVStore",
    "LRUKPolicy",
    "LRUPolicy",
    "MemTable",
    "ObjectRef",
    "ObjectStore",
    "PageMeta",
    "PolyStore",
    "PolyStoreStats",
    "SSTable",
    "ShardedKVCluster",
    "SpaceAwarePolicy",
    "Versioned",
    "WalEntry",
    "WriteAheadLog",
]

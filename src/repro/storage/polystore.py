"""Polystore facade over the heterogeneous storage tier (Sec. IV-A / IV-E2).

"Recent works on polyglot data management offer a good starting point" —
the storage layer of Fig. 7 "contains heterogeneous data stores, including
the key-value (KV) store, object store, block store".  :class:`PolyStore`
is the single entry point over all three: records route by
:class:`~repro.core.records.DataKind` (structured/location/sensor/event to
the KV store, media blobs to the object store, bulk page payloads to the
block store), and reads come back uniformly without the caller knowing
which engine holds what.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core.errors import ConfigurationError, KeyNotFoundError
from ..core.records import DataKind, DataRecord
from .blockstore import BlockStore, Extent
from .kv import KVStore
from .objectstore import ObjectStore


@dataclass
class PolyStoreStats:
    kv_rows: int
    media_objects: int
    bulk_extents: int
    media_physical_bytes: int


class PolyStore:
    """Routes records to the right engine; answers uniform reads."""

    BULK_THRESHOLD = 64 * 1024  # payload bytes above which blobs go to blocks

    def __init__(
        self,
        kv: KVStore | None = None,
        objects: ObjectStore | None = None,
        blocks: BlockStore | None = None,
    ) -> None:
        self.kv = kv if kv is not None else KVStore()
        self.objects = objects if objects is not None else ObjectStore()
        self.blocks = blocks if blocks is not None else BlockStore(
            block_size=4096, capacity_blocks=1 << 16
        )
        self._block_index: dict[str, Extent] = {}

    # -- writes -----------------------------------------------------------------

    def put_record(self, record: DataRecord) -> str:
        """Store a record; returns the engine name that took it."""
        if record.kind is DataKind.MEDIA:
            data = record.payload.get("data")
            if not isinstance(data, (bytes, bytearray)):
                raise ConfigurationError(
                    "media records need a bytes 'data' payload entry"
                )
            if len(data) >= self.BULK_THRESHOLD:
                self._put_bulk(record.key, bytes(data))
                return "block"
            self.objects.put(
                record.key,
                bytes(data),
                metadata={"source": record.source, "t": str(record.timestamp)},
            )
            return "object"
        self.kv.put(
            record.key,
            {
                "payload": record.payload,
                "space": record.space.value,
                "kind": record.kind.value,
                "timestamp": record.timestamp,
            },
        )
        return "kv"

    def _put_bulk(self, key: str, data: bytes) -> None:
        old = self._block_index.pop(key, None)
        if old is not None:
            self.blocks.free(old)
        n_blocks = -(-len(data) // self.blocks.block_size)
        extent = self.blocks.allocate(n_blocks)
        self.blocks.write_extent(extent, data)
        # Track true length: read_extent pads to block size.
        self._block_index[key] = extent
        self.kv.put(f"__bulk__/{key}", {"length": len(data)})

    # -- reads ------------------------------------------------------------------

    def get(self, key: str) -> Any:
        """Uniform read: structured dict, or media bytes, wherever it lives."""
        if key in self._block_index:
            meta = self.kv.get(f"__bulk__/{key}")
            raw = self.blocks.read_extent(self._block_index[key])
            return raw[: int(meta["length"])]
        try:
            return self.objects.get(key)
        except KeyNotFoundError:
            pass
        try:
            return self.kv.get(key)
        except KeyNotFoundError:
            raise KeyNotFoundError(key) from None

    def engine_of(self, key: str) -> str:
        if key in self._block_index:
            return "block"
        try:
            self.objects.ref(key)
            return "object"
        except KeyNotFoundError:
            pass
        if key in self.kv:
            return "kv"
        raise KeyNotFoundError(key)

    def scan_structured(self, lo: str, hi: str):
        """Range scan over the structured rows only."""
        for key, value in self.kv.scan(lo, hi):
            if not key.startswith("__bulk__/"):
                yield key, value

    # -- introspection --------------------------------------------------------------

    def stats(self) -> PolyStoreStats:
        return PolyStoreStats(
            kv_rows=sum(
                1 for k in self.kv.keys() if not k.startswith("__bulk__/")
            ),
            media_objects=len(self.objects.names()),
            bulk_extents=len(self._block_index),
            media_physical_bytes=self.objects.physical_bytes(),
        )

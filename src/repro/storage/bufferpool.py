"""Buffer pool with pluggable, space-aware eviction (paper Sec. IV-F).

The paper calls for "novel buffer management and caching schemes ...
conscious of the semantics", e.g. physical-space data prioritized over
virtual-space data.  The :class:`BufferPool` caches immutable pages fetched
through a loader callback and supports three eviction policies:

* :class:`LRUPolicy` — classic least-recently-used,
* :class:`LRUKPolicy` — LRU-K (backward K-distance) which resists scan
  pollution, and
* :class:`SpaceAwarePolicy` — semantic priority: pages are ranked by a
  (space, kind) weight first and recency second, so physical-space and
  critical-kind pages survive pressure from bulk virtual data.

Experiment E11 measures hit rates of the three under a metaverse-mix
workload.
"""

from __future__ import annotations

from collections import OrderedDict, defaultdict
from dataclasses import dataclass, field
from typing import Callable, Hashable, Protocol

from ..core.errors import ConfigurationError
from ..core.metrics import MetricsRegistry
from ..core.records import DataKind, Space
from ..obs.tracing import NoopTracer, Tracer

PageKey = Hashable


@dataclass(slots=True)
class PageMeta:
    """Semantic attributes attached to a cached page."""

    space: Space = Space.PHYSICAL
    kind: DataKind = DataKind.STRUCTURED
    size_bytes: int = 1


@dataclass(slots=True)
class _Frame:
    value: object
    meta: PageMeta
    last_access: int = 0
    history: list[int] = field(default_factory=list)  # access times, newest last


class EvictionPolicy(Protocol):
    """Chooses a victim among resident pages."""

    def touch(self, key: PageKey, frame: _Frame, tick: int) -> None: ...

    def victim(self, frames: dict[PageKey, _Frame]) -> PageKey: ...


class LRUPolicy:
    """Evict the least recently used page."""

    def touch(self, key: PageKey, frame: _Frame, tick: int) -> None:
        frame.last_access = tick

    def victim(self, frames: dict[PageKey, _Frame]) -> PageKey:
        return min(frames, key=lambda k: frames[k].last_access)


class LRUKPolicy:
    """LRU-K: evict the page with the oldest K-th most recent access.

    Pages with fewer than K accesses have backward K-distance infinity and
    are evicted first (ties broken by recency), which protects frequently
    re-referenced pages from one-shot scans.
    """

    def __init__(self, k: int = 2) -> None:
        if k < 1:
            raise ConfigurationError("k must be >= 1")
        self.k = k

    def touch(self, key: PageKey, frame: _Frame, tick: int) -> None:
        frame.last_access = tick
        frame.history.append(tick)
        if len(frame.history) > self.k:
            frame.history = frame.history[-self.k :]

    def victim(self, frames: dict[PageKey, _Frame]) -> PageKey:
        def k_distance(frame: _Frame) -> tuple[int, int]:
            if len(frame.history) < self.k:
                return (0, frame.last_access)  # -inf K-distance group
            return (1, frame.history[0])

        return min(frames, key=lambda k: k_distance(frames[k]))


class SpaceAwarePolicy:
    """Semantic eviction: keep high-weight (space, kind) pages resident.

    ``weights`` maps (space, kind) to a priority; higher survives longer.
    Unlisted combinations default to 1.0.  Within a weight class, LRU
    applies.  The default weighting implements the paper's example policy:
    physical-space data outranks virtual-space data, and location/event
    kinds outrank bulk media.
    """

    DEFAULT_WEIGHTS: dict[tuple[Space, DataKind], float] = {
        (Space.PHYSICAL, DataKind.LOCATION): 4.0,
        (Space.PHYSICAL, DataKind.EVENT): 4.0,
        (Space.PHYSICAL, DataKind.SENSOR): 3.0,
        (Space.PHYSICAL, DataKind.STRUCTURED): 2.5,
        (Space.VIRTUAL, DataKind.LOCATION): 2.0,
        (Space.VIRTUAL, DataKind.EVENT): 2.0,
        (Space.PHYSICAL, DataKind.MEDIA): 1.5,
        (Space.VIRTUAL, DataKind.MEDIA): 1.0,
    }

    def __init__(self, weights: dict[tuple[Space, DataKind], float] | None = None) -> None:
        self.weights = dict(self.DEFAULT_WEIGHTS if weights is None else weights)

    def weight(self, meta: PageMeta) -> float:
        return self.weights.get((meta.space, meta.kind), 1.0)

    def touch(self, key: PageKey, frame: _Frame, tick: int) -> None:
        frame.last_access = tick

    def victim(self, frames: dict[PageKey, _Frame]) -> PageKey:
        return min(
            frames,
            key=lambda k: (self.weight(frames[k].meta), frames[k].last_access),
        )


class BufferPool:
    """A capacity-bounded page cache over a loader function.

    ``loader(key)`` must return ``(value, PageMeta)``; it models the fetch
    from the storage tier (and its cost — callers count loader invocations
    as storage reads).
    """

    def __init__(
        self,
        capacity: int,
        loader: Callable[[PageKey], tuple[object, PageMeta]],
        policy: EvictionPolicy | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        self.capacity = capacity
        self.loader = loader
        self.policy: EvictionPolicy = policy if policy is not None else LRUPolicy()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NoopTracer()
        self._frames: OrderedDict[PageKey, _Frame] = OrderedDict()
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.evicted_by_class: dict[tuple[Space, DataKind], int] = defaultdict(int)

    def __len__(self) -> int:
        return len(self._frames)

    def __contains__(self, key: PageKey) -> bool:
        return key in self._frames

    def get(self, key: PageKey) -> object:
        """Return the page, loading (and possibly evicting) on a miss."""
        self._tick += 1
        frame = self._frames.get(key)
        if frame is not None:
            self.hits += 1
            self.metrics.counter("pool.hits").inc()
            self.policy.touch(key, frame, self._tick)
            return frame.value
        self.misses += 1
        self.metrics.counter("pool.misses").inc()
        with self.tracer.span("pool.load"):
            value, meta = self.loader(key)
        if len(self._frames) >= self.capacity:
            self._evict()
        frame = _Frame(value=value, meta=meta)
        self._frames[key] = frame
        self.policy.touch(key, frame, self._tick)
        return value

    def _evict(self) -> None:
        victim = self.policy.victim(self._frames)
        frame = self._frames.pop(victim)
        self.evictions += 1
        self.evicted_by_class[(frame.meta.space, frame.meta.kind)] += 1
        self.metrics.counter("pool.evictions").inc()

    def invalidate(self, key: PageKey) -> None:
        self._frames.pop(key, None)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def resident_keys(self) -> list[PageKey]:
        return list(self._frames)

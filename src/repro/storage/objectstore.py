"""Content-addressed object store (paper Sec. IV-E2, the "object store" tier).

Holds large immutable blobs — media, meshes, LOD levels — addressed by the
SHA-256 of their content, with named, versioned references on top (the same
shape as a cloud blob service plus a small metadata index).  Deduplication
falls out of content addressing: storing the same bytes twice costs one copy,
which matters for the AR/VR asset experiments (E14) where shared
representations are the point.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterator

from ..core.errors import KeyNotFoundError, StorageError
from ..core.metrics import MetricsRegistry
from ..obs.tracing import NoopTracer, Tracer


@dataclass(frozen=True)
class ObjectRef:
    """A named, versioned pointer to a content hash."""

    name: str
    version: int
    content_hash: str
    size_bytes: int
    metadata: tuple[tuple[str, str], ...] = field(default=())

    def meta(self) -> dict[str, str]:
        return dict(self.metadata)


class ObjectStore:
    """Content-addressed blobs with versioned names."""

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NoopTracer()
        self._blobs: dict[str, bytes] = {}
        self._refcount: dict[str, int] = {}
        self._versions: dict[str, list[ObjectRef]] = {}

    # -- blobs --------------------------------------------------------------

    @staticmethod
    def content_hash(data: bytes) -> str:
        return hashlib.sha256(data).hexdigest()

    def put(self, name: str, data: bytes, metadata: dict[str, str] | None = None) -> ObjectRef:
        """Store ``data`` under ``name``; returns the new version's ref."""
        if not isinstance(data, (bytes, bytearray)):
            raise StorageError("object data must be bytes")
        digest = self.content_hash(bytes(data))
        if digest not in self._blobs:
            self._blobs[digest] = bytes(data)
            self._refcount[digest] = 0
            self.metrics.counter("obj.unique_bytes").inc(len(data))
        else:
            self.metrics.counter("obj.dedup_hits").inc()
        self._refcount[digest] += 1
        versions = self._versions.setdefault(name, [])
        ref = ObjectRef(
            name=name,
            version=versions[-1].version + 1 if versions else 1,
            content_hash=digest,
            size_bytes=len(data),
            metadata=tuple(sorted((metadata or {}).items())),
        )
        versions.append(ref)
        self.metrics.counter("obj.puts").inc()
        self.metrics.counter("obj.logical_bytes").inc(len(data))
        return ref

    def get(self, name: str, version: int | None = None) -> bytes:
        """Fetch the blob for ``name`` (latest version by default)."""
        ref = self.ref(name, version)
        self.metrics.counter("obj.gets").inc()
        return self._blobs[ref.content_hash]

    def get_by_hash(self, content_hash: str) -> bytes:
        try:
            return self._blobs[content_hash]
        except KeyError:
            raise KeyNotFoundError(content_hash) from None

    def ref(self, name: str, version: int | None = None) -> ObjectRef:
        versions = self._versions.get(name)
        if not versions:
            raise KeyNotFoundError(name)
        if version is None:
            return versions[-1]
        # Resolve by version *number*, not list position: pruning may have
        # dropped a prefix while surviving refs keep their numbering.
        first = versions[0].version
        idx = version - first
        if not 0 <= idx < len(versions):
            raise KeyNotFoundError(f"{name}@v{version}")
        return versions[idx]

    def delete(self, name: str) -> None:
        """Drop all versions of ``name``; blobs are GC'd by refcount."""
        versions = self._versions.pop(name, None)
        if versions is None:
            raise KeyNotFoundError(name)
        for ref in versions:
            self._refcount[ref.content_hash] -= 1
            if self._refcount[ref.content_hash] == 0:
                del self._blobs[ref.content_hash]
                del self._refcount[ref.content_hash]

    def prune_versions(self, name: str, keep: int) -> int:
        """Drop all but the newest ``keep`` versions of ``name``; returns
        the number of versions pruned (blobs GC'd by refcount).

        Lifecycle management: checkpoint snapshots and cold-tier demotions
        would otherwise accumulate a version per write forever — exactly
        the unbounded growth this store exists to absorb, re-created one
        layer down.  Version numbers of the survivors are preserved, so
        existing :class:`ObjectRef` handles to them stay valid.
        """
        if keep < 1:
            raise StorageError("keep must be >= 1")
        versions = self._versions.get(name)
        if versions is None:
            raise KeyNotFoundError(name)
        pruned = versions[:-keep]
        if not pruned:
            return 0
        self._versions[name] = versions[-keep:]
        for ref in pruned:
            self._refcount[ref.content_hash] -= 1
            if self._refcount[ref.content_hash] == 0:
                del self._blobs[ref.content_hash]
                del self._refcount[ref.content_hash]
        self.metrics.counter("obj.pruned_versions").inc(len(pruned))
        return len(pruned)

    # -- introspection ------------------------------------------------------

    def names(self) -> list[str]:
        return sorted(self._versions)

    def versions(self, name: str) -> list[ObjectRef]:
        return list(self._versions.get(name, []))

    def physical_bytes(self) -> int:
        """Bytes actually stored (after dedup)."""
        return sum(len(blob) for blob in self._blobs.values())

    def logical_bytes(self) -> int:
        """Bytes as seen by clients (sum over all live refs)."""
        return sum(
            ref.size_bytes for versions in self._versions.values() for ref in versions
        )

    def iter_refs(self) -> Iterator[ObjectRef]:
        for versions in self._versions.values():
            yield from versions

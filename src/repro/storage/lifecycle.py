"""Data-lifecycle management: checkpoints and hot/warm/cold tiering.

The paper's central claim is that a metaverse platform drowns unless its
storage tier actively manages the lifecycle of what it retains (Sec. III,
the "data deluge").  Before this module every WAL grew forever, so crash
recovery and failover replay cost scaled linearly with *history* rather
than with *live state*.  Two mechanisms bound that growth:

* :class:`CheckpointManager` — periodically snapshots a
  :class:`~repro.storage.kv.KVStore`'s live state into the object store
  and truncates the WAL prefix below the checkpoint LSN.  Recovery then
  restores snapshot + WAL suffix instead of replaying full history, so
  recovery time is flat no matter how old the store is (experiment E28).
  Old snapshots are pruned (:meth:`ObjectStore.prune_versions`) so the
  checkpoint chain itself cannot become the next deluge.

* :class:`TieredStorageEngine` — hot/warm/cold placement for the entity
  keyspace: an in-memory LRU tier over the KV store (warm), with idle
  values demoted to the object store (cold) and transparently promoted
  back on access.  TTL/LRU demotion runs from :meth:`maintain`, which the
  platform and cluster tick loops drive; ``storage.tier.*`` counters,
  gauges, and histograms expose every movement via :mod:`repro.obs`.

The third lifecycle mechanism — replica-log compaction — lives with its
data in :class:`repro.cluster.failover.ShardReplicator`; this module is
the single-store half of the story.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass

from ..core.clock import SimulationClock
from ..core.errors import ConfigurationError, KeyNotFoundError
from ..core.metrics import MetricsRegistry
from .engine import LocalStorageEngine
from .kv import KVStore
from .objectstore import ObjectStore

#: Object-store name prefix for cold-tier demoted values.
_COLD_PREFIX = "tier/cold/"


def _encode_value(value: object) -> bytes:
    """Canonical byte encoding for checkpoint and cold-tier payloads.

    ``sort_keys`` makes the encoding a pure function of the value, so
    demote→promote round trips are bitwise-stable and checkpoint blobs of
    identical state dedup in the content-addressed store.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _decode_value(data: bytes) -> object:
    return json.loads(data.decode("utf-8"))


@dataclass
class LifecyclePolicy:
    """Knobs for :class:`TieredStorageEngine` demotion and checkpointing.

    ``hot_ttl_s``/``warm_ttl_s`` are idle times on the engine's clock; a
    key idle past ``hot_ttl_s`` leaves the in-memory tier (its value is
    still warm), and one idle past ``warm_ttl_s`` is demoted to the cold
    object tier.  ``checkpoint_interval_ops`` triggers a WAL checkpoint
    once that many entries accumulate; ``None`` disables checkpointing.
    """

    hot_capacity: int = 1024
    hot_ttl_s: float = 30.0
    warm_ttl_s: float = 300.0
    checkpoint_interval_ops: int | None = 4096
    checkpoint_keep: int = 2

    def validate(self) -> "LifecyclePolicy":
        if self.hot_capacity < 1:
            raise ConfigurationError("hot_capacity must be >= 1")
        if self.hot_ttl_s <= 0 or self.warm_ttl_s <= 0:
            raise ConfigurationError("tier TTLs must be positive")
        if self.warm_ttl_s < self.hot_ttl_s:
            raise ConfigurationError(
                "warm_ttl_s must be >= hot_ttl_s (a key leaves memory "
                "before it leaves the KV tier)"
            )
        if self.checkpoint_interval_ops is not None and self.checkpoint_interval_ops < 1:
            raise ConfigurationError("checkpoint_interval_ops must be >= 1")
        if self.checkpoint_keep < 1:
            raise ConfigurationError("checkpoint_keep must be >= 1")
        return self


class CheckpointManager:
    """WAL checkpointing for one :class:`KVStore` into an object store.

    :meth:`checkpoint` snapshots the store's live state (plus write
    seqno) under a named, versioned object and truncates the WAL prefix
    at the checkpoint LSN; :meth:`recover` restores a fresh store from
    the latest snapshot and replays only the WAL suffix.  Recovered reads
    are byte-identical to a full-history replay (property-tested in
    ``test_storage_lifecycle.py``), while replay work is bounded by live
    keys + suffix length regardless of history.
    """

    def __init__(
        self,
        kv: KVStore,
        objects: ObjectStore,
        name: str = "ckpt/kv",
        keep: int = 2,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if keep < 1:
            raise ConfigurationError("keep must be >= 1")
        self.kv = kv
        self.objects = objects
        self.name = name
        self.keep = keep
        self.metrics = metrics if metrics is not None else kv.metrics
        self.checkpoints_taken = 0

    @property
    def checkpoint_lsn(self) -> int:
        """LSN of the latest checkpoint (0 when none exists)."""
        try:
            ref = self.objects.ref(self.name)
        except KeyNotFoundError:
            return 0
        return int(ref.meta().get("lsn", 0))

    def checkpoint(self) -> int:
        """Snapshot live state, truncate the WAL prefix; returns the
        checkpoint LSN."""
        lsn = self.kv.wal.last_valid_lsn
        state = self.kv.snapshot_state()
        payload = _encode_value({"lsn": lsn, "state": state})
        self.objects.put(self.name, payload, metadata={"lsn": str(lsn)})
        before = self.kv.wal.entry_count
        self.kv.wal.truncate_before(lsn + 1)
        truncated = before - self.kv.wal.entry_count
        self.objects.prune_versions(self.name, keep=self.keep)
        self.checkpoints_taken += 1
        self.metrics.counter("storage.ckpt.checkpoints").inc()
        self.metrics.counter("storage.ckpt.truncated_entries").inc(truncated)
        self.metrics.gauge("storage.ckpt.lsn").set(float(lsn))
        self.metrics.histogram("storage.ckpt.snapshot_bytes").observe(
            float(len(payload))
        )
        return lsn

    def maybe_checkpoint(self, interval_ops: int) -> int | None:
        """Checkpoint when at least ``interval_ops`` WAL entries have
        accumulated since the last one; returns the LSN or None."""
        if self.kv.wal.entry_count >= interval_ops:
            return self.checkpoint()
        return None

    def recover(self, fresh: KVStore) -> tuple[int, int]:
        """Restore ``fresh`` (sharing the crashed store's WAL) from the
        latest snapshot plus the WAL suffix.

        Returns ``(snapshot_entries, wal_entries)`` applied.  With no
        checkpoint on record this degrades to a plain full replay, so
        callers need not special-case young stores.
        """
        snapshot_entries = 0
        try:
            blob = self.objects.get(self.name)
        except KeyNotFoundError:
            blob = None
        if blob is not None:
            snapshot = _decode_value(bytes(blob))
            snapshot_entries = fresh.load_snapshot(snapshot["state"])
        wal_entries = fresh.recover()
        self.metrics.counter("storage.ckpt.recoveries").inc()
        return snapshot_entries, wal_entries


class TieredStorageEngine(LocalStorageEngine):
    """Hot/warm/cold lifecycle placement over the local engine's tiers.

    * **hot** — an in-memory LRU map (capacity- and TTL-bounded); pure
      cache over warm state, so eviction is free;
    * **warm** — the LSM KV store (+WAL), the durable tier every write
      lands in;
    * **cold** — idle values serialized into the content-addressed object
      store; a cold key keeps exactly one live object version.

    Reads check hot → warm → cold; a cold hit *promotes* the value back
    to warm+hot (the write is WAL-logged, so recovery sees it).  Demotion
    runs from :meth:`maintain` on the engine's clock.  Range scans merge
    warm and cold without promoting — a scan is not a signal that every
    key in the range is hot again.
    """

    kind = "tiered"

    def __init__(
        self,
        policy: LifecyclePolicy | None = None,
        clock: SimulationClock | None = None,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.policy = (policy if policy is not None else LifecyclePolicy()).validate()
        self.clock = clock if clock is not None else SimulationClock()
        self._hot: OrderedDict[str, object] = OrderedDict()
        self._last_access: dict[str, float] = {}
        self._cold: set[str] = set()
        self.checkpointer = CheckpointManager(
            self.kv,
            self.objects,
            keep=self.policy.checkpoint_keep,
            metrics=self.metrics,
        )

    # -- tier movement -------------------------------------------------------

    def _touch(self, key: str, value: object) -> None:
        """Install ``key`` in the hot tier and stamp its access time."""
        self._hot[key] = value
        self._hot.move_to_end(key)
        self._last_access[key] = self.clock.now
        while len(self._hot) > self.policy.hot_capacity:
            self._hot.popitem(last=False)
            self.metrics.counter("storage.tier.hot_evictions").inc()

    def _promote(self, key: str) -> object:
        """Pull a cold value back to warm+hot (transparent on access)."""
        data = self.objects.get(_COLD_PREFIX + key)
        value = _decode_value(bytes(data))
        self.kv.put(key, value)
        self.objects.delete(_COLD_PREFIX + key)
        self._cold.discard(key)
        self._touch(key, value)
        self.metrics.counter("storage.tier.promotions").inc()
        return value

    def _demote_cold(self, key: str) -> None:
        """Move an idle warm value into the cold object tier."""
        value = self.kv.get(key)
        data = _encode_value(value)
        self.objects.put(
            _COLD_PREFIX + key, data, metadata={"tier": "cold"}
        )
        self.objects.prune_versions(_COLD_PREFIX + key, keep=1)
        self.kv.delete(key)
        self._cold.add(key)
        self._hot.pop(key, None)
        self.metrics.counter("storage.tier.demotions").inc()
        self.metrics.histogram("storage.tier.demoted_bytes").observe(
            float(len(data))
        )

    def maintain(self, now: float | None = None) -> dict:
        """One lifecycle sweep: TTL/LRU demotion plus checkpointing.

        Driven by the platform/cluster tick loops (and by
        :meth:`StorageTier.maintain` in disaggregated mode).  Returns a
        summary dict for introspection and tests.
        """
        now = self.clock.now if now is None else now
        hot_evicted = 0
        for key in [
            k for k, _ in self._hot.items()
            if now - self._last_access.get(k, now) >= self.policy.hot_ttl_s
        ]:
            self._hot.pop(key, None)
            hot_evicted += 1
        if hot_evicted:
            self.metrics.counter("storage.tier.hot_evictions").inc(hot_evicted)
        demoted = 0
        for key in self.kv.keys():
            # A key with no recorded access (e.g. loaded by recovery)
            # starts its idle clock at the first sweep that sees it.
            idle = now - self._last_access.setdefault(key, now)
            if idle >= self.policy.warm_ttl_s:
                self._demote_cold(key)
                self._last_access.pop(key, None)
                demoted += 1
        checkpoint_lsn = None
        if self.policy.checkpoint_interval_ops is not None:
            checkpoint_lsn = self.checkpointer.maybe_checkpoint(
                self.policy.checkpoint_interval_ops
            )
        self._refresh_tier_gauges()
        return {
            "hot_evicted": hot_evicted,
            "demoted": demoted,
            "checkpoint_lsn": checkpoint_lsn,
        }

    def _refresh_tier_gauges(self) -> None:
        self.metrics.gauge("storage.tier.hot_entries").set(float(len(self._hot)))
        self.metrics.gauge("storage.tier.warm_entries").set(
            float(len(self.kv.keys()))
        )
        self.metrics.gauge("storage.tier.cold_entries").set(float(len(self._cold)))

    # -- entity ops (tier-aware) ---------------------------------------------

    def get(self, key: str) -> object:
        if key in self._hot:
            value = self._hot[key]
            self._hot.move_to_end(key)
            self._last_access[key] = self.clock.now
            self.metrics.counter("storage.tier.hot_hits").inc()
            return value
        try:
            value = self.kv.get(key)
        except KeyNotFoundError:
            if key in self._cold:
                self.metrics.counter("storage.tier.cold_hits").inc()
                return self._promote(key)
            raise
        self.metrics.counter("storage.tier.warm_hits").inc()
        self._touch(key, value)
        return value

    def put(self, key: str, value: object) -> None:
        self.kv.put(key, value)
        if key in self._cold:
            self.objects.delete(_COLD_PREFIX + key)
            self._cold.discard(key)
        self._touch(key, value)

    def mput(self, items) -> None:
        items = list(items)
        self.kv.mput(items)
        for key, value in items:
            if key in self._cold:
                self.objects.delete(_COLD_PREFIX + key)
                self._cold.discard(key)
            self._touch(key, value)

    def delete(self, key: str) -> None:
        self.kv.delete(key)
        self._hot.pop(key, None)
        self._last_access.pop(key, None)
        if key in self._cold:
            self.objects.delete(_COLD_PREFIX + key)
            self._cold.discard(key)

    def scan(self, lo: str, hi: str) -> list[tuple[str, object]]:
        merged = dict(self.kv.scan(lo, hi))
        for key in self._cold:
            if lo <= key <= hi and key not in merged:
                merged[key] = _decode_value(
                    bytes(self.objects.get(_COLD_PREFIX + key))
                )
        return sorted(merged.items())

    def keys(self) -> list[str]:
        return sorted(set(self.kv.keys()) | self._cold)

    # -- recovery ------------------------------------------------------------

    def recover(self) -> "TieredStorageEngine":
        """Crash-recover in place: rebuild warm state from the latest
        checkpoint + WAL suffix and re-derive the cold index from the
        object store (cold placement is recoverable metadata, not state).

        Models a restart: the in-memory hot tier and access clock start
        empty — cold data survived in the object tier, warm data in
        checkpoint + WAL.
        """
        fresh = KVStore(
            memtable_budget_bytes=self.kv.memtable_budget_bytes,
            max_runs=self.kv.max_runs,
            wal=self.kv.wal,
            metrics=self.metrics,
            tracer=self.tracer,
            faults=self.faults,
        )
        self.checkpointer.recover(fresh)
        self.kv = fresh
        self.checkpointer.kv = fresh
        self._hot.clear()
        self._last_access.clear()
        self._cold = {
            name[len(_COLD_PREFIX):]
            for name in self.objects.names()
            if name.startswith(_COLD_PREFIX)
        }
        self._refresh_tier_gauges()
        return self

    # -- introspection -------------------------------------------------------

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "hot": len(self._hot),
            "warm": len(self.kv.keys()),
            "cold": len(self._cold),
            "checkpoint_lsn": self.checkpointer.checkpoint_lsn,
        }

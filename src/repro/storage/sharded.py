"""Sharded, replicated key-value cluster (paper Sec. III / IV-E1).

"Database sharding, workload partitioning ... decentralized databases,
storing data across a network of distributed servers" — this module builds
that substrate over the existing pieces: keys shard across nodes via the
Chord ring, each key replicates to ``n_replicas`` successors, and reads/
writes use configurable quorums (``write_quorum + read_quorum > n_replicas``
gives read-your-writes through node failures, the Dynamo-style recipe).

Versions are (logical timestamp, writer) pairs; reads return the newest
version among the replicas consulted, and stale replicas found during a
read are repaired in place (read repair).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core.errors import ConfigurationError, KeyNotFoundError, StorageError
from ..net.overlay import ChordRing
from .kv import KVStore


@dataclass(frozen=True)
class Versioned:
    value: Any
    version: int
    writer: str


@dataclass
class _Node:
    name: str
    store: KVStore
    alive: bool = True


class ShardedKVCluster:
    """A quorum-replicated KV cluster over a consistent-hashing ring."""

    def __init__(
        self,
        node_names: list[str],
        n_replicas: int = 3,
        write_quorum: int = 2,
        read_quorum: int = 2,
    ) -> None:
        if not node_names:
            raise ConfigurationError("need at least one node")
        if n_replicas > len(node_names):
            raise ConfigurationError("n_replicas exceeds node count")
        if not 1 <= write_quorum <= n_replicas or not 1 <= read_quorum <= n_replicas:
            raise ConfigurationError("quorums must be within [1, n_replicas]")
        if write_quorum + read_quorum <= n_replicas:
            raise ConfigurationError(
                "need write_quorum + read_quorum > n_replicas for consistency"
            )
        self.n_replicas = n_replicas
        self.write_quorum = write_quorum
        self.read_quorum = read_quorum
        self.ring = ChordRing()
        self.nodes: dict[str, _Node] = {}
        for name in node_names:
            self.ring.join(name)
            self.nodes[name] = _Node(name, KVStore())
        self._clock = 0
        self.read_repairs = 0

    # -- membership / failures --------------------------------------------------

    def fail_node(self, name: str) -> None:
        self._node(name).alive = False

    def recover_node(self, name: str) -> None:
        self._node(name).alive = True

    def _node(self, name: str) -> _Node:
        node = self.nodes.get(name)
        if node is None:
            raise ConfigurationError(f"unknown node {name!r}")
        return node

    def replicas_of(self, key: str) -> list[str]:
        """The ``n_replicas`` distinct owners: successor walk on the ring."""
        return self.ring.successors(key, self.n_replicas)

    # -- operations ----------------------------------------------------------------

    def put(self, key: str, value: Any, writer: str = "client") -> int:
        """Write to the replica set; succeeds with ``write_quorum`` acks."""
        self._clock += 1
        version = self._clock
        record = {"value": value, "version": version, "writer": writer}
        acks = 0
        for name in self.replicas_of(key):
            node = self.nodes[name]
            if not node.alive:
                continue
            node.store.put(key, record)
            acks += 1
        if acks < self.write_quorum:
            raise StorageError(
                f"write quorum not met for {key!r}: {acks}/{self.write_quorum}"
            )
        return version

    def get(self, key: str) -> Versioned:
        """Read from ``read_quorum`` replicas; newest version wins.

        Stale live replicas seen during the read are repaired.
        """
        responses: list[tuple[str, dict | None]] = []
        for name in self.replicas_of(key):
            node = self.nodes[name]
            if not node.alive:
                continue
            responses.append((name, node.store.get_or(key)))  # type: ignore[arg-type]
            if len(responses) >= self.read_quorum:
                break
        if len(responses) < self.read_quorum:
            raise StorageError(f"read quorum not met for {key!r}")
        freshest: dict | None = None
        for _, record in responses:
            if record is not None and (
                freshest is None or record["version"] > freshest["version"]
            ):
                freshest = record
        if freshest is None:
            raise KeyNotFoundError(key)
        # Read repair: bring consulted stale replicas up to date.
        for name, record in responses:
            if record is None or record["version"] < freshest["version"]:
                self.nodes[name].store.put(key, freshest)
                self.read_repairs += 1
        return Versioned(
            value=freshest["value"],
            version=freshest["version"],
            writer=freshest["writer"],
        )

    # -- introspection ----------------------------------------------------------

    def alive_count(self) -> int:
        return sum(node.alive for node in self.nodes.values())

    def keys_per_node(self) -> dict[str, int]:
        return {name: len(node.store.keys()) for name, node in self.nodes.items()}

    def replica_versions(self, key: str) -> dict[str, int | None]:
        """Version held at each replica (None = missing), dead ones included."""
        out = {}
        for name in self.replicas_of(key):
            record = self.nodes[name].store.get_or(key)
            out[name] = record["version"] if record else None
        return out

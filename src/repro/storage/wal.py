"""Write-ahead log.

The KV store (and the ledger on top of it) logs every mutation before
applying it, so a crash-restart (simulated by dropping in-memory state and
replaying) recovers exactly the committed prefix.  Entries are serialized to
bytes with a checksum so torn/corrupt tails are detected and truncated on
replay — the standard WAL recovery contract.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from ..core.errors import FaultInjectedError, StorageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience.faults import FaultInjector

_HEADER = struct.Struct("<IIQ")  # crc32, length, lsn


@dataclass(frozen=True)
class WalEntry:
    """One logged mutation."""

    lsn: int
    payload: bytes


class WriteAheadLog:
    """Append-only log with checksummed, length-prefixed entries.

    The log body is a single ``bytearray``; ``tail_corrupt()`` can chop bytes
    off the end to simulate a torn write, and ``replay`` stops cleanly at the
    first bad entry.
    """

    def __init__(self, faults: "FaultInjector | None" = None) -> None:
        self._buf = bytearray()
        self._next_lsn = 1
        self.faults = faults

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    def __len__(self) -> int:
        return len(self._buf)

    def append(self, payload: bytes) -> int:
        """Append ``payload``; return its log sequence number.

        With a fault injector attached, an injected ``crash`` fails the
        append before any byte is written (the caller never applied the
        mutation either — WAL-before-apply keeps this atomic), and an
        injected ``corrupt`` tears the write: the entry lands with a
        flipped payload byte, which :meth:`replay` detects and truncates
        at, exactly like a real torn sector.
        """
        if not isinstance(payload, (bytes, bytearray)):
            raise StorageError("WAL payload must be bytes")
        corrupt = False
        if self.faults is not None:
            decision = self.faults.decide("wal.append", kinds=("crash", "corrupt"))
            if decision.kind == "crash":
                raise FaultInjectedError("injected crash at wal.append")
            corrupt = decision.kind == "corrupt"
        lsn = self._next_lsn
        self._next_lsn += 1
        crc = zlib.crc32(payload)
        self._buf += _HEADER.pack(crc, len(payload), lsn)
        self._buf += payload
        if corrupt:
            self._buf[-1] ^= 0xFF
        return lsn

    def replay(self) -> Iterator[WalEntry]:
        """Yield entries in order, stopping at the first corrupt record."""
        offset = 0
        buf = self._buf
        while offset + _HEADER.size <= len(buf):
            crc, length, lsn = _HEADER.unpack_from(buf, offset)
            start = offset + _HEADER.size
            end = start + length
            if end > len(buf):
                return  # torn tail
            payload = bytes(buf[start:end])
            if zlib.crc32(payload) != crc:
                return  # corrupt record: stop replay here
            yield WalEntry(lsn=lsn, payload=payload)
            offset = end

    def truncate_before(self, lsn: int) -> None:
        """Drop entries with LSN < ``lsn`` (checkpointing)."""
        kept = bytearray()
        for entry in self.replay():
            if entry.lsn >= lsn:
                crc = zlib.crc32(entry.payload)
                kept += _HEADER.pack(crc, len(entry.payload), entry.lsn)
                kept += entry.payload
        self._buf = kept

    def corrupt_tail(self, nbytes: int) -> None:
        """Chop ``nbytes`` off the end to simulate a torn write (tests)."""
        if nbytes < 0:
            raise StorageError("nbytes must be >= 0")
        self._buf = self._buf[: max(0, len(self._buf) - nbytes)]

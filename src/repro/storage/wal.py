"""Write-ahead log.

The KV store (and the ledger on top of it) logs every mutation before
applying it, so a crash-restart (simulated by dropping in-memory state and
replaying) recovers exactly the committed prefix.  Entries are serialized to
bytes with a checksum so torn/corrupt tails are detected and truncated on
replay — the standard WAL recovery contract.

The cluster failover layer (:mod:`repro.cluster.failover`) additionally uses
the log as its replication unit: the primary assigns LSNs and replicas adopt
them verbatim via :meth:`append_at`, so a replica copy with holes (dropped
replication messages) is distinguishable from a shorter-but-contiguous one,
and Merkle anti-entropy can rebuild a damaged copy with :meth:`rebuild`.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

from ..core.errors import FaultInjectedError, StorageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience.faults import FaultInjector

_HEADER = struct.Struct("<IIQ")  # crc32, length, lsn


@dataclass(frozen=True)
class WalEntry:
    """One logged mutation."""

    lsn: int
    payload: bytes


class WriteAheadLog:
    """Append-only log with checksummed, length-prefixed entries.

    The log body is a single ``bytearray``; ``corrupt_tail()`` can chop bytes
    off the end to simulate a torn write, and ``replay`` stops cleanly at the
    first bad entry and reports the last valid LSN.  An append after a torn
    tail first truncates the torn bytes — exactly what a real WAL does on
    restart — so new entries never land unreachable behind a half-written
    record.  An entry damaged *in place* (the injected ``corrupt`` fault's
    flipped byte, modelling latent sector corruption) is different: it stays
    in the log and recovery still applies only the prefix before it.
    """

    def __init__(self, faults: "FaultInjector | None" = None) -> None:
        self._buf = bytearray()
        self._next_lsn = 1
        self.faults = faults
        self._torn = False  # tail chopped by corrupt_tail, not yet trimmed
        # Highest LSN removed by truncate_before (checkpointing).  Entries
        # at or below this LSN are durable in the checkpoint snapshot, not
        # on disk, so LSN accounting must never report the log as starting
        # at LSN 0 again after a checkpoint truncated its prefix.
        self._truncated_lsn = 0

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    @property
    def truncated_lsn(self) -> int:
        """Highest LSN dropped by checkpoint truncation (0 if none)."""
        return self._truncated_lsn

    @property
    def entry_count(self) -> int:
        """Number of intact entries currently in the log body."""
        return len(self._scan()[0])

    def __len__(self) -> int:
        return len(self._buf)

    def append(self, payload: bytes) -> int:
        """Append ``payload``; return its log sequence number.

        With a fault injector attached, an injected ``crash`` fails the
        append before any byte is written (the caller never applied the
        mutation either — WAL-before-apply keeps this atomic), and an
        injected ``corrupt`` tears the write: the entry lands with a
        flipped payload byte, which :meth:`replay` detects and truncates
        at, exactly like a real torn sector.
        """
        if not isinstance(payload, (bytes, bytearray)):
            raise StorageError("WAL payload must be bytes")
        corrupt = False
        if self.faults is not None:
            decision = self.faults.decide("wal.append", kinds=("crash", "corrupt"))
            if decision.kind == "crash":
                raise FaultInjectedError("injected crash at wal.append")
            corrupt = decision.kind == "corrupt"
        lsn = self._next_lsn
        self._append_entry(lsn, bytes(payload), corrupt=corrupt)
        self._next_lsn = lsn + 1
        return lsn

    def append_at(self, lsn: int, payload: bytes) -> int:
        """Append ``payload`` under an externally assigned ``lsn``.

        Replication path: the primary's log assigns LSNs and replica copies
        adopt them, so holes left by dropped replication messages stay
        visible as LSN gaps instead of silently renumbering.
        """
        if not isinstance(payload, (bytes, bytearray)):
            raise StorageError("WAL payload must be bytes")
        if lsn < 1:
            raise StorageError(f"LSN must be >= 1, got {lsn}")
        self._append_entry(lsn, bytes(payload), corrupt=False)
        self._next_lsn = max(self._next_lsn, lsn + 1)
        return lsn

    def _append_entry(self, lsn: int, payload: bytes, corrupt: bool) -> None:
        if self._torn:
            # Trim the half-written tail before appending, so the new entry
            # starts on a valid record boundary instead of landing
            # unreachable behind torn bytes (the pre-fix behaviour silently
            # lost every append made after a torn tail).
            _, _, valid_end = self._scan()
            del self._buf[valid_end:]
            self._torn = False
        crc = zlib.crc32(payload)
        self._buf += _HEADER.pack(crc, len(payload), lsn)
        self._buf += payload
        if corrupt:
            self._buf[-1] ^= 0xFF

    def _scan(self) -> tuple[list[WalEntry], int, int]:
        """Walk the buffer; return (valid entries, last valid LSN, offset
        just past the last valid entry)."""
        entries: list[WalEntry] = []
        last_lsn = 0
        offset = 0
        buf = self._buf
        while offset + _HEADER.size <= len(buf):
            crc, length, lsn = _HEADER.unpack_from(buf, offset)
            start = offset + _HEADER.size
            end = start + length
            if end > len(buf):
                break  # torn tail
            payload = bytes(buf[start:end])
            if zlib.crc32(payload) != crc:
                break  # corrupt record: stop replay here
            entries.append(WalEntry(lsn=lsn, payload=payload))
            last_lsn = lsn
            offset = end
        return entries, last_lsn, offset

    def replay(self) -> Iterator[WalEntry]:
        """Yield entries in order, stopping cleanly at the first torn or
        corrupt record; the generator's return value (``StopIteration``
        payload) is the last valid LSN — 0 for an empty or fully torn log
        that was never checkpoint-truncated.  After ``truncate_before``
        the reported LSN never falls below the truncated prefix: those
        entries are durable in the checkpoint snapshot, not lost."""
        entries, last_lsn, _ = self._scan()
        yield from entries
        return max(last_lsn, self._truncated_lsn)

    def recover_prefix(self) -> tuple[list[WalEntry], int]:
        """The committed prefix as a list, plus the last valid LSN.

        The non-lazy twin of :meth:`replay`, for recovery code that needs
        the LSN high-water mark (replica freshness comparison, catch-up
        after a torn tail) rather than an iterator.
        """
        entries, last_lsn, _ = self._scan()
        return entries, max(last_lsn, self._truncated_lsn)

    @property
    def last_valid_lsn(self) -> int:
        """LSN of the last intact entry — floored at the checkpoint
        truncation point (0 only for a log that never held anything)."""
        return max(self._scan()[1], self._truncated_lsn)

    def rebuild(self, entries: Iterable[WalEntry]) -> None:
        """Replace the log body with ``entries`` (anti-entropy repair)."""
        buf = bytearray()
        next_lsn = self._next_lsn
        for entry in entries:
            crc = zlib.crc32(entry.payload)
            buf += _HEADER.pack(crc, len(entry.payload), entry.lsn)
            buf += entry.payload
            next_lsn = max(next_lsn, entry.lsn + 1)
        self._buf = buf
        self._torn = False
        self._next_lsn = next_lsn

    def truncate_before(self, lsn: int) -> None:
        """Drop entries with LSN < ``lsn`` (checkpointing).

        The highest dropped LSN is remembered so :attr:`last_valid_lsn`
        and :meth:`recover_prefix` keep reporting the true durability
        high-water mark even when the remaining body is empty or its tail
        is later torn — the prefix lives on in the checkpoint snapshot.
        """
        kept = bytearray()
        dropped_max = 0
        for entry in self._scan()[0]:
            if entry.lsn >= lsn:
                crc = zlib.crc32(entry.payload)
                kept += _HEADER.pack(crc, len(entry.payload), entry.lsn)
                kept += entry.payload
            elif entry.lsn > dropped_max:
                dropped_max = entry.lsn
        self._buf = kept
        self._torn = False
        self._truncated_lsn = max(self._truncated_lsn, dropped_max)

    def corrupt_tail(self, nbytes: int) -> None:
        """Chop ``nbytes`` off the end to simulate a torn write (tests)."""
        if nbytes < 0:
            raise StorageError("nbytes must be >= 0")
        self._buf = self._buf[: max(0, len(self._buf) - nbytes)]
        self._torn = True

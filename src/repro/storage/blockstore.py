"""Fixed-size block store (paper Sec. IV-E2, the "block store" tier).

A virtual block device with allocate/free/read/write of fixed-size blocks
and simple extent allocation, the substrate a page-organized engine mounts.
Reads and writes are accounted so experiments can attribute I/O cost to the
storage layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigurationError, StorageError
from ..core.metrics import MetricsRegistry
from ..obs.tracing import NoopTracer, Tracer


@dataclass(frozen=True)
class Extent:
    """A run of contiguous block ids."""

    start: int
    count: int

    def blocks(self) -> range:
        return range(self.start, self.start + self.count)


class BlockStore:
    """A bounded array of fixed-size blocks with a free list."""

    def __init__(
        self,
        block_size: int = 4096,
        capacity_blocks: int = 16384,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if block_size <= 0 or capacity_blocks <= 0:
            raise ConfigurationError("block_size and capacity must be positive")
        self.block_size = block_size
        self.capacity_blocks = capacity_blocks
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NoopTracer()
        self._blocks: dict[int, bytes] = {}
        self._allocated: set[int] = set()
        self._next_fresh = 0
        self._free: list[int] = []

    # -- allocation ---------------------------------------------------------

    def allocate(self, count: int = 1) -> Extent:
        """Allocate ``count`` blocks; contiguous when served from fresh space."""
        if count <= 0:
            raise ConfigurationError("count must be positive")
        if len(self._allocated) + count > self.capacity_blocks:
            raise StorageError("block store is full")
        if count == 1 and self._free:
            block_id = self._free.pop()
            extent = Extent(block_id, 1)
        elif self._next_fresh + count <= self.capacity_blocks:
            extent = Extent(self._next_fresh, count)
            self._next_fresh += count
        else:
            run = self._find_free_run(count)
            if run is None:
                raise StorageError("fragmented: no contiguous free run")
            extent = run
            for block_id in extent.blocks():
                self._free.remove(block_id)
        self._allocated.update(extent.blocks())
        return extent

    def _find_free_run(self, count: int) -> Extent | None:
        """Find ``count`` contiguous block ids in the free list."""
        free = sorted(self._free)
        run_start = None
        run_len = 0
        prev = None
        for block_id in free:
            if prev is not None and block_id == prev + 1:
                run_len += 1
            else:
                run_start = block_id
                run_len = 1
            if run_len == count:
                assert run_start is not None
                return Extent(run_start, count)
            prev = block_id
        return None

    def free(self, extent: Extent) -> None:
        for block_id in extent.blocks():
            if block_id not in self._allocated:
                raise StorageError(f"double free of block {block_id}")
            self._allocated.discard(block_id)
            self._blocks.pop(block_id, None)
            self._free.append(block_id)

    @property
    def allocated_blocks(self) -> int:
        return len(self._allocated)

    # -- I/O ------------------------------------------------------------------

    def write_block(self, block_id: int, data: bytes) -> None:
        if block_id not in self._allocated:
            raise StorageError(f"write to unallocated block {block_id}")
        if len(data) > self.block_size:
            raise StorageError(
                f"data ({len(data)} B) exceeds block size ({self.block_size} B)"
            )
        self._blocks[block_id] = bytes(data)
        self.metrics.counter("blk.writes").inc()
        self.metrics.counter("blk.bytes_written").inc(len(data))

    def read_block(self, block_id: int) -> bytes:
        if block_id not in self._allocated:
            raise StorageError(f"read of unallocated block {block_id}")
        self.metrics.counter("blk.reads").inc()
        return self._blocks.get(block_id, b"")

    def write_extent(self, extent: Extent, data: bytes) -> None:
        """Stripe ``data`` across the extent's blocks."""
        if len(data) > extent.count * self.block_size:
            raise StorageError("data exceeds extent capacity")
        for offset, block_id in enumerate(extent.blocks()):
            chunk = data[offset * self.block_size : (offset + 1) * self.block_size]
            self.write_block(block_id, chunk)

    def read_extent(self, extent: Extent) -> bytes:
        return b"".join(self.read_block(block_id) for block_id in extent.blocks())

"""LSM-style key-value store (paper Sec. IV-E2, the "KV store" tier).

An update-optimized store in the log-structured-merge mold: writes go to a
WAL and an in-memory memtable; when the memtable exceeds its budget it is
flushed to an immutable sorted run (SSTable); reads consult the memtable and
then runs newest-first; ranged scans merge all runs.  A tiered compactor
bounds the run count.  Deletes are tombstones.

This is the storage tier the disaggregated architecture (Fig. 7) mounts for
hot structured data; the experiments that use it care about its update-heavy
performance profile, which the LSM design provides.
"""

from __future__ import annotations

import json
from bisect import bisect_left, insort
from typing import TYPE_CHECKING, Iterator, NamedTuple

from ..core.errors import ConfigurationError, FaultInjectedError, KeyNotFoundError
from ..core.metrics import MetricsRegistry
from ..obs.tracing import NoopTracer, Tracer
from .wal import WriteAheadLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience.faults import FaultInjector

_TOMBSTONE = object()


class _Versioned(NamedTuple):
    """A value with its global write sequence number.

    A NamedTuple rather than a (frozen) dataclass: versioned cells are
    minted once per mutation on the hottest write path, and tuple
    construction is several times cheaper than a frozen dataclass's
    ``object.__setattr__`` init.
    """

    seqno: int
    value: object  # _TOMBSTONE marks deletion


class MemTable:
    """Sorted in-memory write buffer."""

    def __init__(self) -> None:
        self._keys: list[str] = []
        self._data: dict[str, _Versioned] = {}
        self.approx_bytes = 0

    def put(self, key: str, versioned: _Versioned) -> None:
        if key not in self._data:
            insort(self._keys, key)
            self.approx_bytes += len(key)
        self._data[key] = versioned
        if versioned.value is not _TOMBSTONE:
            self.approx_bytes += _value_size(versioned.value)

    def mput(self, entries: list[tuple[str, _Versioned]], value_bytes: int) -> None:
        """Bulk insert: one sorted merge instead of N ``insort`` calls.

        Observably identical to putting each entry in order (later
        duplicates win); ``value_bytes`` is the caller's size estimate
        for the whole batch, standing in for per-value sizing.
        """
        fresh: list[str] = []
        for key, versioned in entries:
            if key not in self._data:
                fresh.append(key)
            self._data[key] = versioned
        if fresh:
            self.approx_bytes += sum(len(key) for key in fresh)
            fresh.sort()
            self._keys = sorted(self._keys + fresh) if self._keys else fresh
        self.approx_bytes += value_bytes

    def get(self, key: str) -> _Versioned | None:
        return self._data.get(key)

    def __len__(self) -> int:
        return len(self._data)

    def scan(self, lo: str, hi: str) -> Iterator[tuple[str, _Versioned]]:
        start = bisect_left(self._keys, lo)
        for idx in range(start, len(self._keys)):
            key = self._keys[idx]
            if key > hi:
                return
            yield key, self._data[key]

    def items(self) -> Iterator[tuple[str, _Versioned]]:
        for key in self._keys:
            yield key, self._data[key]


class SSTable:
    """An immutable sorted run."""

    def __init__(self, entries: list[tuple[str, _Versioned]]) -> None:
        self._keys = [k for k, _ in entries]
        self._values = [v for _, v in entries]
        self.min_key = self._keys[0] if self._keys else ""
        self.max_key = self._keys[-1] if self._keys else ""

    def __len__(self) -> int:
        return len(self._keys)

    def get(self, key: str) -> _Versioned | None:
        if not self._keys or not (self.min_key <= key <= self.max_key):
            return None
        idx = bisect_left(self._keys, key)
        if idx < len(self._keys) and self._keys[idx] == key:
            return self._values[idx]
        return None

    def scan(self, lo: str, hi: str) -> Iterator[tuple[str, _Versioned]]:
        idx = bisect_left(self._keys, lo)
        while idx < len(self._keys) and self._keys[idx] <= hi:
            yield self._keys[idx], self._values[idx]
            idx += 1

    def items(self) -> Iterator[tuple[str, _Versioned]]:
        yield from zip(self._keys, self._values)


def _value_size(value: object) -> int:
    try:
        return len(json.dumps(value))
    except (TypeError, ValueError):
        return len(repr(value))


class KVStore:
    """The public LSM store.

    Parameters
    ----------
    memtable_budget_bytes:
        Flush threshold for the memtable.
    max_runs:
        Compact (merge all runs) once the run count exceeds this.
    wal:
        Optional external WAL; a fresh one is created when omitted.
    faults:
        Optional :class:`~repro.resilience.faults.FaultInjector`; consulted
        at the ``kv.get`` / ``kv.put`` sites (an injected ``crash`` raises
        :class:`FaultInjectedError` before any state changes).  A WAL
        created internally shares the injector (site ``wal.append``).
    """

    def __init__(
        self,
        memtable_budget_bytes: int = 64 * 1024,
        max_runs: int = 6,
        wal: WriteAheadLog | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        faults: "FaultInjector | None" = None,
    ) -> None:
        if memtable_budget_bytes <= 0 or max_runs < 1:
            raise ConfigurationError("invalid KVStore configuration")
        self.memtable_budget_bytes = memtable_budget_bytes
        self.max_runs = max_runs
        self.wal = wal if wal is not None else WriteAheadLog(faults=faults)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NoopTracer()
        self.faults = faults
        self._memtable = MemTable()
        self._runs: list[SSTable] = []  # newest first
        self._seqno = 0

    def _maybe_fault(self, site: str, key: str) -> None:
        if self.faults is not None:
            decision = self.faults.decide(site, target=key, kinds=("crash", "delay"))
            if decision.kind == "crash":
                raise FaultInjectedError(f"injected crash at {site}")
            if decision.kind == "delay":
                self.faults.clock.advance(decision.delay_s)

    # -- mutations ----------------------------------------------------------

    def put(self, key: str, value: object) -> None:
        """Insert or overwrite ``key``. Value must be JSON-serializable."""
        self._maybe_fault("kv.put", key)
        self._log("put", key, value)
        self._apply_put(key, value)

    def mput(self, items: "list[tuple[str, object]]") -> None:
        """Group-committed bulk insert: one WAL entry, one memtable merge.

        Equivalent to ``for k, v in items: put(k, v)`` for every read
        (get/scan): the same values win under the same ordering and
        seqnos still increase in item order.  The group amortizes the
        bookkeeping — one WAL append (group commit) instead of N, one
        sorted memtable merge instead of N ``insort`` calls, and one
        flush-threshold check, so run boundaries may differ from the
        per-record path, which reads cannot observe.  Fault decisions
        stay per key (site ``kv.put``) so injector streams match the
        per-record path exactly.
        """
        items = list(items)
        if not items:
            return
        if self.faults is not None:
            for key, _ in items:
                self._maybe_fault("kv.put", key)
        payload = json.dumps(
            {"op": "mput", "items": [list(item) for item in items]},
            separators=(",", ":"),
        ).encode("utf-8")
        self.wal.append(payload)
        base = self._seqno
        self._seqno += len(items)
        entries = [
            (key, _Versioned(base + offset, value))
            for offset, (key, value) in enumerate(items, start=1)
        ]
        self._memtable.mput(entries, value_bytes=len(payload))
        self.metrics.counter("kv.puts").inc(len(items))
        self._maybe_flush()

    def delete(self, key: str) -> None:
        """Delete ``key`` (idempotent — deleting a missing key is a no-op)."""
        self._log("del", key, None)
        self._apply_delete(key)

    def _log(self, op: str, key: str, value: object) -> None:
        payload = json.dumps({"op": op, "k": key, "v": value}).encode("utf-8")
        self.wal.append(payload)

    def _apply_put(self, key: str, value: object) -> None:
        self._seqno += 1
        self._memtable.put(key, _Versioned(self._seqno, value))
        self.metrics.counter("kv.puts").inc()
        self._maybe_flush()

    def _apply_delete(self, key: str) -> None:
        self._seqno += 1
        self._memtable.put(key, _Versioned(self._seqno, _TOMBSTONE))
        self.metrics.counter("kv.deletes").inc()
        self._maybe_flush()

    # -- reads --------------------------------------------------------------

    def get(self, key: str) -> object:
        """Return the live value for ``key`` or raise KeyNotFoundError."""
        self._maybe_fault("kv.get", key)
        self.metrics.counter("kv.gets").inc()
        with self.tracer.span("kv.get"):
            found = self._memtable.get(key)
            if found is None:
                for run in self._runs:
                    found = run.get(key)
                    if found is not None:
                        break
            if found is None or found.value is _TOMBSTONE:
                raise KeyNotFoundError(key)
            return found.value

    def get_or(self, key: str, default: object = None) -> object:
        try:
            return self.get(key)
        except KeyNotFoundError:
            return default

    def __contains__(self, key: str) -> bool:
        return self.get_or(key, _TOMBSTONE) is not _TOMBSTONE

    def scan(self, lo: str, hi: str) -> Iterator[tuple[str, object]]:
        """Yield live (key, value) pairs with lo <= key <= hi, ascending."""
        self.metrics.counter("kv.scans").inc()
        best: dict[str, _Versioned] = {}
        for source in [self._memtable, *self._runs]:
            for key, versioned in source.scan(lo, hi):
                current = best.get(key)
                if current is None or versioned.seqno > current.seqno:
                    best[key] = versioned
        for key in sorted(best):
            if best[key].value is not _TOMBSTONE:
                yield key, best[key].value

    def keys(self) -> list[str]:
        return [k for k, _ in self.scan("", "￿")]

    def __len__(self) -> int:
        return len(self.keys())

    # -- maintenance ----------------------------------------------------------

    @property
    def run_count(self) -> int:
        return len(self._runs)

    def _maybe_flush(self) -> None:
        if self._memtable.approx_bytes >= self.memtable_budget_bytes:
            self.flush()

    def flush(self) -> None:
        """Freeze the memtable into a new run."""
        if len(self._memtable) == 0:
            return
        with self.tracer.span("kv.flush", entries=len(self._memtable)):
            self._runs.insert(0, SSTable(list(self._memtable.items())))
            self._memtable = MemTable()
            self.metrics.counter("kv.flushes").inc()
            if len(self._runs) > self.max_runs:
                self.compact()

    def compact(self) -> None:
        """Merge all runs into one, discarding shadowed versions/tombstones."""
        with self.tracer.span("kv.compact", runs=len(self._runs)):
            best: dict[str, _Versioned] = {}
            for run in self._runs:
                for key, versioned in run.items():
                    current = best.get(key)
                    if current is None or versioned.seqno > current.seqno:
                        best[key] = versioned
            live = [
                (key, versioned)
                for key, versioned in sorted(best.items())
                if versioned.value is not _TOMBSTONE
            ]
            self._runs = [SSTable(live)] if live else []
            self.metrics.counter("kv.compactions").inc()

    # -- checkpointing ----------------------------------------------------

    def snapshot_state(self) -> dict:
        """Full live state as a JSON-serializable checkpoint payload.

        Tombstones materialize as absence (a checkpoint needs no delete
        history), and the write seqno rides along so recovery continues
        version numbering instead of colliding with the WAL suffix.
        """
        return {
            "seqno": self._seqno,
            "items": [[key, value] for key, value in self.scan("", "￿")],
        }

    def load_snapshot(self, state: dict) -> int:
        """Install a checkpoint snapshot without WAL logging; returns the
        number of entries loaded.

        Recovery path: call on a fresh store *before* replaying the WAL
        suffix, so reads land byte-identical to a full-history replay.
        """
        entries = []
        for key, value in state["items"]:
            self._seqno += 1
            entries.append((key, _Versioned(self._seqno, value)))
        if entries:
            self._memtable.mput(
                entries,
                value_bytes=sum(_value_size(v.value) for _, v in entries),
            )
            self._maybe_flush()
        self._seqno = max(self._seqno, int(state.get("seqno", 0)))
        self.metrics.counter("kv.snapshot_loads").inc()
        return len(entries)

    # -- recovery ---------------------------------------------------------

    def recover(self) -> int:
        """Rebuild state by replaying the WAL; return entries applied.

        Used after simulated crashes: construct a fresh ``KVStore`` sharing
        the old WAL, call ``recover()``, and the committed prefix returns.
        """
        applied = 0
        for entry in self.wal.replay():
            record = json.loads(entry.payload.decode("utf-8"))
            if record["op"] == "put":
                self._apply_put(record["k"], record["v"])
                applied += 1
            elif record["op"] == "mput":
                for key, value in record["items"]:
                    self._apply_put(key, value)
                    applied += 1
            else:
                self._apply_delete(record["k"])
                applied += 1
        return applied

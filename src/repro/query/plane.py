"""The modality-agnostic query plane: one dispatch path for every modality.

Every query modality used to be a hand-rolled vertical — ``scan_prefix``,
``query_spatial``, and continuous queries each re-implemented dispatch,
deadline handling, partial results, and merge logic in
:class:`~repro.platform.platform.MetaversePlatform`,
:class:`~repro.cluster.cluster.PlatformCluster`, and
:class:`~repro.geo.deployment.GeoDeployment`.  This module factors the
modality out of the deployment shape:

* a :class:`QueryRequest` names a modality and carries its parameters;
* the modality (a :class:`QueryModality` in a :class:`ModalityRegistry`)
  turns the request into a :class:`QueryPlan` (:meth:`~QueryModality.plan`
  + the optional :meth:`~QueryModality.rewrite` planner hook, which feeds
  :func:`repro.query.optimizer.order_predicates`), runs the plan against
  one shard (:meth:`~QueryModality.execute`), and combines per-shard
  partial results order-deterministically (:meth:`~QueryModality.merge`);
* the deployment layers own *only* dispatch: the platform is a
  single-shard :class:`QueryExecutor`, the cluster scatter-gathers
  ``execute`` across its ring under per-shard deadlines, and the geo
  deployment fans out per consistency mode.  None of them know which
  modalities exist — registering a new modality (see
  :mod:`repro.semantic`) requires zero edits to any dispatch code.

``merge`` receives the per-shard partial lists in deterministic ring
order and must itself be order-deterministic (every built-in sorts by an
explicit total order), so a query answers identically regardless of how
the corpus is sharded — the property E31 pins for the semantic modality
and the conformance suite pins for all of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..api.dataplane import GatherResult
from ..core.errors import ConfigurationError
from .optimizer import order_predicates


@dataclass(frozen=True)
class QueryRequest:
    """One query as the caller states it: a modality name + parameters.

    ``params`` is treated as immutable; planning copies it into the
    :class:`QueryPlan` rather than mutating it in place.
    """

    modality: str
    params: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class QueryPlan:
    """A planned (and possibly rewritten) query, ready to execute.

    Plans are shard-agnostic: the same plan object is handed to every
    shard's ``execute``, so per-query work (parameter validation, filter
    ordering, text embedding) happens exactly once at planning time.
    """

    modality: str
    params: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class PlanFilter:
    """A residual predicate pushed down to shard-local execution.

    Mirrors :class:`repro.query.operators.Filter`'s cost model (abstract
    per-item ``cost``, expected pass fraction ``selectivity``) without the
    operator-tree ``child``, so :func:`repro.query.optimizer.order_predicates`
    can rank it directly.  ``predicate`` takes one result item (e.g. a
    ``(key, value)`` pair) and keeps it on True.
    """

    predicate: Callable[[Any], bool]
    cost: float = 1.0
    selectivity: float = 0.5
    label: str = ""


class QueryModality:
    """One query modality: shard-local execution + deterministic merge.

    Subclasses set :attr:`name` and implement :meth:`execute` /
    :meth:`merge`; :meth:`plan`, :meth:`rewrite`, and :meth:`item_key`
    have useful defaults.  ``item_key`` is what keeps ownership filtering
    modality-agnostic: the cluster restricts shared-storage scans to each
    shard's ring slice, and the geo layer restricts each region to its
    home keyspace, both by calling ``item_key`` instead of assuming the
    item shape.
    """

    #: Registry key; subclasses override.
    name = "abstract"

    def plan(self, request: QueryRequest) -> QueryPlan:
        """Validate the request and freeze it into a plan."""
        return QueryPlan(request.modality, dict(request.params))

    def rewrite(self, plan: QueryPlan) -> QueryPlan:
        """Planner hook, applied once per query before any dispatch.

        The default rewrite rank-orders any pushed-down ``filters``
        (:class:`PlanFilter` list) with the Hellerstein ordering from
        :func:`repro.query.optimizer.order_predicates`, so cheap/selective
        predicates run first on every shard.
        """
        filters = plan.params.get("filters")
        if filters:
            params = dict(plan.params)
            params["filters"] = tuple(order_predicates(list(filters)))
            return QueryPlan(plan.modality, params)
        return plan

    def execute(self, shard, plan: QueryPlan) -> list:
        """Run the plan against one shard; returns that shard's items."""
        raise NotImplementedError

    def merge(self, partials: list[list], plan: QueryPlan) -> list:
        """Combine per-shard partials (given in deterministic ring order)
        into the final item list.  Must be order-deterministic."""
        raise NotImplementedError

    def item_key(self, item) -> str:
        """The routing key of one result item (default: ``item[0]``)."""
        return item[0]

    @staticmethod
    def apply_filters(plan: QueryPlan, items: list) -> list:
        """Apply the plan's (already rank-ordered) residual filters."""
        filters = plan.params.get("filters")
        if not filters:
            return items
        for filt in filters:
            items = [item for item in items if filt.predicate(item)]
        return items


def _sorted_by_key(partials: list[list]) -> list:
    items = [item for partial in partials for item in partial]
    items.sort(key=lambda kv: kv[0])
    return items


class PrefixScanModality(QueryModality):
    """Range query: every ``(key, stored_value)`` under a key prefix."""

    name = "prefix"

    def plan(self, request: QueryRequest) -> QueryPlan:
        params = dict(request.params)
        if not isinstance(params.get("prefix"), str):
            raise ConfigurationError("prefix queries need a string 'prefix'")
        return QueryPlan(request.modality, params)

    def execute(self, shard, plan: QueryPlan) -> list:
        prefix = plan.params["prefix"]
        return self.apply_filters(plan, shard.scan(prefix, prefix + "￿"))

    def merge(self, partials: list[list], plan: QueryPlan) -> list:
        return _sorted_by_key(partials)


class SpatialModality(QueryModality):
    """Entities whose payload position (``x``/``y``) lies in a ``BBox``."""

    name = "spatial"

    def plan(self, request: QueryRequest) -> QueryPlan:
        params = dict(request.params)
        region = params.get("region")
        if region is None or not hasattr(region, "x_min"):
            raise ConfigurationError("spatial queries need a BBox 'region'")
        return QueryPlan(request.modality, params)

    def execute(self, shard, plan: QueryPlan) -> list:
        return self.apply_filters(plan, shard.spatial_items(plan.params["region"]))

    def merge(self, partials: list[list], plan: QueryPlan) -> list:
        return _sorted_by_key(partials)


class ModalityRegistry:
    """Name → :class:`QueryModality` lookup shared by every executor."""

    def __init__(self) -> None:
        self._modalities: dict[str, QueryModality] = {}

    def register(
        self, modality: QueryModality, *, replace: bool = False
    ) -> QueryModality:
        if not replace and modality.name in self._modalities:
            raise ConfigurationError(
                f"query modality {modality.name!r} already registered"
            )
        self._modalities[modality.name] = modality
        return modality

    def get(self, name: str) -> QueryModality:
        try:
            return self._modalities[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown query modality {name!r}; registered: {self.names()}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._modalities)


#: Process-wide default registry.  Built-in modalities register here at
#: import; add-on packages (``repro.semantic``) register theirs the same
#: way, which is the *only* step a new modality needs — no dispatch edits.
DEFAULT_REGISTRY = ModalityRegistry()


def register_modality(
    modality: QueryModality,
    *,
    registry: ModalityRegistry | None = None,
    replace: bool = False,
) -> QueryModality:
    """Register ``modality`` (default registry unless one is given)."""
    return (registry or DEFAULT_REGISTRY).register(modality, replace=replace)


class QueryExecutor:
    """Binds a modality registry to one deployment shape's dispatch.

    :meth:`resolve` is the shared planning front half (registry lookup →
    ``plan`` → ``rewrite``); :meth:`run_single` is the whole back half
    for a single-shard deployment.  Multi-shard deployments call
    :meth:`resolve` and scatter ``modality.execute`` themselves.
    """

    def __init__(self, registry: ModalityRegistry | None = None) -> None:
        self.registry = registry or DEFAULT_REGISTRY

    def resolve(self, request: QueryRequest) -> tuple[QueryModality, QueryPlan]:
        modality = self.registry.get(request.modality)
        return modality, modality.rewrite(modality.plan(request))

    def run_single(self, shard, request: QueryRequest) -> GatherResult:
        modality, plan = self.resolve(request)
        items = modality.merge([modality.execute(shard, plan)], plan)
        return GatherResult(items=items)


def prefix_query(prefix: str, filters: list[PlanFilter] | None = None) -> QueryRequest:
    """A :class:`QueryRequest` for the built-in prefix-scan modality."""
    params: dict[str, Any] = {"prefix": prefix}
    if filters:
        params["filters"] = tuple(filters)
    return QueryRequest("prefix", params)


def spatial_query(region, filters: list[PlanFilter] | None = None) -> QueryRequest:
    """A :class:`QueryRequest` for the built-in spatial modality."""
    params: dict[str, Any] = {"region": region}
    if filters:
        params["filters"] = tuple(filters)
    return QueryRequest("spatial", params)


register_modality(PrefixScanModality())
register_modality(SpatialModality())

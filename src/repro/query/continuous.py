"""Moving queries over moving objects (paper Sec. IV-G; [29], [30]).

"We are dealing not only with moving objects ... we are also dealing with
moving queries (a user moving in the virtual environment may need to track
all users within his/her views)."  This module provides continuous range
queries whose *anchor itself moves*, evaluated under three strategies:

* :class:`RescanStrategy` — baseline: test every object every tick.
* :class:`GridStrategy` — maintain objects in a :class:`GridIndex` and
  probe only overlapping cells per tick.
* :class:`BxStrategy` — maintain motion states in a :class:`BxTree` and
  answer with predicted positions, so objects moving predictably need no
  per-tick index updates at all (the motion-adaptive idea of [30]).

All strategies expose the same interface, so experiment E5 can compare
their per-tick cost while asserting identical answers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable, Protocol

from ..core.errors import ConfigurationError
from ..spatial.bxtree import BxTree
from ..spatial.geometry import BBox, Point, Velocity, predicted_position
from ..spatial.grid import GridIndex


@dataclass
class MovingObject:
    """Ground-truth motion state of one tracked object."""

    object_id: Hashable
    position: Point
    velocity: Velocity

    def advance(self, dt: float) -> None:
        self.position = predicted_position(self.position, self.velocity, dt)


@dataclass
class MovingRangeQuery:
    """A square range query attached to a moving observer."""

    query_id: str
    anchor: Point
    velocity: Velocity
    half_extent: float

    def __post_init__(self) -> None:
        if self.half_extent <= 0:
            raise ConfigurationError("half_extent must be positive")

    def advance(self, dt: float) -> None:
        self.anchor = predicted_position(self.anchor, self.velocity, dt)

    def region(self) -> BBox:
        return BBox.around(self.anchor, self.half_extent)


@dataclass
class MovingKnnQuery:
    """Continuously track the k nearest objects to a moving observer.

    The paper's "a user moving in the virtual environment may need to track
    all users within his/her views" in its k-nearest form.
    """

    query_id: str
    anchor: Point
    velocity: Velocity
    k: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError("k must be >= 1")

    def advance(self, dt: float) -> None:
        self.anchor = predicted_position(self.anchor, self.velocity, dt)


@dataclass
class QueryResult:
    query_id: str
    matches: frozenset
    cost: int  # objects examined to produce this answer
    ranked: tuple = ()  # kNN answers preserve order here


class EvaluationStrategy(Protocol):
    """Pluggable evaluation backend for moving range queries."""

    def ingest(self, obj: MovingObject, now: float) -> None: ...

    def evaluate(self, query: MovingRangeQuery, now: float) -> QueryResult: ...

    def tick(self, objects: list[MovingObject], now: float) -> None: ...


class RescanStrategy:
    """Baseline: brute-force scan of every object per query per tick."""

    def __init__(self) -> None:
        self._objects: dict[Hashable, MovingObject] = {}

    def ingest(self, obj: MovingObject, now: float) -> None:
        self._objects[obj.object_id] = obj

    def tick(self, objects: list[MovingObject], now: float) -> None:
        for obj in objects:
            self._objects[obj.object_id] = obj

    def evaluate(self, query: MovingRangeQuery, now: float) -> QueryResult:
        region = query.region()
        matches = frozenset(
            obj.object_id
            for obj in self._objects.values()
            if region.contains_point(obj.position)
        )
        return QueryResult(query.query_id, matches, cost=len(self._objects))

    def evaluate_knn(self, query: MovingKnnQuery, now: float) -> QueryResult:
        ranked = sorted(
            self._objects.values(),
            key=lambda obj: obj.position.distance_to(query.anchor),
        )[: query.k]
        ids = tuple(obj.object_id for obj in ranked)
        return QueryResult(
            query.query_id, frozenset(ids), cost=len(self._objects), ranked=ids
        )


class GridStrategy:
    """Maintain positions in a grid; probe only overlapping cells."""

    def __init__(self, cell_size: float = 50.0) -> None:
        self._grid = GridIndex(cell_size=cell_size)
        self.update_cost = 0

    def ingest(self, obj: MovingObject, now: float) -> None:
        self._grid.insert(obj.object_id, obj.position)
        self.update_cost += 1

    def tick(self, objects: list[MovingObject], now: float) -> None:
        for obj in objects:
            self._grid.insert(obj.object_id, obj.position)
            self.update_cost += 1

    def evaluate(self, query: MovingRangeQuery, now: float) -> QueryResult:
        region = query.region()
        # Cost: objects in overlapping cells (candidates examined).
        candidates = 0
        matches = []
        cell = self._grid.cell_size
        x0 = math.floor(region.x_min / cell)
        x1 = math.floor(region.x_max / cell)
        y0 = math.floor(region.y_min / cell)
        y1 = math.floor(region.y_max / cell)
        for cx in range(x0, x1 + 1):
            for cy in range(y0, y1 + 1):
                for object_id in self._grid.objects_in_cell((cx, cy)):
                    candidates += 1
                    if region.contains_point(self._grid.position(object_id)):
                        matches.append(object_id)
        return QueryResult(query.query_id, frozenset(matches), cost=candidates)

    def evaluate_knn(self, query: MovingKnnQuery, now: float) -> QueryResult:
        ids = tuple(self._grid.nearest(query.anchor, k=query.k))
        return QueryResult(
            query.query_id, frozenset(ids), cost=len(ids), ranked=ids
        )


class BxStrategy:
    """Index motion states; evaluate with dead reckoning.

    Objects are re-ingested only when their *velocity* changes (the caller
    decides), so steadily moving objects cost nothing per tick — the
    motion-adaptive advantage.
    """

    def __init__(self, domain: BBox, max_speed: float, cell_bits: int = 6) -> None:
        self._tree = BxTree(
            domain=domain,
            resolution_bits=cell_bits,
            phase_interval=60.0,
            max_speed=max_speed,
        )
        self.update_cost = 0

    def ingest(self, obj: MovingObject, now: float) -> None:
        self._tree.update(obj.object_id, obj.position, obj.velocity, now)
        self.update_cost += 1

    def tick(self, objects: list[MovingObject], now: float) -> None:
        """No per-tick work: dead reckoning covers steady motion."""

    def evaluate(self, query: MovingRangeQuery, now: float) -> QueryResult:
        matches = frozenset(self._tree.query_range(query.region(), t=now))
        # Cost proxy: matches plus the enlarged-window overshoot is internal;
        # report the number of indexed objects probed via the tree size cap.
        return QueryResult(query.query_id, matches, cost=len(matches))


@dataclass
class ContinuousQueryEngine:
    """Drives moving objects and moving queries against a strategy."""

    strategy: RescanStrategy | GridStrategy | BxStrategy
    objects: dict[Hashable, MovingObject] = field(default_factory=dict)
    queries: dict[str, MovingRangeQuery] = field(default_factory=dict)
    knn_queries: dict[str, MovingKnnQuery] = field(default_factory=dict)
    now: float = 0.0
    total_eval_cost: int = 0

    def add_object(self, obj: MovingObject) -> None:
        self.objects[obj.object_id] = obj
        self.strategy.ingest(obj, self.now)

    def add_query(self, query: MovingRangeQuery) -> None:
        self.queries[query.query_id] = query

    def add_knn_query(self, query: MovingKnnQuery) -> None:
        if not hasattr(self.strategy, "evaluate_knn"):
            raise ConfigurationError(
                f"{type(self.strategy).__name__} does not support kNN queries"
            )
        self.knn_queries[query.query_id] = query

    def change_velocity(self, object_id: Hashable, velocity: Velocity) -> None:
        obj = self.objects[object_id]
        obj.velocity = velocity
        self.strategy.ingest(obj, self.now)

    def tick(self, dt: float) -> dict[str, QueryResult]:
        """Advance time, refresh the strategy, evaluate every query."""
        self.now += dt
        for obj in self.objects.values():
            obj.advance(dt)
        for query in self.queries.values():
            query.advance(dt)
        for knn_query in self.knn_queries.values():
            knn_query.advance(dt)
        self.strategy.tick(list(self.objects.values()), self.now)
        results = {}
        for query in self.queries.values():
            result = self.strategy.evaluate(query, self.now)
            self.total_eval_cost += result.cost
            results[query.query_id] = result
        for knn_query in self.knn_queries.values():
            result = self.strategy.evaluate_knn(knn_query, self.now)  # type: ignore[union-attr]
            self.total_eval_cost += result.cost
            results[knn_query.query_id] = result
        return results

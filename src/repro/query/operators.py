"""Physical query operators (paper Sec. IV-G).

Operators are composable record-stream transformers: each consumes an
iterable of :class:`~repro.core.records.DataRecord` and yields records,
counting the rows it processed so plans can be costed after the fact.  The
metaverse-specific operators the paper calls for are here:

* :class:`Interpolate` — "sensor data may have to be interpolated ... for
  them to be consumed by the virtual space";
* :class:`SpaceFilter` / :class:`SpaceMerge` — space-aware processing over
  tagged data (Sec. IV-F);
* :class:`ApplyUdf` — user-defined (possibly expensive) predicates and
  transforms, the optimizer's placement target ([39]).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Iterable, Iterator

from ..core.errors import QueryError
from ..core.records import DataRecord, Space
from ..obs.profiling import timed


class Operator:
    """Base operator: iterate to execute; ``rows_in``/``rows_out`` count flow."""

    def __init__(self) -> None:
        self.rows_in = 0
        self.rows_out = 0

    def __iter__(self) -> Iterator[DataRecord]:
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__


class Scan(Operator):
    """Source operator over a record collection."""

    def __init__(self, records: Iterable[DataRecord]) -> None:
        super().__init__()
        self._records = records

    def __iter__(self) -> Iterator[DataRecord]:
        for record in self._records:
            self.rows_out += 1
            yield record


class Filter(Operator):
    """Keep records satisfying ``predicate``.

    ``cost`` is the abstract per-row evaluation cost and ``selectivity`` the
    expected pass fraction; both feed the optimizer's expensive-predicate
    ordering.
    """

    def __init__(
        self,
        child: Operator,
        predicate: Callable[[DataRecord], bool],
        cost: float = 1.0,
        selectivity: float = 0.5,
        label: str = "",
    ) -> None:
        super().__init__()
        if cost <= 0 or not 0.0 <= selectivity <= 1.0:
            raise QueryError("invalid filter cost/selectivity")
        self.child = child
        self.predicate = predicate
        self.cost = cost
        self.selectivity = selectivity
        self.label = label or "filter"

    def __iter__(self) -> Iterator[DataRecord]:
        for record in self.child:
            self.rows_in += 1
            if self.predicate(record):
                self.rows_out += 1
                yield record


class Project(Operator):
    """Keep only the named payload fields."""

    def __init__(self, child: Operator, fields: list[str]) -> None:
        super().__init__()
        self.child = child
        self.fields = list(fields)

    def __iter__(self) -> Iterator[DataRecord]:
        for record in self.child:
            self.rows_in += 1
            self.rows_out += 1
            record.payload = {
                f: record.payload[f] for f in self.fields if f in record.payload
            }
            yield record


class ApplyUdf(Operator):
    """Apply a user-defined transform to each record's payload."""

    def __init__(
        self,
        child: Operator,
        udf: Callable[[dict[str, Any]], dict[str, Any]],
        cost: float = 10.0,
        label: str = "udf",
    ) -> None:
        super().__init__()
        self.child = child
        self.udf = udf
        self.cost = cost
        self.label = label

    def __iter__(self) -> Iterator[DataRecord]:
        for record in self.child:
            self.rows_in += 1
            record.payload = self.udf(record.payload)
            self.rows_out += 1
            yield record


class SpaceFilter(Operator):
    """Keep records tagged with the given space (Sec. IV-F tagging)."""

    def __init__(self, child: Operator, space: Space) -> None:
        super().__init__()
        self.child = child
        self.space = space

    def __iter__(self) -> Iterator[DataRecord]:
        for record in self.child:
            self.rows_in += 1
            if record.space is self.space:
                self.rows_out += 1
                yield record


class SpaceMerge(Operator):
    """Interleave two per-space streams into a unified, time-ordered view."""

    def __init__(self, physical: Operator, virtual: Operator) -> None:
        super().__init__()
        self.physical = physical
        self.virtual = virtual

    def __iter__(self) -> Iterator[DataRecord]:
        merged = sorted(
            list(self.physical) + list(self.virtual), key=lambda r: r.timestamp
        )
        for record in merged:
            self.rows_in += 1
            self.rows_out += 1
            yield record


class Interpolate(Operator):
    """Resample a numeric sensor field onto a regular grid per key.

    Consumes the child fully (it is a pipeline breaker), groups by record
    key, linearly interpolates ``field`` at multiples of ``interval``
    between each key's first and last sample, and emits one record per grid
    point.  This is the paper's "sensor data may have to be interpolated"
    operator: the virtual space wants regularly spaced values even when the
    physical sensors report irregularly.
    """

    def __init__(self, child: Operator, field: str, interval: float) -> None:
        super().__init__()
        if interval <= 0:
            raise QueryError("interval must be positive")
        self.child = child
        self.field = field
        self.interval = interval

    def __iter__(self) -> Iterator[DataRecord]:
        by_key: dict[str, list[DataRecord]] = defaultdict(list)
        for record in self.child:
            self.rows_in += 1
            if self.field in record.payload:
                by_key[record.key].append(record)
        for key, records in by_key.items():
            records.sort(key=lambda r: r.timestamp)
            times = [r.timestamp for r in records]
            values = [float(r.payload[self.field]) for r in records]
            t = times[0]
            idx = 0
            while t <= times[-1] + 1e-9:
                while idx + 1 < len(times) and times[idx + 1] < t:
                    idx += 1
                value = self._interp(times, values, idx, t)
                template = records[min(idx, len(records) - 1)]
                self.rows_out += 1
                yield DataRecord(
                    key=key,
                    payload={self.field: value},
                    space=template.space,
                    timestamp=t,
                    kind=template.kind,
                    source="interpolate",
                )
                t += self.interval

    @staticmethod
    def _interp(times: list[float], values: list[float], idx: int, t: float) -> float:
        if idx + 1 >= len(times) or t <= times[idx]:
            return values[idx]
        t0, t1 = times[idx], times[idx + 1]
        if t >= t1:
            return values[idx + 1]
        frac = (t - t0) / (t1 - t0)
        return values[idx] + frac * (values[idx + 1] - values[idx])


class HashJoin(Operator):
    """Equi-join two record streams on payload fields.

    Output records merge both payloads (right-side fields prefixed when they
    collide) and keep the left record's space/timestamp.
    """

    def __init__(
        self, left: Operator, right: Operator, left_field: str, right_field: str
    ) -> None:
        super().__init__()
        self.left = left
        self.right = right
        self.left_field = left_field
        self.right_field = right_field

    def __iter__(self) -> Iterator[DataRecord]:
        table: dict[Any, list[DataRecord]] = defaultdict(list)
        for record in self.right:
            self.rows_in += 1
            table[record.payload.get(self.right_field)].append(record)
        for record in self.left:
            self.rows_in += 1
            for match in table.get(record.payload.get(self.left_field), []):
                payload = dict(record.payload)
                for field, value in match.payload.items():
                    if field in payload and field != self.left_field:
                        payload[f"right_{field}"] = value
                    else:
                        payload.setdefault(field, value)
                self.rows_out += 1
                yield DataRecord(
                    key=record.key,
                    payload=payload,
                    space=record.space,
                    timestamp=record.timestamp,
                    kind=record.kind,
                    source="join",
                )


class Aggregate(Operator):
    """Group-by aggregation; a pipeline breaker emitting one record per group.

    ``aggregations`` maps output-field -> (input-field, fn) where fn is one
    of ``sum``/``count``/``avg``/``min``/``max``.
    """

    _FNS = ("sum", "count", "avg", "min", "max")

    def __init__(
        self,
        child: Operator,
        group_by: str | None,
        aggregations: dict[str, tuple[str, str]],
    ) -> None:
        super().__init__()
        for _, (_, fn) in aggregations.items():
            if fn not in self._FNS:
                raise QueryError(f"unknown aggregate fn {fn!r}")
        self.child = child
        self.group_by = group_by
        self.aggregations = aggregations

    def __iter__(self) -> Iterator[DataRecord]:
        groups: dict[Any, list[DataRecord]] = defaultdict(list)
        for record in self.child:
            self.rows_in += 1
            group_key = (
                record.payload.get(self.group_by) if self.group_by else "_all"
            )
            groups[group_key].append(record)
        for group_key, records in groups.items():
            payload: dict[str, Any] = {}
            if self.group_by:
                payload[self.group_by] = group_key
            for out_field, (in_field, fn) in self.aggregations.items():
                values = [
                    float(r.payload[in_field])
                    for r in records
                    if in_field in r.payload
                ]
                payload[out_field] = self._apply(fn, values, len(records))
            self.rows_out += 1
            yield DataRecord(
                key=str(group_key),
                payload=payload,
                space=records[0].space,
                timestamp=max(r.timestamp for r in records),
                source="aggregate",
            )

    @staticmethod
    def _apply(fn: str, values: list[float], count: int) -> float:
        if fn == "count":
            return float(count)
        if not values:
            return 0.0
        if fn == "sum":
            return sum(values)
        if fn == "avg":
            return sum(values) / len(values)
        if fn == "min":
            return min(values)
        return max(values)


class Limit(Operator):
    """Yield at most ``n`` records."""

    def __init__(self, child: Operator, n: int) -> None:
        super().__init__()
        if n < 0:
            raise QueryError("limit must be >= 0")
        self.child = child
        self.n = n

    def __iter__(self) -> Iterator[DataRecord]:
        for record in self.child:
            self.rows_in += 1
            if self.rows_out >= self.n:
                return
            self.rows_out += 1
            yield record


@timed("query.execute")
def execute(operator: Operator) -> list[DataRecord]:
    """Run a plan to completion and return the result rows."""
    return list(operator)


def _children_of(operator: Operator) -> list[Operator]:
    out = []
    for attr in ("child", "left", "right", "physical", "virtual"):
        node = getattr(operator, attr, None)
        if isinstance(node, Operator):
            out.append(node)
    return out


def explain(operator: Operator, indent: int = 0) -> str:
    """An EXPLAIN-style rendering of a plan tree with row-flow stats.

    Call after execution to see per-operator input/output counts — the
    observability hook the optimizer tests and benchmarks use.
    """
    label = getattr(operator, "label", "")
    detail = f" [{label}]" if label and label != operator.name.lower() else ""
    line = (
        "  " * indent
        + f"{operator.name}{detail} (in={operator.rows_in}, out={operator.rows_out})"
    )
    lines = [line]
    for child in _children_of(operator):
        lines.append(explain(child, indent + 1))
    return "\n".join(lines)

"""Multi-query QoS scheduling for continuous queries (paper Sec. IV-C; [69]).

Hundreds of continuous queries with heterogeneous Quality-of-Service needs
share one execution budget.  Each :class:`ContinuousQuerySpec` declares a
period (how often it should run) and a relative deadline; the scheduler
picks which due queries to run each tick under a fixed per-tick execution
budget.  Policies:

* :class:`RoundRobinPolicy` — QoS-blind baseline,
* :class:`EdfPolicy` — earliest deadline first,
* :class:`QosAwarePolicy` — weighted slack: deadline urgency scaled by the
  query's QoS weight, so tight classes win under overload ([69]'s theme).

Experiment E17 measures deadline hit rates per class under each policy.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigurationError


@dataclass
class ContinuousQuerySpec:
    """One registered continuous query."""

    query_id: str
    period: float
    deadline: float  # relative to release time
    cost: float = 1.0  # execution budget units per run
    weight: float = 1.0  # QoS importance (higher = more critical)

    def __post_init__(self) -> None:
        if min(self.period, self.deadline, self.cost, self.weight) <= 0:
            raise ConfigurationError("spec parameters must be positive")


@dataclass
class _QueryState:
    spec: ContinuousQuerySpec
    next_release: float = 0.0
    pending_since: float | None = None
    runs: int = 0
    hits: int = 0
    misses: int = 0


@dataclass
class TickReport:
    executed: list[str]
    budget_used: float


class SchedulingPolicy:
    """Orders the due queries; subclasses override :meth:`priority`."""

    def priority(self, state: _QueryState, now: float) -> float:
        raise NotImplementedError

    def order(self, due: list[_QueryState], now: float) -> list[_QueryState]:
        return sorted(due, key=lambda s: self.priority(s, now))


class RoundRobinPolicy(SchedulingPolicy):
    """FIFO by release time, ignoring deadlines and weights."""

    def priority(self, state: _QueryState, now: float) -> float:
        return state.pending_since if state.pending_since is not None else now


class EdfPolicy(SchedulingPolicy):
    """Earliest absolute deadline first."""

    def priority(self, state: _QueryState, now: float) -> float:
        released = state.pending_since if state.pending_since is not None else now
        return released + state.spec.deadline


class QosAwarePolicy(SchedulingPolicy):
    """Weighted slack: slack / weight, so heavy classes preempt."""

    def priority(self, state: _QueryState, now: float) -> float:
        released = state.pending_since if state.pending_since is not None else now
        slack = (released + state.spec.deadline) - now
        return slack / state.spec.weight


class QosScheduler:
    """Releases periodic queries and executes them under a budget."""

    def __init__(self, policy: SchedulingPolicy, budget_per_tick: float) -> None:
        if budget_per_tick <= 0:
            raise ConfigurationError("budget must be positive")
        self.policy = policy
        self.budget_per_tick = budget_per_tick
        self._states: dict[str, _QueryState] = {}
        self.now = 0.0

    def register(self, spec: ContinuousQuerySpec) -> None:
        if spec.query_id in self._states:
            raise ConfigurationError(f"duplicate query id {spec.query_id!r}")
        self._states[spec.query_id] = _QueryState(spec=spec, next_release=0.0)

    def tick(self, dt: float = 1.0) -> TickReport:
        """Advance time by ``dt``, release due queries, run what fits."""
        self.now += dt
        # Release phase: a query whose release time passed becomes pending.
        for state in self._states.values():
            if state.pending_since is None and self.now >= state.next_release:
                state.pending_since = state.next_release
                state.next_release += state.spec.period
            elif state.pending_since is not None and self.now >= state.next_release:
                # Missed a whole period while still pending: count the miss
                # and re-release (skip the stale instance).
                state.misses += 1
                state.pending_since = state.next_release
                state.next_release += state.spec.period
        due = [s for s in self._states.values() if s.pending_since is not None]
        ordered = self.policy.order(due, self.now)
        executed: list[str] = []
        budget = self.budget_per_tick
        for state in ordered:
            if state.spec.cost > budget:
                continue
            budget -= state.spec.cost
            released = state.pending_since
            assert released is not None
            state.pending_since = None
            state.runs += 1
            if self.now - released <= state.spec.deadline:
                state.hits += 1
            else:
                state.misses += 1
            executed.append(state.spec.query_id)
        return TickReport(executed=executed, budget_used=self.budget_per_tick - budget)

    def run(self, ticks: int, dt: float = 1.0) -> None:
        for _ in range(ticks):
            self.tick(dt)

    # -- reporting ---------------------------------------------------------

    def hit_rate(self, query_id: str) -> float:
        state = self._states[query_id]
        total = state.hits + state.misses
        return state.hits / total if total else 1.0

    def hit_rate_by_weight(self) -> dict[float, float]:
        """Aggregate hit rate per QoS weight class."""
        hits: dict[float, int] = {}
        totals: dict[float, int] = {}
        for state in self._states.values():
            weight = state.spec.weight
            hits[weight] = hits.get(weight, 0) + state.hits
            totals[weight] = totals.get(weight, 0) + state.hits + state.misses
        return {
            weight: (hits[weight] / totals[weight] if totals[weight] else 1.0)
            for weight in totals
        }

"""Streaming engine: windows, aggregation, and operator parallelism.

Paper Sec. IV-G: "To sustain high stream ingress traffic, data processing
operators have to be replicated and run in parallel threads" ([91], [88]).
This engine models exactly that: a :class:`StreamPipeline` partitions
records by key hash across operator replicas; each replica accrues
simulated processing time; pipeline completion is the max over replicas, so
speedup and skew effects are measurable (experiment E18).

Windowing is event-time based with tumbling and sliding variants.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from ..core.errors import ConfigurationError, QueryError
from ..core.records import DataRecord
from ..obs.profiling import timed
from ..net.overlay import stable_hash


@dataclass(frozen=True)
class WindowResult:
    """One emitted window for one key."""

    key: Any
    window_start: float
    window_end: float
    value: float
    count: int


class TumblingWindow:
    """Fixed, non-overlapping event-time windows with incremental aggregates.

    ``agg`` is one of ``sum``/``count``/``avg``/``min``/``max``.  Feed
    records with :meth:`add`; completed windows are emitted when a record
    arrives past the window end (per key) or on :meth:`flush`.
    """

    _AGGS = ("sum", "count", "avg", "min", "max")

    def __init__(self, size: float, field: str, agg: str = "avg") -> None:
        if size <= 0:
            raise ConfigurationError("window size must be positive")
        if agg not in self._AGGS:
            raise QueryError(f"unknown aggregate {agg!r}")
        self.size = size
        self.field = field
        self.agg = agg
        self._state: dict[tuple[Any, int], list[float]] = defaultdict(list)
        self._watermark: dict[Any, int] = {}

    def _window_index(self, timestamp: float) -> int:
        return int(math.floor(timestamp / self.size))

    def add(self, record: DataRecord) -> list[WindowResult]:
        """Add a record; return any windows this closes for the record's key."""
        if self.field not in record.payload:
            return []
        idx = self._window_index(record.timestamp)
        key = record.key
        emitted: list[WindowResult] = []
        last = self._watermark.get(key)
        if last is not None and idx > last:
            for closed in range(last, idx):
                result = self._emit(key, closed)
                if result is not None:
                    emitted.append(result)
        if last is None or idx > last:
            self._watermark[key] = idx
        self._state[(key, idx)].append(float(record.payload[self.field]))
        return emitted

    def _emit(self, key: Any, idx: int) -> WindowResult | None:
        values = self._state.pop((key, idx), None)
        if not values:
            return None
        return WindowResult(
            key=key,
            window_start=idx * self.size,
            window_end=(idx + 1) * self.size,
            value=self._aggregate(values),
            count=len(values),
        )

    def _aggregate(self, values: list[float]) -> float:
        if self.agg == "sum":
            return sum(values)
        if self.agg == "count":
            return float(len(values))
        if self.agg == "avg":
            return sum(values) / len(values)
        if self.agg == "min":
            return min(values)
        return max(values)

    def flush(self) -> list[WindowResult]:
        """Emit every open window (end of stream)."""
        out = []
        for key, idx in sorted(self._state, key=lambda t: (str(t[0]), t[1])):
            result = self._emit(key, idx)
            if result is not None:
                out.append(result)
        return out


class SlidingWindow:
    """Overlapping event-time windows (size, slide) via paned aggregation.

    Records land in non-overlapping panes of width ``slide``; each emitted
    window combines ``size / slide`` consecutive panes, so per-record work
    is O(1) regardless of overlap.  Supported aggregates: sum/count/avg.
    """

    _AGGS = ("sum", "count", "avg")

    def __init__(self, size: float, slide: float, field: str, agg: str = "avg") -> None:
        if slide <= 0 or size <= 0 or slide > size:
            raise ConfigurationError("need 0 < slide <= size")
        ratio = size / slide
        if abs(ratio - round(ratio)) > 1e-9:
            raise ConfigurationError("size must be a multiple of slide")
        if agg not in self._AGGS:
            raise QueryError(f"unknown aggregate {agg!r}")
        self.size = size
        self.slide = slide
        self.field = field
        self.agg = agg
        self._panes: dict[Any, dict[int, tuple[float, int]]] = defaultdict(dict)

    def add(self, record: DataRecord) -> None:
        if self.field not in record.payload:
            return
        idx = int(math.floor(record.timestamp / self.slide))
        total, count = self._panes[record.key].get(idx, (0.0, 0))
        self._panes[record.key][idx] = (
            total + float(record.payload[self.field]),
            count + 1,
        )

    def results(self) -> list[WindowResult]:
        """Emit all sliding windows covering at least one pane."""
        panes_per_window = int(round(self.size / self.slide))
        out: list[WindowResult] = []
        for key, panes in self._panes.items():
            if not panes:
                continue
            lo, hi = min(panes), max(panes)
            for start in range(lo - panes_per_window + 1, hi + 1):
                covered = [
                    panes[i]
                    for i in range(start, start + panes_per_window)
                    if i in panes
                ]
                if not covered:
                    continue
                total = sum(v for v, _ in covered)
                count = sum(c for _, c in covered)
                if self.agg == "sum":
                    value = total
                elif self.agg == "count":
                    value = float(count)
                else:
                    value = total / count
                out.append(
                    WindowResult(
                        key=key,
                        window_start=start * self.slide,
                        window_end=start * self.slide + self.size,
                        value=value,
                        count=count,
                    )
                )
        return out


@dataclass
class ReplicaStats:
    records: int = 0
    busy_time: float = 0.0


class StreamPipeline:
    """A partitioned-parallel operator (paper's replicated stream operators).

    ``work_fn(record)`` returns the simulated seconds of work a record
    costs; records are routed to ``parallelism`` replicas by key hash, and
    :meth:`process` returns the simulated makespan (max busy time across
    replicas).  Perfect scaling halves the makespan when parallelism
    doubles; key skew shows up as imbalance, exactly the effects [91]
    studies.
    """

    def __init__(
        self,
        parallelism: int,
        work_fn: Callable[[DataRecord], float] | None = None,
        handler: Callable[[DataRecord], None] | None = None,
    ) -> None:
        if parallelism < 1:
            raise ConfigurationError("parallelism must be >= 1")
        self.parallelism = parallelism
        self.work_fn = work_fn if work_fn is not None else (lambda _: 1e-6)
        self.handler = handler
        self.replicas = [ReplicaStats() for _ in range(parallelism)]

    def _route(self, record: DataRecord) -> int:
        # Stable routing (Python's str hash is randomized per process).
        return stable_hash(str(record.key)) % self.parallelism

    @timed("query.stream_process")
    def process(self, records: Iterable[DataRecord]) -> float:
        """Process a batch; return simulated makespan in seconds."""
        start_busy = [r.busy_time for r in self.replicas]
        for record in records:
            replica = self.replicas[self._route(record)]
            replica.records += 1
            replica.busy_time += self.work_fn(record)
            if self.handler is not None:
                self.handler(record)
        return max(
            r.busy_time - s for r, s in zip(self.replicas, start_busy)
        )

    def throughput(self, records: list[DataRecord]) -> float:
        """Records per simulated second for this batch."""
        makespan = self.process(records)
        if makespan <= 0:
            return float("inf")
        return len(records) / makespan

    def imbalance(self) -> float:
        """Max/mean busy-time ratio (1.0 = perfectly balanced)."""
        times = [r.busy_time for r in self.replicas]
        mean = sum(times) / len(times)
        if mean == 0:
            return 1.0
        return max(times) / mean

"""Cost-based optimization (paper Sec. IV-G).

Two optimizations the paper calls out:

* **Expensive-predicate ordering** ([39], Hellerstein): given a conjunction
  of filters with per-row costs and selectivities, the cost-minimal order
  applies them by ascending ``rank = (selectivity - 1) / cost``.
  :func:`order_predicates` implements it and :func:`chain_filters` rebuilds
  the operator chain.

* **Device-aware placement** ([50], [61], [10]): the disaggregated
  architecture lets operators run on the metaverse device or in the cloud.
  :class:`PlacementOptimizer` chooses, per pipeline prefix, whether to run
  it device-side (slower CPU, but upstream of the network, so filtering
  early shrinks the transfer) or cloud-side, minimizing total latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import PlanningError
from .operators import Filter, Operator


def predicate_rank(selectivity: float, cost: float) -> float:
    """Hellerstein's rank; lower ranks run first."""
    if cost <= 0:
        raise PlanningError("predicate cost must be positive")
    return (selectivity - 1.0) / cost


def order_predicates(filters: list[Filter]) -> list[Filter]:
    """Order filters by ascending rank (optimal for a filter chain)."""
    return sorted(filters, key=lambda f: predicate_rank(f.selectivity, f.cost))


def chain_filters(source: Operator, filters: list[Filter]) -> Operator:
    """Rebuild a filter chain over ``source`` in the given order."""
    node: Operator = source
    for filt in filters:
        node = Filter(
            node,
            filt.predicate,
            cost=filt.cost,
            selectivity=filt.selectivity,
            label=filt.label,
        )
    return node


def expected_chain_cost(filters: list[Filter], input_rows: float = 1.0) -> float:
    """Expected per-input-row cost of applying filters in the given order."""
    cost = 0.0
    rows = input_rows
    for filt in filters:
        cost += rows * filt.cost
        rows *= filt.selectivity
    return cost


def optimize_filter_chain(source: Operator, filters: list[Filter]) -> Operator:
    """The standard pipeline: rank-order the filters, rebuild the chain."""
    return chain_filters(source, order_predicates(filters))


@dataclass(frozen=True)
class PipelineStage:
    """One stage of a linear ingest pipeline for placement purposes.

    ``cost_per_row`` is in abstract work units; ``selectivity`` scales the
    downstream row count (aggregations use values < 1, enrichments > 1);
    ``bytes_per_row_out`` is the wire size of the stage's output rows.
    """

    name: str
    cost_per_row: float
    selectivity: float
    bytes_per_row_out: float


@dataclass(frozen=True)
class DeviceProfile:
    """Relative execution environment (paper Fig. 7).

    ``device_speed`` and ``cloud_speed`` are work units per second;
    ``uplink_bps`` is the device-to-cloud bandwidth.
    """

    device_speed: float
    cloud_speed: float
    uplink_bps: float
    raw_bytes_per_row: float = 64.0

    def __post_init__(self) -> None:
        if min(self.device_speed, self.cloud_speed, self.uplink_bps) <= 0:
            raise PlanningError("profile rates must be positive")


@dataclass
class PlacementPlan:
    """Result of placement: stages [0, split) on device, rest in cloud."""

    split: int
    device_stages: list[str]
    cloud_stages: list[str]
    latency_per_row: float
    uplink_bytes_per_row: float


class PlacementOptimizer:
    """Choose the device/cloud split point of a linear pipeline.

    For each candidate split ``k`` (0 = everything in the cloud), the
    per-source-row latency is::

        sum(device work of stages < k) / device_speed
        + (bytes crossing the uplink after stage k-1) * 8 / uplink_bps
        + sum(cloud work of stages >= k) / cloud_speed

    and the optimizer returns the argmin.  This captures the paper's point
    that "part of the computation [can] be further separated from the cloud
    side to the device side": device-side aggregation wins exactly when the
    row-count/byte reduction beats the slower device CPU.
    """

    def __init__(self, profile: DeviceProfile) -> None:
        self.profile = profile

    def _latency_for_split(self, stages: list[PipelineStage], split: int) -> tuple[float, float]:
        rows = 1.0
        device_work = 0.0
        for stage in stages[:split]:
            device_work += rows * stage.cost_per_row
            rows *= stage.selectivity
        if split == 0:
            uplink_bytes = self.profile.raw_bytes_per_row
        else:
            uplink_bytes = rows * stages[split - 1].bytes_per_row_out
        cloud_work = 0.0
        for stage in stages[split:]:
            cloud_work += rows * stage.cost_per_row
            rows *= stage.selectivity
        latency = (
            device_work / self.profile.device_speed
            + uplink_bytes * 8.0 / self.profile.uplink_bps
            + cloud_work / self.profile.cloud_speed
        )
        return latency, uplink_bytes

    def optimize(self, stages: list[PipelineStage]) -> PlacementPlan:
        if not stages:
            raise PlanningError("pipeline has no stages")
        best_split, best_latency, best_bytes = 0, float("inf"), 0.0
        for split in range(len(stages) + 1):
            latency, uplink_bytes = self._latency_for_split(stages, split)
            if latency < best_latency:
                best_split, best_latency, best_bytes = split, latency, uplink_bytes
        return PlacementPlan(
            split=best_split,
            device_stages=[s.name for s in stages[:best_split]],
            cloud_stages=[s.name for s in stages[best_split:]],
            latency_per_row=best_latency,
            uplink_bytes_per_row=best_bytes,
        )

    def latency_all_cloud(self, stages: list[PipelineStage]) -> float:
        return self._latency_for_split(stages, 0)[0]

    def latency_all_device(self, stages: list[PipelineStage]) -> float:
        return self._latency_for_split(stages, len(stages))[0]

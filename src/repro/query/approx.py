"""Approximation and degradation policies (paper Sec. IV-C/IV-G).

"For a cyber user, while real-time information is highly desirable,
approximate data may be tolerated (e.g., instead of a high resolution video
stream, a low-resolution stream or animation may be acceptable)."

Three mechanisms:

* :class:`ResolutionLadder` — media degradation: pick the best variant that
  fits a bandwidth budget.
* :func:`sample_aggregate` — sampling-based approximate aggregation with a
  CLT-based confidence interval.
* :class:`SpaceAwareDegrader` — the paper's "space-aware" policy: physical
  shoppers get exact data, cyber users get degraded data under pressure.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..core.errors import ConfigurationError, QueryError
from ..core.records import DataRecord, Space


@dataclass(frozen=True)
class MediaVariant:
    """One resolution rung of a media asset."""

    label: str
    bytes_per_second: float
    quality: float  # in (0, 1], 1 = original

    def __post_init__(self) -> None:
        if self.bytes_per_second <= 0 or not 0 < self.quality <= 1:
            raise ConfigurationError("invalid media variant")


class ResolutionLadder:
    """An ordered set of media variants plus budget-based selection."""

    def __init__(self, variants: list[MediaVariant]) -> None:
        if not variants:
            raise ConfigurationError("ladder needs at least one variant")
        self.variants = sorted(variants, key=lambda v: v.bytes_per_second)
        qualities = [v.quality for v in self.variants]
        if qualities != sorted(qualities):
            raise ConfigurationError("quality must increase with bitrate")

    @property
    def best(self) -> MediaVariant:
        return self.variants[-1]

    @property
    def worst(self) -> MediaVariant:
        return self.variants[0]

    def select(self, budget_bytes_per_second: float) -> MediaVariant | None:
        """Highest-quality variant within budget (None if even the lowest
        rung does not fit)."""
        chosen = None
        for variant in self.variants:
            if variant.bytes_per_second <= budget_bytes_per_second:
                chosen = variant
        return chosen


@dataclass
class ApproximateResult:
    """A sampled aggregate with its confidence interval."""

    estimate: float
    half_width: float
    sample_size: int
    population: int

    @property
    def interval(self) -> tuple[float, float]:
        return (self.estimate - self.half_width, self.estimate + self.half_width)


def sample_aggregate(
    values: list[float],
    fraction: float,
    agg: str = "avg",
    seed: int = 0,
    z: float = 1.96,
) -> ApproximateResult:
    """Estimate sum/avg from a uniform sample with a CLT interval.

    ``fraction`` in (0, 1]: the sampled share of the population.  The
    half-width uses the sample standard deviation, scaled up for ``sum``.
    """
    if not values:
        raise QueryError("cannot aggregate an empty population")
    if not 0 < fraction <= 1:
        raise QueryError("fraction must be in (0, 1]")
    if agg not in ("avg", "sum"):
        raise QueryError(f"unsupported approximate aggregate {agg!r}")
    n = max(1, int(round(len(values) * fraction)))
    rng = random.Random(seed)
    sample = values if n >= len(values) else rng.sample(values, n)
    mean = sum(sample) / len(sample)
    if len(sample) > 1:
        var = sum((v - mean) ** 2 for v in sample) / (len(sample) - 1)
        sem = math.sqrt(var / len(sample))
    else:
        sem = 0.0
    if agg == "avg":
        return ApproximateResult(mean, z * sem, len(sample), len(values))
    scale = float(len(values))
    return ApproximateResult(mean * scale, z * sem * scale, len(sample), len(values))


class SpaceAwareDegrader:
    """Route records to exact or degraded processing by space and load.

    Under light load everyone gets exact data.  Above ``pressure_threshold``
    (a load factor in [0, 1]), virtual-space consumers get degraded records:
    numeric fields rounded to ``precision`` decimals and media payloads
    swapped for their low-resolution variant.  Physical-space consumers are
    never degraded — the paper's example priority ("prioritize sales for a
    shopper in a physical mall").
    """

    def __init__(self, pressure_threshold: float = 0.7, precision: int = 0) -> None:
        if not 0 <= pressure_threshold <= 1:
            raise ConfigurationError("pressure_threshold must be in [0, 1]")
        self.pressure_threshold = pressure_threshold
        self.precision = precision
        self.degraded_count = 0
        self.exact_count = 0

    def should_degrade(self, consumer_space: Space, load: float) -> bool:
        return consumer_space is Space.VIRTUAL and load > self.pressure_threshold

    def process(
        self, record: DataRecord, consumer_space: Space, load: float
    ) -> DataRecord:
        if not self.should_degrade(consumer_space, load):
            self.exact_count += 1
            return record
        self.degraded_count += 1
        payload = {}
        for key, value in record.payload.items():
            if isinstance(value, float):
                payload[key] = round(value, self.precision)
            elif key == "size_bytes" and isinstance(value, int):
                payload[key] = max(1, value // 10)  # low-res media stand-in
            else:
                payload[key] = value
        return DataRecord(
            key=record.key,
            payload=payload,
            space=record.space,
            timestamp=record.timestamp,
            kind=record.kind,
            source=f"{record.source}+degraded",
        )

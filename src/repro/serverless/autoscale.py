"""Reactive autoscaling for the cloud executor tier (paper Sec. IV-E).

"The loads need to be adaptively balanced and new nodes can be easily added
without substantial reconfiguration effort ... transaction/query executors
and buffer pools can scale elastically based on the workload."

:class:`Autoscaler` implements the standard target-utilization controller:
each control tick it compares observed load against capacity and scales the
replica count toward ``load / target_utilization``, bounded by min/max and
a cooldown.  Experiments drive it with bursty request traces (flash sales)
and check capacity tracks demand.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.errors import ConfigurationError


@dataclass
class ScalingDecision:
    tick: int
    load: float
    replicas_before: int
    replicas_after: int


class Autoscaler:
    """Target-utilization scaling controller."""

    def __init__(
        self,
        capacity_per_replica: float,
        target_utilization: float = 0.7,
        min_replicas: int = 1,
        max_replicas: int = 64,
        cooldown_ticks: int = 2,
    ) -> None:
        if capacity_per_replica <= 0 or not 0 < target_utilization <= 1:
            raise ConfigurationError("invalid capacity/target")
        if not 1 <= min_replicas <= max_replicas:
            raise ConfigurationError("need 1 <= min <= max replicas")
        if cooldown_ticks < 0:
            raise ConfigurationError("cooldown must be >= 0")
        self.capacity_per_replica = capacity_per_replica
        self.target_utilization = target_utilization
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.cooldown_ticks = cooldown_ticks
        self.replicas = min_replicas
        self._tick = 0
        self._last_scale_tick = -10**9
        self.decisions: list[ScalingDecision] = []

    @property
    def capacity(self) -> float:
        return self.replicas * self.capacity_per_replica

    def utilization(self, load: float) -> float:
        return load / self.capacity if self.capacity else float("inf")

    def observe(self, load: float) -> ScalingDecision:
        """Feed one tick's observed load; maybe scale."""
        if load < 0:
            raise ConfigurationError("load must be >= 0")
        self._tick += 1
        before = self.replicas
        desired = self._desired(load)
        can_scale = self._tick - self._last_scale_tick >= self.cooldown_ticks
        if desired != self.replicas and can_scale:
            self.replicas = desired
            self._last_scale_tick = self._tick
        decision = ScalingDecision(
            tick=self._tick,
            load=load,
            replicas_before=before,
            replicas_after=self.replicas,
        )
        self.decisions.append(decision)
        return decision

    def _desired(self, load: float) -> int:
        needed = math.ceil(load / (self.capacity_per_replica * self.target_utilization))
        return max(self.min_replicas, min(self.max_replicas, max(1, needed)))

    def dropped_load(self, load: float) -> float:
        """Load exceeding capacity this tick (shed requests)."""
        return max(0.0, load - self.capacity)

"""Serverless function runtime model (paper Sec. IV-E3).

"Clients only need to upload the execution logic and define the trigger
upon which the job is executed ... clients are charged based on the actual
amount of resources consumed."  This module models the lifecycle that makes
those properties interesting:

* :class:`FunctionSpec` — execution time, memory footprint, cold-start
  penalty;
* :class:`ServerlessRuntime` — instance pool per function with keep-alive:
  an invocation reuses a warm instance when one is free, otherwise pays the
  cold start; idle instances are reaped after ``keep_alive_s``;
* per-invocation records feed :mod:`repro.serverless.billing`.

Experiment E12 reproduces the cold-start tail and pay-per-use economics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..core.errors import ConfigurationError


@dataclass(frozen=True)
class FunctionSpec:
    """A registered serverless function."""

    name: str
    exec_time_s: float
    memory_mb: int
    cold_start_s: float = 0.5

    def __post_init__(self) -> None:
        if self.exec_time_s <= 0 or self.memory_mb <= 0 or self.cold_start_s < 0:
            raise ConfigurationError("invalid function spec")


@dataclass
class Invocation:
    """One completed invocation."""

    function: str
    submitted_at: float
    started_at: float
    finished_at: float
    cold_start: bool
    memory_mb: int

    @property
    def latency(self) -> float:
        return self.finished_at - self.submitted_at

    @property
    def exec_duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def gb_seconds(self) -> float:
        return (self.memory_mb / 1024.0) * self.exec_duration


@dataclass
class _Instance:
    instance_id: int
    busy_until: float
    last_used: float


class ServerlessRuntime:
    """Warm-pool instance manager with keep-alive reaping."""

    def __init__(self, keep_alive_s: float = 60.0, max_instances: int = 1000) -> None:
        if keep_alive_s < 0 or max_instances < 1:
            raise ConfigurationError("invalid runtime configuration")
        self.keep_alive_s = keep_alive_s
        self.max_instances = max_instances
        self._specs: dict[str, FunctionSpec] = {}
        self._pools: dict[str, list[_Instance]] = {}
        self._ids = itertools.count(1)
        self.invocations: list[Invocation] = []
        self.cold_starts = 0
        self.warm_hits = 0
        self.rejected = 0

    def register(self, spec: FunctionSpec) -> None:
        if spec.name in self._specs:
            raise ConfigurationError(f"function {spec.name!r} already registered")
        self._specs[spec.name] = spec
        self._pools[spec.name] = []

    def _reap(self, pool: list[_Instance], now: float) -> None:
        pool[:] = [
            inst
            for inst in pool
            if inst.busy_until > now or now - inst.last_used <= self.keep_alive_s
        ]

    def invoke(self, name: str, now: float) -> Invocation | None:
        """Invoke ``name`` at simulated time ``now``.

        Returns the invocation record, or None when the instance cap is hit
        (throttled).  A free warm instance serves immediately; otherwise a
        new instance pays the cold start.
        """
        spec = self._specs.get(name)
        if spec is None:
            raise ConfigurationError(f"unknown function {name!r}")
        pool = self._pools[name]
        self._reap(pool, now)
        warm = next((i for i in pool if i.busy_until <= now), None)
        if warm is not None:
            self.warm_hits += 1
            started = now
            finished = started + spec.exec_time_s
            warm.busy_until = finished
            warm.last_used = finished
            cold = False
        else:
            if sum(len(p) for p in self._pools.values()) >= self.max_instances:
                self.rejected += 1
                return None
            self.cold_starts += 1
            started = now + spec.cold_start_s
            finished = started + spec.exec_time_s
            pool.append(
                _Instance(next(self._ids), busy_until=finished, last_used=finished)
            )
            cold = True
        invocation = Invocation(
            function=name,
            submitted_at=now,
            started_at=started,
            finished_at=finished,
            cold_start=cold,
            memory_mb=spec.memory_mb,
        )
        self.invocations.append(invocation)
        return invocation

    def warm_instances(self, name: str, now: float) -> int:
        pool = self._pools.get(name, [])
        self._reap(pool, now)
        return len(pool)

    def latencies(self, name: str | None = None) -> list[float]:
        return [
            inv.latency
            for inv in self.invocations
            if name is None or inv.function == name
        ]

    def cold_fraction(self) -> float:
        total = self.cold_starts + self.warm_hits
        return self.cold_starts / total if total else 0.0

"""Serverless runtime model: functions, autoscaling, billing, TEE."""

from .autoscale import Autoscaler, ScalingDecision
from .billing import (
    PricingModel,
    pay_per_use_cost,
    peak_concurrency,
    provisioned_cost,
    utilization,
)
from .functions import FunctionSpec, Invocation, ServerlessRuntime
from .tee import AppStage, Enclave, EnclaveProfile, PartitionedApp
from .triggers import TriggerBinder, TriggerBinding, TriggerFiring

__all__ = [
    "AppStage",
    "Autoscaler",
    "Enclave",
    "EnclaveProfile",
    "FunctionSpec",
    "Invocation",
    "PartitionedApp",
    "PricingModel",
    "ScalingDecision",
    "ServerlessRuntime",
    "TriggerBinder",
    "TriggerBinding",
    "TriggerFiring",
    "pay_per_use_cost",
    "peak_concurrency",
    "provisioned_cost",
    "utilization",
]

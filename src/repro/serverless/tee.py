"""Trusted-execution-environment model (paper Sec. IV-D / IV-E3).

"Current implementations like Intel SGX fall short of ... performance
(large overhead)" and serverless-TEE designs "[partition] the application
logic into a trusted part, which runs inside the TEE enclave, and an
untrusted part."  This model reproduces the two dominant costs of real
enclaves so those claims are measurable:

* **world-switch overhead** — every ecall/ocall crossing pays a fixed cost;
* **EPC paging** — enclave-resident data beyond ``epc_mb`` pays a per-MB
  penalty on access (SGX1's notorious cliff).

:class:`PartitionedApp` runs a stage list with per-stage trust requirements
and accounts total time with and without the enclave, giving the overhead
factor benchmark E12 reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigurationError, EnclaveError


@dataclass(frozen=True)
class EnclaveProfile:
    """Cost model for one TEE generation."""

    ecall_overhead_s: float = 8e-6      # world switch cost per crossing
    epc_mb: float = 128.0               # protected memory before paging
    paging_penalty_s_per_mb: float = 4e-4
    compute_slowdown: float = 1.15      # encrypted-memory tax on cycles

    def __post_init__(self) -> None:
        if (
            self.ecall_overhead_s < 0
            or self.epc_mb <= 0
            or self.paging_penalty_s_per_mb < 0
            or self.compute_slowdown < 1.0
        ):
            raise ConfigurationError("invalid enclave profile")


class Enclave:
    """A running enclave instance accruing simulated time."""

    def __init__(self, profile: EnclaveProfile) -> None:
        self.profile = profile
        self.resident_mb = 0.0
        self.total_time_s = 0.0
        self.crossings = 0
        self.paged_mb = 0.0

    def load_data(self, mb: float) -> None:
        if mb < 0:
            raise EnclaveError("cannot load negative data")
        self.resident_mb += mb

    def ecall(self, compute_s: float, touched_mb: float = 0.0) -> float:
        """Execute ``compute_s`` of work inside the enclave; returns elapsed.

        The call pays one world switch, the encrypted-memory slowdown, and
        paging for any touched data beyond the EPC.
        """
        if compute_s < 0 or touched_mb < 0:
            raise EnclaveError("negative work")
        self.crossings += 1
        elapsed = self.profile.ecall_overhead_s
        elapsed += compute_s * self.profile.compute_slowdown
        overflow = max(0.0, (self.resident_mb + touched_mb) - self.profile.epc_mb)
        paged = min(touched_mb, overflow)
        self.paged_mb += paged
        elapsed += paged * self.profile.paging_penalty_s_per_mb
        self.total_time_s += elapsed
        return elapsed


@dataclass(frozen=True)
class AppStage:
    """One stage of a partitioned application."""

    name: str
    compute_s: float
    data_mb: float
    sensitive: bool  # must run inside the enclave


class PartitionedApp:
    """Runs trusted stages in the enclave, the rest outside.

    Consecutive same-side stages share a crossing (batching calls is the
    standard optimization; the model grants it automatically).
    """

    def __init__(self, stages: list[AppStage], profile: EnclaveProfile) -> None:
        if not stages:
            raise ConfigurationError("need at least one stage")
        self.stages = list(stages)
        self.profile = profile

    def run_with_tee(self) -> tuple[float, Enclave]:
        """Total simulated seconds with the sensitive stages enclaved."""
        enclave = Enclave(self.profile)
        total = 0.0
        index = 0
        while index < len(self.stages):
            stage = self.stages[index]
            if not stage.sensitive:
                total += stage.compute_s
                index += 1
                continue
            # Batch the maximal run of consecutive sensitive stages into
            # one crossing.
            compute = 0.0
            touched = 0.0
            while index < len(self.stages) and self.stages[index].sensitive:
                compute += self.stages[index].compute_s
                touched += self.stages[index].data_mb
                index += 1
            total += enclave.ecall(compute, touched)
        return total, enclave

    def run_without_tee(self) -> float:
        """Baseline: everything untrusted (no protection, no overhead)."""
        return sum(stage.compute_s for stage in self.stages)

    def overhead_factor(self) -> float:
        with_tee, _ = self.run_with_tee()
        without = self.run_without_tee()
        if without == 0:
            raise EnclaveError("zero-work app")
        return with_tee / without

"""Fine-grained pay-per-use billing (paper Sec. IV-E3).

"Clients are charged based on the actual amount of resources consumed
during execution, with fine-grained granularity similar in spirit to
pay-as-you-go."  :func:`pay_per_use_cost` prices a set of invocations at a
GB-second rate plus a per-request fee (the Lambda-style model), and
:func:`provisioned_cost` prices the alternative the paper contrasts with:
keeping peak-sized capacity reserved for the whole window.  Bursty
workloads make the gap dramatic, which experiment E12 verifies.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigurationError
from .functions import Invocation


@dataclass(frozen=True)
class PricingModel:
    """Serverless price book."""

    per_gb_second: float = 0.0000167   # Lambda-like defaults
    per_request: float = 0.0000002
    provisioned_gb_hour: float = 0.04  # reserved-capacity comparison rate

    def __post_init__(self) -> None:
        if min(self.per_gb_second, self.per_request, self.provisioned_gb_hour) < 0:
            raise ConfigurationError("prices must be non-negative")


def pay_per_use_cost(invocations: list[Invocation], pricing: PricingModel) -> float:
    """Total serverless bill: GB-seconds actually used + request fees."""
    gb_seconds = sum(inv.gb_seconds for inv in invocations)
    return gb_seconds * pricing.per_gb_second + len(invocations) * pricing.per_request


def peak_concurrency(invocations: list[Invocation]) -> int:
    """Maximum number of simultaneously running invocations."""
    events: list[tuple[float, int]] = []
    for inv in invocations:
        events.append((inv.started_at, 1))
        events.append((inv.finished_at, -1))
    events.sort()
    concurrent = peak = 0
    for _, delta in events:
        concurrent += delta
        peak = max(peak, concurrent)
    return peak


def provisioned_cost(
    invocations: list[Invocation],
    window_s: float,
    pricing: PricingModel,
) -> float:
    """Cost of reserving peak-concurrency capacity for the whole window."""
    if window_s <= 0:
        raise ConfigurationError("window must be positive")
    if not invocations:
        return 0.0
    peak = peak_concurrency(invocations)
    memory_gb = max(inv.memory_mb for inv in invocations) / 1024.0
    hours = window_s / 3600.0
    return peak * memory_gb * hours * pricing.provisioned_gb_hour


def utilization(invocations: list[Invocation], window_s: float) -> float:
    """Fraction of the provisioned-peak capacity actually used."""
    if not invocations or window_s <= 0:
        return 0.0
    busy = sum(inv.exec_duration for inv in invocations)
    peak = peak_concurrency(invocations)
    return busy / (peak * window_s) if peak else 0.0

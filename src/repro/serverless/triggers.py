"""Event-triggered serverless functions (paper Sec. IV-E3).

"Clients only need to upload the execution logic and define the trigger
upon which the job is executed."  :class:`TriggerBinder` wires the pub/sub
broker to the serverless runtime: a binding maps a topic pattern (plus
optional predicates) to a registered function; matching publications invoke
the function, inheriting the runtime's cold/warm behaviour and billing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigurationError
from ..net.pubsub import AttributePredicate, Broker, Publication, Subscription
from .functions import Invocation, ServerlessRuntime


@dataclass
class TriggerBinding:
    """One trigger rule: publications matching -> invoke function."""

    function: str
    topic_pattern: str
    predicates: tuple[AttributePredicate, ...] = ()


@dataclass
class TriggerFiring:
    binding: TriggerBinding
    publication: Publication
    invocation: Invocation | None  # None when throttled


class TriggerBinder:
    """Connects a :class:`Broker` to a :class:`ServerlessRuntime`."""

    def __init__(self, broker: Broker, runtime: ServerlessRuntime) -> None:
        self.broker = broker
        self.runtime = runtime
        self.firings: list[TriggerFiring] = []
        self._bindings: list[TriggerBinding] = []

    def bind(self, binding: TriggerBinding) -> None:
        """Install a trigger; the function must already be registered."""
        if binding.function not in self.runtime._specs:
            raise ConfigurationError(
                f"function {binding.function!r} not registered"
            )
        self._bindings.append(binding)
        self.broker.subscribe(
            Subscription(
                subscriber=f"trigger:{binding.function}",
                topic_pattern=binding.topic_pattern,
                predicates=binding.predicates,
                callback=lambda pub, b=binding: self._fire(b, pub),
            )
        )

    def _fire(self, binding: TriggerBinding, pub: Publication) -> None:
        invocation = self.runtime.invoke(binding.function, now=pub.timestamp)
        self.firings.append(
            TriggerFiring(binding=binding, publication=pub, invocation=invocation)
        )

    # -- accounting ------------------------------------------------------------

    def firings_of(self, function: str) -> list[TriggerFiring]:
        return [f for f in self.firings if f.binding.function == function]

    def end_to_end_latencies(self, function: str) -> list[float]:
        """Publication time -> function completion, per firing."""
        return [
            f.invocation.finished_at - f.publication.timestamp
            for f in self.firings_of(function)
            if f.invocation is not None
        ]

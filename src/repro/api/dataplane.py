"""The :class:`DataPlane` protocol: one surface for every deployment shape.

The protocol is *structural* (:func:`typing.runtime_checkable`): neither
implementation imports this module to conform, and the conformance suite
(``tests/test_api_dataplane.py``) runs the same driver against both a
single platform node and a sharded cluster, asserting identical observable
results.  :class:`GatherResult` lives here because it is the protocol's
query return type; :mod:`repro.cluster` re-exports it for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.columns import RecordBatch
    from ..core.records import DataRecord
    from ..platform.platform import PurchaseOutcome
    from ..query.plane import QueryRequest
    from ..spatial.geometry import BBox
    from ..workloads.marketplace import PurchaseRequest


@dataclass
class GatherResult:
    """Outcome of one query fan-out (single node: never partial)."""

    items: list
    failed_shards: tuple[str, ...] = ()

    @property
    def partial(self) -> bool:
        return bool(self.failed_shards)


@dataclass
class ContinuousQuery:
    """One standing query, re-evaluated on every :meth:`tick`.

    ``request`` carries the full query-plane request (any modality);
    ``prefix`` is kept as a plain-data summary for the common
    prefix-scan case (empty for other modalities).
    """

    query_id: str
    prefix: str
    results: GatherResult | None = field(default=None)
    request: "QueryRequest | None" = field(default=None)


@runtime_checkable
class DataPlane(Protocol):
    """What a metaverse data plane does, independent of deployment shape.

    Implemented by :class:`~repro.platform.platform.MetaversePlatform`
    (one node) and :class:`~repro.cluster.cluster.PlatformCluster`
    (N shards).  Contract highlights the conformance suite holds both to:

    * :meth:`ingest`/:meth:`ingest_many`/:meth:`ingest_batch` buffer;
      nothing is visible to queries until :meth:`flush` (or :meth:`tick`);
    * :meth:`flush` returns the number of records written;
    * :meth:`query` runs any registered query-plane modality
      (:mod:`repro.query.plane`) and returns a :class:`GatherResult`;
      :meth:`scan_prefix`/:meth:`query_spatial` are thin wrappers over
      it whose items are ``(key, stored_value)`` pairs sorted by key;
    * :meth:`tick` advances simulated time, flushes, and re-evaluates
      every registered continuous query, returning fresh results;
    * :meth:`process_purchases` decides an identically-ordered request
      stream identically on every implementation (E24/E26/E27 assert
      byte-identical outcomes across shapes and ingest paths).
    """

    # -- ingest ------------------------------------------------------------

    def ingest(self, record: "DataRecord") -> None: ...

    def ingest_many(self, records: "list[DataRecord]") -> None: ...

    def ingest_batch(self, batch: "RecordBatch") -> None: ...

    def flush(self) -> int: ...

    def tick(self, dt: float) -> "dict[str, GatherResult]": ...

    # -- queries -----------------------------------------------------------

    def query(self, request: "QueryRequest") -> GatherResult: ...

    def scan_prefix(self, prefix: str) -> GatherResult: ...

    def query_spatial(self, region: "BBox") -> GatherResult: ...

    def register_continuous(self, query_id: str, prefix: str) -> None: ...

    def continuous_results(self, query_id: str) -> "GatherResult | None": ...

    # -- marketplace -------------------------------------------------------

    def load_catalog(self, records: "list[DataRecord]") -> None: ...

    def process_purchases(
        self, requests: "list[PurchaseRequest]", max_retries: int = 2
    ) -> "list[PurchaseOutcome]": ...

    def get_stock(self, product_id: str) -> int: ...

"""Unified data-plane surface (``repro.api``).

Workloads and benchmarks used to be written twice: once against a single
:class:`~repro.platform.platform.MetaversePlatform` node and once against a
:class:`~repro.cluster.cluster.PlatformCluster`, special-casing whichever
deployment shape they happened to target.  :class:`DataPlane` is the one
explicit interface both implement — ingest (per-record and columnar),
tick-driven flushing, modality-agnostic :meth:`~DataPlane.query` dispatch
(plus the prefix/spatial/continuous convenience wrappers), and marketplace
operations — so a workload written once against the protocol runs
unchanged on either shape (experiment E27 exploits exactly this to compare
the per-record and columnar hot paths on identical drivers).
"""

from .dataplane import (
    ContinuousQuery,
    DataPlane,
    GatherResult,
)

__all__ = [
    "ContinuousQuery",
    "DataPlane",
    "GatherResult",
]

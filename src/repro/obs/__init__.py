"""Observability: tracing, metrics export, profiling, structured logs.

``repro.obs`` is the measurement substrate for the platform.  It adds a
request-scoped view (hierarchical :class:`Tracer` spans threaded through
the device → cloud → storage hot paths), an export path for the existing
:class:`~repro.core.metrics.MetricsRegistry` (Prometheus text + JSON
snapshots), ``@timed`` histogram hooks on operator entry points, and a
bounded span-aware :class:`LogSink`.

Conventions:

* every instrumented component accepts ``tracer: Tracer | None`` next to
  ``metrics: MetricsRegistry | None`` and defaults to a fresh
  :class:`NoopTracer`, so un-traced runs pay (almost) nothing;
* to trace end-to-end, construct one enabled :class:`Tracer` and inject
  it at the top (e.g. ``MetaversePlatform(tracer=tracer)``) — the facade
  hands it down to the broker, transaction manager, buffer pool, and
  stores, and adopts registered gateways that kept their default.
"""

from .export import (
    render_json,
    render_prometheus,
    sanitize_metric_name,
    snapshot_dict,
    write_snapshot,
)
from .logsink import LogRecord, LogSink
from .profiling import (
    profile_registry,
    profiled,
    set_profile_registry,
    timed,
    timing_summary,
)
from .tracing import NoopTracer, Span, Tracer

__all__ = [
    "LogRecord",
    "LogSink",
    "NoopTracer",
    "Span",
    "Tracer",
    "profile_registry",
    "profiled",
    "render_json",
    "render_prometheus",
    "sanitize_metric_name",
    "set_profile_registry",
    "snapshot_dict",
    "timed",
    "timing_summary",
    "write_snapshot",
]

"""Hierarchical tracing for the device-cloud-storage pipeline.

The paper's Fig. 7 architecture only pays off if we can see *where* the
data deluge lands: which tier a request spent its time in, how deep the
queues are, which cache absorbed the read.  A :class:`Tracer` produces
hierarchical :class:`Span` records — ``span_id``/``parent_id`` pairs with
start/end timestamps — threaded through the hot paths by the components
themselves (``DeviceGateway.flush`` → ``MetaversePlatform.flush_gateways``
→ ``Broker.publish`` → ``TransactionManager.commit`` → ``BufferPool`` /
``KVStore`` reads).

Design points:

* **Context propagation is a stack.**  The platform is single-threaded
  simulated code, so the active span is simply the top of a per-tracer
  stack; ``with tracer.span("name"):`` pushes/pops it.  Components that
  share a tracer instance therefore nest automatically.
* **Time is pluggable.**  ``time_fn`` defaults to ``time.perf_counter``
  (wall clock); pass a :class:`~repro.core.clock.SimulationClock` (clocks
  are callable) to stamp spans in simulated seconds instead.
* **Memory is bounded.**  Finished spans live in a ``deque(maxlen=...)``;
  overflow increments ``dropped_spans`` rather than growing without bound.
* **Overhead is bounded by head sampling.**  ``sample_every=k`` records
  one trace in ``k``: the keep/suppress decision is made once per *root*
  span and children inherit it, so sampled traces are always complete
  trees.  ``sample_every=1`` (the default) records everything — right for
  tests and debugging; the always-on production configuration uses a
  larger ``k`` to amortise the per-span recording cost on hot paths
  (``bench_obs_overhead.py`` quantifies both).
* **Disabled tracing is free.**  :class:`NoopTracer` returns a shared
  no-op context manager from :meth:`span`, so an un-instrumented run pays
  one attribute lookup and one call per site (`bench_obs_overhead.py`
  measures this at well under a microsecond per span site).
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from typing import Any, Callable, Iterator

from ..core.errors import ConfigurationError

__all__ = ["Span", "Tracer", "NoopTracer"]


class Span:
    """One timed operation in a trace tree.

    Spans are their own context managers: entering returns the span,
    exiting stamps ``end``, marks any in-flight exception on
    ``attributes["error"]``, and hands the span back to its tracer.
    """

    __slots__ = (
        "span_id", "parent_id", "name", "start", "end", "attributes",
        "_tracer",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        name: str,
        start: float,
        attributes: dict[str, Any] | None = None,
        tracer: "Tracer | None" = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: float | None = None
        self.attributes: dict[str, Any] = attributes if attributes is not None else {}
        self._tracer = tracer

    @property
    def duration(self) -> float:
        """Seconds between start and end (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def is_root(self) -> bool:
        return self.parent_id is None

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        # Finishing is inlined here (rather than delegated back to the
        # tracer) because this runs once per span on hot paths.
        tracer = self._tracer
        self.end = tracer._time_fn()
        if exc_type is not None:
            self.attributes["error"] = exc_type.__name__
        stack = tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        else:  # tolerate exceptional / out-of-order exits
            while stack:
                if stack.pop() is self:
                    break
        finished = tracer._finished
        if len(finished) == tracer.max_spans:
            tracer.dropped_spans += 1
        finished.append(self)
        return False

    def __repr__(self) -> str:
        return (
            f"Span(id={self.span_id}, parent={self.parent_id}, "
            f"name={self.name!r}, duration={self.duration:.6f})"
        )


class _NoopSpan:
    """Shared do-nothing context manager for disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attribute(self, key: str, value: Any) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class _SuppressedSpan:
    """Boundary handle for a sampled-out (sub-)trace.

    One instance per tracer, handed out only at the span site where the
    keep/suppress decision fell to *suppress*.  Exiting it lifts the
    suppression; span sites nested inside the suppressed region get the
    plain shared no-op span, so they cost the same as disabled tracing
    and only one boundary is ever active at a time.
    """

    __slots__ = ("_tracer",)

    def __init__(self, tracer: "Tracer") -> None:
        self._tracer = tracer

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._suppressing = False
        return False

    def set_attribute(self, key: str, value: Any) -> None:
        return None


class Tracer:
    """Produces and collects hierarchical spans.

    Parameters
    ----------
    time_fn:
        Zero-argument callable returning "now" in seconds.  Defaults to
        ``time.perf_counter``; pass a ``SimulationClock`` for sim time.
    max_spans:
        Bound on retained *finished* spans (oldest dropped first).
    sink:
        Optional :class:`~repro.obs.logsink.LogSink`; :meth:`log` writes
        span-annotated structured records into it.
    sample_every:
        Record one trace in this many (head sampling, decided at the root
        span; children always follow their root's decision).  ``1``
        records every trace.
    """

    enabled: bool = True

    def __init__(
        self,
        time_fn: Callable[[], float] | None = None,
        max_spans: int = 10_000,
        sink: "Any | None" = None,
        sample_every: int = 1,
    ) -> None:
        if max_spans < 1:
            raise ConfigurationError("max_spans must be >= 1")
        if sample_every < 1:
            raise ConfigurationError("sample_every must be >= 1")
        self._time_fn = time_fn if time_fn is not None else time.perf_counter
        self._ids = itertools.count(1)
        self._stack: list[Span] = []
        self._finished: deque[Span] = deque(maxlen=max_spans)
        self.max_spans = max_spans
        self.dropped_spans = 0
        self.sink = sink
        self.sample_every = sample_every
        self.sampled_out = 0
        self._trace_seq = 0
        self._suppressing = False
        self._suppressed = _SuppressedSpan(self)

    # -- span lifecycle ----------------------------------------------------

    def span(self, name: str, **attributes: Any) -> Span | _SuppressedSpan:
        """Open a child span of the currently active span.

        Use as a context manager::

            with tracer.span("broker.publish", topic=pub.topic) as span:
                ...

        Inside a sampled-out trace this yields ``None`` instead of a
        :class:`Span`, so guard attribute access accordingly.
        """
        if self._suppressing:
            return _NOOP_SPAN
        stack = self._stack
        if not stack and self.sample_every > 1:
            seq = self._trace_seq
            self._trace_seq = seq + 1
            if seq % self.sample_every:
                self.sampled_out += 1
                self._suppressing = True
                return self._suppressed
        # Hot path: build the span without re-entering Span.__init__.
        span = Span.__new__(Span)
        span.span_id = next(self._ids)
        span.parent_id = stack[-1].span_id if stack else None
        span.name = name
        span.start = self._time_fn()
        span.end = None
        span.attributes = attributes
        span._tracer = self
        stack.append(span)
        return span

    def sampled_span(self, name: str, **attributes: Any) -> Span | _SuppressedSpan:
        """Open a span that is itself a sampling boundary.

        Use at per-request span sites nested inside a long-lived batch
        trace (e.g. one purchase out of thousands under a single
        ``process_purchases`` root): with ``sample_every=k`` one call in
        ``k`` records a full sub-trace and the rest suppress theirs, so
        recording cost amortises per request rather than per batch.
        With ``sample_every=1`` this is exactly :meth:`span`.
        """
        if self._suppressing:
            return _NOOP_SPAN
        k = self.sample_every
        if k > 1:
            seq = self._trace_seq
            self._trace_seq = seq + 1
            if seq % k:
                self.sampled_out += 1
                self._suppressing = True
                return self._suppressed
        return self.span(name, **attributes)

    @property
    def active_span(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    # -- structured logging -------------------------------------------------

    def log(self, level: str, message: str, **fields: Any) -> None:
        """Emit a structured log record annotated with the active span."""
        if self.sink is None:
            return
        active = self.active_span
        self.sink.log(
            level,
            message,
            timestamp=self._time_fn(),
            span_id=active.span_id if active else None,
            span_name=active.name if active else None,
            **fields,
        )

    # -- inspection --------------------------------------------------------

    def finished_spans(self) -> list[Span]:
        """Finished spans, oldest first (bounded by ``max_spans``)."""
        return list(self._finished)

    def spans_named(self, name: str) -> list[Span]:
        return [s for s in self._finished if s.name == name]

    def children_of(self, span_id: int) -> list[Span]:
        return [s for s in self._finished if s.parent_id == span_id]

    def roots(self) -> list[Span]:
        """Finished spans whose parent never finished into the buffer."""
        finished_ids = {s.span_id for s in self._finished}
        return [
            s
            for s in self._finished
            if s.parent_id is None or s.parent_id not in finished_ids
        ]

    def walk(self) -> Iterator[tuple[Span, int]]:
        """Yield (span, depth) pairs in tree order, children by start time."""
        by_parent: dict[int | None, list[Span]] = {}
        finished_ids = {s.span_id for s in self._finished}
        for span in self._finished:
            parent = (
                span.parent_id if span.parent_id in finished_ids else None
            )
            by_parent.setdefault(parent, []).append(span)

        def visit(parent: int | None, depth: int) -> Iterator[tuple[Span, int]]:
            for span in sorted(
                by_parent.get(parent, []), key=lambda s: (s.start, s.span_id)
            ):
                yield span, depth
                yield from visit(span.span_id, depth + 1)

        yield from visit(None, 0)

    def render_tree(self) -> str:
        """Human-readable indented rendering of the span forest."""
        lines = []
        for span, depth in self.walk():
            attrs = (
                " " + " ".join(f"{k}={v}" for k, v in sorted(span.attributes.items()))
                if span.attributes
                else ""
            )
            lines.append(
                f"{'  ' * depth}{span.name} "
                f"({span.duration * 1000:.3f} ms){attrs}"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        self._stack.clear()
        self._finished.clear()
        self.dropped_spans = 0
        self.sampled_out = 0
        self._trace_seq = 0
        self._suppressing = False


class NoopTracer(Tracer):
    """A disabled tracer: records nothing, costs (almost) nothing.

    This is the default every instrumented component constructs when no
    tracer is injected, mirroring the ``MetricsRegistry`` default-to-fresh
    semantics while keeping un-traced runs at full speed.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(max_spans=1)

    def span(self, name: str, **attributes: Any) -> _NoopSpan:  # type: ignore[override]
        return _NOOP_SPAN

    def sampled_span(self, name: str, **attributes: Any) -> _NoopSpan:  # type: ignore[override]
        return _NOOP_SPAN

    def log(self, level: str, message: str, **fields: Any) -> None:
        return None

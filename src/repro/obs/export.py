"""Metrics export: Prometheus text format and JSON snapshots.

The existing :class:`~repro.core.metrics.MetricsRegistry` is a purely
in-process namespace; this module gives it an export path so benchmarks,
``run_experiments.py``, and external scrapers can consume comparable
metrics per run:

* :func:`render_prometheus` — the Prometheus text exposition format.
  Counters and gauges map directly; histograms are rendered as summaries
  (``name{quantile="0.5"}`` …, plus ``_count`` and ``_sum`` series).
* :func:`render_json` / :func:`snapshot_dict` — a structured dictionary
  with full quantile detail, suitable for dumping next to experiment
  tables and diffing across runs.
* :func:`write_snapshot` — writes both formats to disk and returns paths.

Metric names are sanitized to the Prometheus charset (``[a-zA-Z0-9_:]``);
dotted names like ``kv.puts`` become ``kv_puts``.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from ..core.metrics import Histogram, MetricsRegistry

__all__ = [
    "render_prometheus",
    "render_json",
    "snapshot_dict",
    "write_snapshot",
    "sanitize_metric_name",
]

QUANTILES = (0.5, 0.9, 0.95, 0.99)

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_LEAD = re.compile(r"^[^a-zA-Z_:]")


def sanitize_metric_name(name: str) -> str:
    """Map an internal dotted metric name onto the Prometheus charset."""
    out = _INVALID_CHARS.sub("_", name)
    if _INVALID_LEAD.match(out):
        out = "_" + out
    return out


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _histogram_detail(histogram: Histogram) -> dict[str, float | None]:
    detail: dict[str, float | None] = {
        "count": float(histogram.count),
        "sum": histogram.total,
        "mean": histogram.mean,
        "min": histogram.minimum,
        "max": histogram.maximum,
    }
    for q in QUANTILES:
        key = f"p{int(q * 100)}"
        detail[key] = histogram.quantile(q) if histogram.count else None
    return detail


def render_prometheus(registry: MetricsRegistry, prefix: str = "") -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: list[str] = []
    prefix = sanitize_metric_name(prefix) + "_" if prefix else ""
    for name, counter in sorted(registry.all_counters().items()):
        metric = prefix + sanitize_metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(counter.value)}")
    for name, gauge in sorted(registry.all_gauges().items()):
        metric = prefix + sanitize_metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(gauge.value)}")
    for name, histogram in sorted(registry.all_histograms().items()):
        metric = prefix + sanitize_metric_name(name)
        lines.append(f"# TYPE {metric} summary")
        if histogram.count:
            for q in QUANTILES:
                lines.append(
                    f'{metric}{{quantile="{q}"}} '
                    f"{_format_value(histogram.quantile(q))}"
                )
        lines.append(f"{metric}_count {_format_value(float(histogram.count))}")
        lines.append(f"{metric}_sum {_format_value(histogram.total)}")
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot_dict(registry: MetricsRegistry) -> dict:
    """Structured snapshot: counters, gauges, and histogram summaries."""
    return {
        "counters": {
            name: counter.value
            for name, counter in sorted(registry.all_counters().items())
        },
        "gauges": {
            name: gauge.value
            for name, gauge in sorted(registry.all_gauges().items())
        },
        "histograms": {
            name: _histogram_detail(histogram)
            for name, histogram in sorted(registry.all_histograms().items())
        },
    }


def render_json(registry: MetricsRegistry, indent: int = 2) -> str:
    return json.dumps(snapshot_dict(registry), indent=indent, sort_keys=True)


def write_snapshot(
    registry: MetricsRegistry,
    directory: str | Path,
    basename: str = "metrics",
    prefix: str = "",
) -> tuple[Path, Path]:
    """Write ``<basename>.prom`` and ``<basename>.json`` under ``directory``.

    Returns the two paths (Prometheus text first).  The directory is
    created if missing, so experiment drivers can point at a per-run
    artifact folder.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    prom_path = directory / f"{basename}.prom"
    json_path = directory / f"{basename}.json"
    prom_path.write_text(render_prometheus(registry, prefix=prefix))
    json_path.write_text(render_json(registry) + "\n")
    return prom_path, json_path

"""Span-aware structured logging with bounded memory.

A :class:`LogSink` collects :class:`LogRecord` entries — structured
``(timestamp, level, message, fields)`` tuples, optionally annotated with
the tracing span that was active when they were emitted — into a
``deque(maxlen=capacity)`` so that long experiment runs cannot grow the
log without bound.  Records can be filtered by level/span and rendered as
JSON lines for offline analysis.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..core.errors import ConfigurationError

LEVELS = ("debug", "info", "warning", "error")


@dataclass(frozen=True)
class LogRecord:
    """One structured log entry."""

    timestamp: float
    level: str
    message: str
    span_id: int | None = None
    span_name: str | None = None
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "ts": self.timestamp,
            "level": self.level,
            "msg": self.message,
        }
        if self.span_id is not None:
            out["span_id"] = self.span_id
            out["span_name"] = self.span_name
        out.update(self.fields)
        return out


class LogSink:
    """Bounded in-memory collector of structured log records."""

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        self.capacity = capacity
        self._records: deque[LogRecord] = deque(maxlen=capacity)
        self.dropped = 0

    def log(
        self,
        level: str,
        message: str,
        timestamp: float = 0.0,
        span_id: int | None = None,
        span_name: str | None = None,
        **fields: Any,
    ) -> LogRecord:
        if level not in LEVELS:
            raise ConfigurationError(
                f"unknown log level {level!r}; expected one of {LEVELS}"
            )
        record = LogRecord(
            timestamp=timestamp,
            level=level,
            message=message,
            span_id=span_id,
            span_name=span_name,
            fields=fields,
        )
        if len(self._records) == self._records.maxlen:
            self.dropped += 1
        self._records.append(record)
        return record

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def records(
        self, level: str | None = None, span_id: int | None = None
    ) -> list[LogRecord]:
        out = list(self._records)
        if level is not None:
            out = [r for r in out if r.level == level]
        if span_id is not None:
            out = [r for r in out if r.span_id == span_id]
        return out

    def to_json_lines(self) -> str:
        return "\n".join(
            json.dumps(r.to_dict(), sort_keys=True, default=str)
            for r in self._records
        )

    def clear(self) -> None:
        self._records.clear()
        self.dropped = 0

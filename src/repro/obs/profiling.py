"""Lightweight profiling hooks: ``@timed`` histograms for operator code.

``@timed("subsystem.op")`` wraps a function or method and records its
wall-clock duration (seconds) into a :class:`Histogram`:

* on a **method** whose object carries a ``metrics`` attribute that is a
  :class:`MetricsRegistry` (the repo-wide injection convention), samples
  land in that registry — so a platform-owned component reports into the
  platform's registry automatically;
* otherwise samples land in the module-global *profile registry*
  (:func:`profile_registry`), which benchmarks can swap out per run with
  :func:`set_profile_registry` or temporarily with :func:`profiled`.

The decorator costs two ``perf_counter`` calls plus one histogram append
per invocation, so it belongs on operator-granularity entry points
(``execute``, ``fuse``, ``query_visible``) rather than per-row inner loops.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, TypeVar

from ..core.metrics import Histogram, MetricsRegistry

__all__ = ["timed", "profile_registry", "set_profile_registry", "profiled"]

F = TypeVar("F", bound=Callable[..., Any])

_registry = MetricsRegistry()


def profile_registry() -> MetricsRegistry:
    """The global registry receiving ``@timed`` samples from free functions."""
    return _registry


def set_profile_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the global profile registry; returns the previous one."""
    global _registry
    previous = _registry
    _registry = registry
    return previous


@contextmanager
def profiled(registry: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:
    """Scope the global profile registry to a fresh (or given) instance::

        with profiled() as reg:
            execute(plan)
        print(reg.histogram("query.execute").p99())
    """
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_profile_registry(registry)
    try:
        yield registry
    finally:
        set_profile_registry(previous)


def timed(name: str, registry: MetricsRegistry | None = None) -> Callable[[F], F]:
    """Decorate a callable to record durations into ``histogram(name)``."""

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            target = registry
            if target is None:
                owner_metrics = getattr(args[0], "metrics", None) if args else None
                target = (
                    owner_metrics
                    if isinstance(owner_metrics, MetricsRegistry)
                    else _registry
                )
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                target.histogram(name).observe(time.perf_counter() - start)

        wrapper.__timed_metric__ = name  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate


def timing_summary(
    registry: MetricsRegistry | None = None,
) -> dict[str, dict[str, float]]:
    """Compact {metric: {count, mean, p95}} view of recorded timings."""
    registry = registry if registry is not None else _registry
    out: dict[str, dict[str, float]] = {}
    for name, histogram in registry.all_histograms().items():
        if not isinstance(histogram, Histogram) or not histogram.count:
            continue
        out[name] = {
            "count": float(histogram.count),
            "mean": histogram.mean,
            "p95": histogram.p95(),
        }
    return out

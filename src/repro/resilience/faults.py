"""Deterministic fault injection (paper Sec. IV; Ismail & Buyya's
fault-tolerance requirement for realtime virtual worlds).

A metaverse platform must keep serving under sensor dropout, network
partitions, and node failures.  Before this module, faults existed only in
tests; here they become a first-class, *seeded* input to the system itself:
a :class:`FaultPlan` declares which instrumented sites misbehave (and how
often, and when), and a :class:`FaultInjector` turns the plan into
per-operation decisions drawn from a private ``random.Random(seed)`` — the
same seed and call sequence always produce the same faults, so chaos runs
are exactly reproducible.

Instrumented sites (components consult the injector at these points):

========================  =========================================
site                      component
========================  =========================================
``net.link``              :class:`~repro.net.simnet.SimulatedNetwork`
``kv.get`` / ``kv.put``   :class:`~repro.storage.kv.KVStore`
``wal.append``            :class:`~repro.storage.wal.WriteAheadLog`
``broker.publish``        :class:`~repro.net.pubsub.Broker`
``gateway.ingest``        :class:`~repro.platform.gateway.DeviceGateway`
``cluster.ingest``        :class:`~repro.cluster.cluster.PlatformCluster`
``cluster.query``         :class:`~repro.cluster.cluster.PlatformCluster`
``cluster.replicate``     :class:`~repro.cluster.failover.ShardReplicator`
``storage.rpc``           :class:`~repro.storage.engine.RemoteStorageEngine`
``geo.wan``               :class:`~repro.geo.deployment.GeoDeployment`
========================  =========================================

Fault kinds: ``crash`` (the site raises
:class:`~repro.core.errors.FaultInjectedError`), ``delay`` (extra latency),
``drop`` (the operation is silently discarded), ``corrupt`` (the payload is
damaged in a checksum-detectable way), and ``partition`` (the link behaves
as severed for this send).  Every injected fault is counted in the metrics
registry and logged through the tracer, so recovery dashboards can plot
fault rate against recovered-request rate (experiment E23).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterable

from ..core.clock import SimulationClock
from ..core.errors import ConfigurationError, FaultInjectedError
from ..core.metrics import MetricsRegistry
from ..obs.tracing import NoopTracer, Tracer

FAULT_KINDS = ("crash", "delay", "drop", "corrupt", "partition")

#: The canonical fault kind injected per site by :meth:`FaultPlan.uniform`.
DEFAULT_SITE_KINDS: dict[str, str] = {
    "net.link": "drop",
    "kv.get": "crash",
    "kv.put": "crash",
    "wal.append": "corrupt",
    "broker.publish": "crash",
    "gateway.ingest": "drop",
    "cluster.ingest": "drop",
    "cluster.query": "crash",
    "cluster.replicate": "drop",
    "storage.rpc": "crash",
    "geo.wan": "drop",
}


@dataclass(frozen=True)
class FaultRule:
    """One declarative fault: *at this site, with this probability, do this*.

    ``site`` supports the same ``prefix.*`` wildcard as pub/sub topics, so
    ``kv.*`` covers both ``kv.get`` and ``kv.put``.  ``target`` optionally
    narrows the rule to one link (``"a->b"``), key, or topic.  ``start``
    and ``end`` bound the active window in simulated seconds, which lets a
    plan model a transient outage rather than a permanent failure rate.
    """

    site: str
    kind: str
    rate: float
    delay_s: float = 0.0
    start: float = 0.0
    end: float = math.inf
    target: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.delay_s < 0:
            raise ConfigurationError("delay_s must be >= 0")
        if self.start > self.end:
            raise ConfigurationError("fault window start must not exceed end")

    def matches_site(self, site: str) -> bool:
        if self.site == "*" or self.site == site:
            return True
        if self.site.endswith(".*"):
            return site.startswith(self.site[:-1])
        return False

    def applies(self, site: str, target: str | None, now: float) -> bool:
        if not self.start <= now <= self.end:
            return False
        if self.target is not None and target != self.target:
            return False
        return self.matches_site(site)


@dataclass(frozen=True)
class FaultDecision:
    """The injector's verdict for one operation (``kind=None`` = proceed)."""

    kind: str | None = None
    delay_s: float = 0.0
    rule: FaultRule | None = None

    @property
    def faulted(self) -> bool:
        return self.kind is not None


NO_FAULT = FaultDecision()


@dataclass
class FaultPlan:
    """A seeded collection of :class:`FaultRule`.

    The seed belongs to the plan (not the injector) so that a plan fully
    describes a chaos scenario: plan + call sequence = fault sequence.
    """

    rules: list[FaultRule] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        self.rules = list(self.rules)

    @classmethod
    def uniform(
        cls,
        rate: float,
        sites: Iterable[str] | None = None,
        seed: int = 0,
        delay_s: float = 0.005,
    ) -> "FaultPlan":
        """Each listed site faults independently at ``rate``, using that
        site's canonical kind (see :data:`DEFAULT_SITE_KINDS`)."""
        chosen = list(sites) if sites is not None else list(DEFAULT_SITE_KINDS)
        rules = []
        for site in chosen:
            kind = DEFAULT_SITE_KINDS.get(site, "crash")
            rules.append(FaultRule(site=site, kind=kind, rate=rate, delay_s=delay_s))
        return cls(rules=rules, seed=seed)

    def rules_for(self, site: str) -> tuple[FaultRule, ...]:
        return tuple(rule for rule in self.rules if rule.matches_site(site))


class FaultInjector:
    """Turns a :class:`FaultPlan` into deterministic per-operation decisions.

    Components call :meth:`decide` at their instrumented site, passing the
    fault ``kinds`` they know how to act on; rules of other kinds never
    fire there, so a plan cannot silently inject a fault the component
    would ignore.  One RNG draw is consumed per applicable rule per call,
    which keeps the fault sequence a pure function of (plan, call order).
    """

    def __init__(
        self,
        plan: FaultPlan,
        clock: SimulationClock | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.plan = plan
        self.clock = clock if clock is not None else SimulationClock()
        # Adoption flags mirror DeviceGateway.tracer_injected: a platform
        # adopts an injector's default registry/tracer into its own, so
        # fault counters land where the rest of the pipeline's metrics do.
        self.metrics_injected = metrics is not None
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer_injected = tracer is not None
        self.tracer = tracer if tracer is not None else NoopTracer()
        self._rng = random.Random(plan.seed)
        self._site_rules: dict[str, tuple[FaultRule, ...]] = {}
        self.injected = 0

    def _rules_for(self, site: str) -> tuple[FaultRule, ...]:
        cached = self._site_rules.get(site)
        if cached is None:
            cached = self.plan.rules_for(site)
            self._site_rules[site] = cached
        return cached

    def decide(
        self,
        site: str,
        target: str | None = None,
        kinds: tuple[str, ...] = FAULT_KINDS,
    ) -> FaultDecision:
        """Return the fault (if any) to inject for one operation at ``site``."""
        rules = self._rules_for(site)
        if not rules:
            return NO_FAULT
        now = self.clock.now
        for rule in rules:
            if rule.kind not in kinds or not rule.applies(site, target, now):
                continue
            if self._rng.random() < rule.rate:
                self._record(site, rule)
                return FaultDecision(kind=rule.kind, delay_s=rule.delay_s, rule=rule)
        return NO_FAULT

    def maybe_crash(self, site: str, target: str | None = None) -> None:
        """Shorthand for sites whose only supported fault is ``crash``."""
        if self.decide(site, target, kinds=("crash",)).faulted:
            raise FaultInjectedError(f"injected crash at {site}" + (
                f" ({target})" if target else ""
            ))

    def _record(self, site: str, rule: FaultRule) -> None:
        self.injected += 1
        self.metrics.counter("faults.injected").inc()
        self.metrics.counter(f"faults.injected.{rule.kind}").inc()
        self.metrics.counter(f"faults.site.{site}").inc()
        self.tracer.log("warn", "fault injected", site=site, kind=rule.kind)

    def __repr__(self) -> str:
        return (
            f"FaultInjector(rules={len(self.plan.rules)}, seed={self.plan.seed}, "
            f"injected={self.injected})"
        )

"""Graceful degradation: trade fidelity for availability under faults.

The paper's "low resolution instead of late" principle (Sec. IV-C/IV-I)
applied to failure handling: when the platform observes a degraded link or
a failing downstream, it serves *something* — a stale cached read, a
coarser LOD — rather than nothing.  :class:`DegradationController` is the
shared monitor: components report operation outcomes into a sliding
window, and when the observed failure rate trips the threshold, every
attached :class:`~repro.streamlod.adaptive.AdaptiveStreamer` has its frame
budget cut (halved per step by default), shrinking bandwidth demand until
the fault clears; sustained success restores the budget step by step.
"""

from __future__ import annotations

from collections import deque

from ..core.errors import ConfigurationError
from ..core.metrics import MetricsRegistry
from ..obs.tracing import NoopTracer, Tracer
from ..streamlod.adaptive import AdaptiveStreamer


class DegradationController:
    """Sliding-window failure monitor driving LOD downgrades.

    Parameters
    ----------
    window:
        Number of recent outcomes considered; decisions need a full window.
    trip_rate:
        Failure fraction at or above which one more downgrade step applies.
    recover_rate:
        Failure fraction at or below which one step is restored.
    downgrade_factor:
        Per-step multiplier on attached streamers' frame budgets.
    max_steps:
        Floor on degradation (budget never drops below
        ``downgrade_factor ** max_steps`` of baseline).
    """

    def __init__(
        self,
        window: int = 64,
        trip_rate: float = 0.2,
        recover_rate: float = 0.02,
        downgrade_factor: float = 0.5,
        max_steps: int = 3,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        if not 0.0 < trip_rate <= 1.0:
            raise ConfigurationError("trip_rate must be in (0, 1]")
        if not 0.0 <= recover_rate < trip_rate:
            raise ConfigurationError("recover_rate must be in [0, trip_rate)")
        if not 0.0 < downgrade_factor < 1.0:
            raise ConfigurationError("downgrade_factor must be in (0, 1)")
        if max_steps < 1:
            raise ConfigurationError("max_steps must be >= 1")
        self.window = window
        self.trip_rate = trip_rate
        self.recover_rate = recover_rate
        self.downgrade_factor = downgrade_factor
        self.max_steps = max_steps
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NoopTracer()
        self._outcomes: deque[bool] = deque(maxlen=window)
        self._streamers: list[tuple[AdaptiveStreamer, int]] = []
        self.level = 0

    # -- wiring ------------------------------------------------------------

    def attach(self, streamer: AdaptiveStreamer) -> None:
        """Manage ``streamer``'s frame budget (its current budget is baseline)."""
        self._streamers.append((streamer, streamer.frame_budget_bytes))
        self._apply()

    # -- observation -------------------------------------------------------

    def observe(self, ok: bool) -> None:
        """Report one operation outcome; may trigger a downgrade/restore."""
        self._outcomes.append(ok)
        if len(self._outcomes) < self.window:
            return
        rate = self.failure_rate()
        if rate >= self.trip_rate and self.level < self.max_steps:
            self._step(+1, rate)
        elif rate <= self.recover_rate and self.level > 0:
            self._step(-1, rate)

    def failure_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return 1.0 - sum(self._outcomes) / len(self._outcomes)

    @property
    def degraded(self) -> bool:
        return self.level > 0

    # -- internals ---------------------------------------------------------

    def _step(self, direction: int, rate: float) -> None:
        self.level += direction
        verb = "degraded" if direction > 0 else "restored"
        self.metrics.counter(f"resilience.degradation.{verb}").inc()
        self.metrics.gauge("resilience.degradation.level").set(float(self.level))
        self.tracer.log(
            "warn" if direction > 0 else "info",
            f"LOD budget {verb}", step=self.level, failure_rate=rate,
        )
        # A full fresh window must accumulate before the next step, so one
        # burst cannot cascade straight to the floor.
        self._outcomes.clear()
        self._apply()

    def _apply(self) -> None:
        factor = self.downgrade_factor**self.level
        for streamer, baseline in self._streamers:
            streamer.set_frame_budget(max(1, int(baseline * factor)))

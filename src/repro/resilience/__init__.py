"""Resilience: deterministic fault injection and the policies that survive it.

``repro.resilience`` makes failure a first-class, reproducible input to the
platform (the paper's Sec. IV keeps-serving requirement).  Two halves:

* **Injection** — :class:`FaultPlan` + :class:`FaultInjector` attach seeded
  crash/delay/drop/corrupt/partition faults to the instrumented hot paths
  (network links, KV/WAL IO, broker publish, gateway ingest).
* **Recovery** — :class:`RetryPolicy` (exponential backoff, deterministic
  jitter), :class:`CircuitBreaker` (closed/open/half-open with simulated
  cooldown), :class:`Timeout`/:class:`Deadline` guards, and
  :class:`DegradationController` (stale reads / LOD downgrade instead of
  unavailability).

Both halves run off the shared :class:`~repro.core.clock.SimulationClock`
and report through :mod:`repro.obs`, so every injected fault and every
recovery decision is visible in the same metrics/trace artifacts as the
requests they affect (experiment E23).
"""

from .degrade import DegradationController
from .faults import (
    DEFAULT_SITE_KINDS,
    FAULT_KINDS,
    FaultDecision,
    FaultInjector,
    FaultPlan,
    FaultRule,
)
from .policies import CircuitBreaker, Deadline, RetryPolicy, Timeout

__all__ = [
    "DEFAULT_SITE_KINDS",
    "FAULT_KINDS",
    "CircuitBreaker",
    "Deadline",
    "DegradationController",
    "FaultDecision",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
    "Timeout",
]

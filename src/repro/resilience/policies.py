"""Recovery policies: retry with backoff, circuit breaking, timeouts.

These are the behaviours that *survive* the faults
:mod:`repro.resilience.faults` injects.  All three are clock-driven off the
same :class:`~repro.core.clock.SimulationClock` the rest of the platform
uses, so recovery timing is deterministic and testable: a retry "sleeps" by
advancing simulated time, and a circuit breaker's cooldown expires when the
simulation says so, not when the wall clock does.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, TypeVar

from ..core.clock import SimulationClock
from ..core.errors import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    FaultInjectedError,
)
from ..core.metrics import MetricsRegistry
from ..obs.tracing import NoopTracer, Tracer

T = TypeVar("T")


class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    The delay before retry ``i`` (0-based) is::

        min(max_delay_s, base_delay_s * multiplier ** i) * (1 - jitter * u_i)

    where ``u_i`` is the i-th draw from a private ``random.Random(seed)`` —
    two policies with the same seed produce the same delay sequence
    (property-tested), while ``jitter > 0`` still de-synchronises retry
    storms across policies with different seeds.  Sleeping means advancing
    the simulated clock, so backoff interacts correctly with time-windowed
    fault plans and breaker cooldowns.
    """

    def __init__(
        self,
        max_attempts: int = 4,
        base_delay_s: float = 0.01,
        multiplier: float = 2.0,
        max_delay_s: float = 1.0,
        jitter: float = 0.5,
        seed: int = 0,
        clock: SimulationClock | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if base_delay_s < 0 or max_delay_s < 0:
            raise ConfigurationError("delays must be >= 0")
        if multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1")
        if not 0.0 <= jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0, 1]")
        self.max_attempts = max_attempts
        self.base_delay_s = base_delay_s
        self.multiplier = multiplier
        self.max_delay_s = max_delay_s
        self.jitter = jitter
        self.seed = seed
        self.clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NoopTracer()
        self._rng = random.Random(seed)

    def compute_delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (consumes one jitter draw)."""
        raw = min(self.max_delay_s, self.base_delay_s * self.multiplier**attempt)
        return raw * (1.0 - self.jitter * self._rng.random())

    def planned_delays(self) -> list[float]:
        """The full backoff schedule this policy would use, in order.

        Consumes the same RNG stream as :meth:`call`, so inspect it on a
        fresh policy (or one re-seeded via a new instance).
        """
        return [self.compute_delay(i) for i in range(self.max_attempts - 1)]

    def call(
        self,
        fn: Callable[[], T],
        retry_on: tuple[type[BaseException], ...] = (FaultInjectedError,),
        on_retry: Callable[[int, float, BaseException], None] | None = None,
    ) -> T:
        """Invoke ``fn``, retrying transient failures with backoff.

        Raises the last exception once attempts are exhausted.  Counters:
        ``resilience.retries`` (each backoff taken),
        ``resilience.retry.recovered`` (a retry eventually succeeded),
        ``resilience.retry.exhausted`` (gave up).
        """
        last: BaseException | None = None
        for attempt in range(self.max_attempts):
            try:
                result = fn()
            except retry_on as exc:
                last = exc
                if attempt == self.max_attempts - 1:
                    break
                delay = self.compute_delay(attempt)
                self.metrics.counter("resilience.retries").inc()
                self.tracer.log(
                    "info", "retrying after fault",
                    attempt=attempt + 1, delay_s=delay, error=type(exc).__name__,
                )
                if self.clock is not None:
                    self.clock.advance(delay)
                if on_retry is not None:
                    on_retry(attempt, delay, exc)
            else:
                if attempt:
                    self.metrics.counter("resilience.retry.recovered").inc()
                return result
        self.metrics.counter("resilience.retry.exhausted").inc()
        assert last is not None
        raise last


class CircuitBreaker:
    """Closed → open → half-open breaker with a clock-driven cooldown.

    * **closed**: calls flow; ``failure_threshold`` consecutive failures
      trip the breaker open.
    * **open**: calls are rejected (:class:`CircuitOpenError`) until
      ``cooldown_s`` of simulated time has passed.
    * **half-open**: probe calls flow; ``half_open_successes`` consecutive
      successes re-close the breaker, any failure re-opens it (and restarts
      the cooldown).

    The gauge ``resilience.breaker.<name>.state`` exports 0/1/2 for
    closed/half-open/open so E23-style artifacts can plot trips.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_s: float = 30.0,
        half_open_successes: int = 2,
        clock: SimulationClock | None = None,
        name: str = "default",
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if cooldown_s <= 0:
            raise ConfigurationError("cooldown_s must be positive")
        if half_open_successes < 1:
            raise ConfigurationError("half_open_successes must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.half_open_successes = half_open_successes
        self.clock = clock if clock is not None else SimulationClock()
        self.name = name
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NoopTracer()
        self._state = self.CLOSED
        self._failures = 0
        self._probe_successes = 0
        self._opened_at = 0.0
        self.trips = 0

    @property
    def state(self) -> str:
        """Current state; an expired cooldown lazily moves open → half-open."""
        if self._state == self.OPEN and (
            self.clock.now - self._opened_at >= self.cooldown_s
        ):
            self._transition(self.HALF_OPEN)
        return self._state

    def allow(self) -> bool:
        """Whether a call may proceed right now."""
        if self.state == self.OPEN:
            self.metrics.counter(f"resilience.breaker.{self.name}.rejected").inc()
            return False
        return True

    def record_success(self) -> None:
        state = self.state
        if state == self.HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.half_open_successes:
                self._transition(self.CLOSED)
        elif state == self.CLOSED:
            self._failures = 0

    def record_failure(self) -> None:
        state = self.state
        if state == self.HALF_OPEN:
            self._trip()
        elif state == self.CLOSED:
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._trip()

    def call(self, fn: Callable[[], T]) -> T:
        """Guard ``fn``: reject when open, record the outcome otherwise."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit {self.name!r} is open "
                f"(cooldown {self.cooldown_s}s from t={self._opened_at})"
            )
        try:
            result = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    def _trip(self) -> None:
        self.trips += 1
        self._opened_at = self.clock.now
        self.metrics.counter(f"resilience.breaker.{self.name}.opened").inc()
        self._transition(self.OPEN)

    def _transition(self, state: str) -> None:
        self._state = state
        self._failures = 0
        self._probe_successes = 0
        gauge = {self.CLOSED: 0.0, self.HALF_OPEN: 1.0, self.OPEN: 2.0}[state]
        self.metrics.gauge(f"resilience.breaker.{self.name}.state").set(gauge)
        self.tracer.log("info", "breaker transition", breaker=self.name, state=state)


@dataclass(frozen=True)
class Timeout:
    """A declarative time budget; :meth:`guard` binds it to a clock."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds <= 0:
            raise ConfigurationError("timeout must be positive")

    def deadline_from(self, now: float) -> float:
        return now + self.seconds

    def guard(self, clock: SimulationClock, label: str = "") -> "Deadline":
        return Deadline(clock, self.deadline_from(clock.now), label)


class Deadline:
    """A live deadline against a simulated clock."""

    def __init__(self, clock: SimulationClock, at: float, label: str = "") -> None:
        self.clock = clock
        self.at = at
        self.label = label

    @property
    def remaining(self) -> float:
        return max(0.0, self.at - self.clock.now)

    @property
    def expired(self) -> bool:
        return self.clock.now >= self.at

    def check(self) -> None:
        """Raise :class:`DeadlineExceededError` if the deadline has passed."""
        if self.expired:
            label = f" ({self.label})" if self.label else ""
            raise DeadlineExceededError(
                f"deadline{label} exceeded at t={self.clock.now:.6f} "
                f"(deadline was {self.at:.6f})"
            )

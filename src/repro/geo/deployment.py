"""Geo-distributed multi-region deployment with tunable consistency.

The paper's Sec. IV-E puts metaverse workloads on wide-area
inter-data-center links; this module runs N :class:`PlatformCluster`\\ s
as named *regions* joined by a shared :class:`SimulatedNetwork` WAN with
realistic per-region-pair latencies.  Each region is the *home* for the
keys it owns on a region-level consistent-hash ring (plus explicit
follow-the-user overrides via :meth:`GeoDeployment.rehome_entity` /
:meth:`~GeoDeployment.rehome_product`); writes commit at the home region
and replicate asynchronously by shipping absolute post-state replica-log
entries (:mod:`repro.geo.replication`) over the WAN.

Reads take a per-call consistency mode:

* ``eventual`` — served by the caller's own region from whatever replica
  state it holds: zero WAN latency, bounded staleness, stays available
  through WAN partitions and remote-region outages.
* ``read_your_writes`` — a :class:`GeoSession` carries a vector of
  per-home high-water LSNs; the local read is used only when the local
  copy's watermark has caught up to the session's writes, otherwise the
  read transparently upgrades to the home-region round trip.
* ``linearizable`` — a home-region round trip under a
  :class:`~repro.resilience.policies.Deadline`, retry policy, and
  per-home circuit breaker; during a WAN partition it fails fast with
  :class:`DeadlineExceededError` instead of serving stale state.

WAN faults are injected under the ``geo.wan`` site (partition / drop /
delay), independent from single-region ``net.link`` plans.  A dropped
replication entry leaves a visible LSN hole repaired by Merkle
anti-entropy; an unreachable destination gets hinted handoff.  Region
kills use the outage model: the region's state survives, writes to its
home keys are deferred (ingest) or fail fast (purchases — never queued,
preserving exactly-once), and a restart drains deferrals, hints, and
anti-entropy until every copy reconverges.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..api.dataplane import GatherResult
from ..cluster.cluster import PlatformCluster
from ..cluster.config import ClusterConfig
from ..cluster.router import ShardRouter
from ..core.clock import EventScheduler
from ..core.errors import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    FaultInjectedError,
    KeyNotFoundError,
    NetworkError,
    PartitionedError,
)
from ..core.metrics import MetricsRegistry
from ..core.records import DataRecord
from ..net.simnet import Link, Message, SimulatedNetwork
from ..obs.tracing import NoopTracer, Tracer
from ..platform.platform import (
    PurchaseOutcome,
    purchase_sort_key,
    stored_record_value,
)
from ..query.plane import (
    QueryExecutor,
    QueryModality,
    QueryPlan,
    QueryRequest,
    prefix_query,
)
from ..resilience.faults import FaultInjector, FaultPlan
from ..resilience.policies import CircuitBreaker, RetryPolicy, Timeout
from ..workloads.marketplace import PurchaseRequest
from .replication import GeoReplicator

__all__ = [
    "CONSISTENCY_MODES",
    "EVENTUAL",
    "GeoConfig",
    "GeoDeployment",
    "GeoSession",
    "LINEARIZABLE",
    "READ_YOUR_WRITES",
]

EVENTUAL = "eventual"
READ_YOUR_WRITES = "read_your_writes"
LINEARIZABLE = "linearizable"
CONSISTENCY_MODES = (EVENTUAL, READ_YOUR_WRITES, LINEARIZABLE)


@dataclass
class GeoConfig:
    """Validated construction parameters for :class:`GeoDeployment`.

    ``wan_latencies_s`` maps unordered region pairs ``(a, b)`` to one-way
    propagation latency in seconds; pairs without an entry use
    ``default_wan_latency_s``.  ``cluster`` is the per-region template
    (every region runs an identical cluster); it defaults to a small
    2-shard cluster.
    """

    regions: tuple[str, ...] = ("us-east", "eu-west", "ap-south")
    cluster: ClusterConfig | None = None
    region_vnodes: int = 32
    default_wan_latency_s: float = 0.04
    wan_latencies_s: dict = field(default_factory=dict)
    wan_bandwidth_bps: float = 2e8
    rpc_bytes: int = 512
    rpc_timeout_s: float = 0.06
    linearizable_timeout_s: float = 0.25
    read_max_attempts: int = 3
    read_retry_base_s: float = 0.02
    breaker_failure_threshold: int = 4
    breaker_cooldown_s: float = 1.0
    antientropy_interval_s: float = 0.5
    compact_threshold: int | None = 4096
    seed: int = 0

    def validate(self) -> "GeoConfig":
        regions = tuple(self.regions)
        if len(regions) < 2:
            raise ConfigurationError("a geo deployment needs >= 2 regions")
        if len(set(regions)) != len(regions):
            raise ConfigurationError(f"duplicate region names: {regions}")
        for name in regions:
            if not name or not isinstance(name, str):
                raise ConfigurationError(f"invalid region name: {name!r}")
        for pair, latency in self.wan_latencies_s.items():
            if len(pair) != 2 or pair[0] == pair[1]:
                raise ConfigurationError(f"WAN latency key must be a region pair: {pair!r}")
            for name in pair:
                if name not in regions:
                    raise ConfigurationError(f"WAN latency names unknown region {name!r}")
            if latency <= 0:
                raise ConfigurationError(f"WAN latency must be positive: {pair!r}")
        if self.default_wan_latency_s <= 0:
            raise ConfigurationError("default_wan_latency_s must be positive")
        if self.wan_bandwidth_bps <= 0:
            raise ConfigurationError("wan_bandwidth_bps must be positive")
        if self.rpc_bytes < 1:
            raise ConfigurationError("rpc_bytes must be >= 1")
        if self.rpc_timeout_s <= 0 or self.linearizable_timeout_s <= 0:
            raise ConfigurationError("RPC and linearizable timeouts must be positive")
        if self.read_max_attempts < 1:
            raise ConfigurationError("read_max_attempts must be >= 1")
        if self.read_retry_base_s < 0:
            raise ConfigurationError("read_retry_base_s must be >= 0")
        if self.breaker_failure_threshold < 1:
            raise ConfigurationError("breaker_failure_threshold must be >= 1")
        if self.breaker_cooldown_s <= 0:
            raise ConfigurationError("breaker_cooldown_s must be positive")
        if self.antientropy_interval_s <= 0:
            raise ConfigurationError("antientropy_interval_s must be positive")
        if self.compact_threshold is not None and self.compact_threshold < 2:
            raise ConfigurationError("compact_threshold must be >= 2 (or None)")
        if self.region_vnodes < 1:
            raise ConfigurationError("region_vnodes must be >= 1")
        if self.cluster is not None:
            self.cluster.validate()
            if self.cluster.elasticity is not None:
                # The controller adds/removes shards behind the geo layer's
                # back, which would bypass the purchase-log chaining that
                # feeds cross-region replication.
                raise ConfigurationError(
                    "per-region elasticity is not supported under a geo deployment"
                )
        return self


@dataclass
class GeoSession:
    """Per-client read-your-writes token.

    ``vector`` maps home region -> highest LSN this client's writes
    reached in that home's replication log.  A read at region R can be
    served locally iff R's copy of the home log has caught up to the
    vector entry; otherwise it upgrades to the home round trip.
    """

    vector: dict[str, int] = field(default_factory=dict)

    def observe(self, region: str, lsn: int | None) -> None:
        if lsn:
            self.vector[region] = max(self.vector.get(region, 0), lsn)


class GeoDeployment:
    """N regional clusters over a simulated WAN with tunable consistency."""

    def __init__(
        self,
        config: GeoConfig | None = None,
        faults: FaultInjector | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.config = (config if config is not None else GeoConfig()).validate()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NoopTracer()
        # One injector (and hence one simulated clock) is shared by the WAN,
        # every region cluster, and all resilience policies: a fault plan's
        # time windows and each region's timeouts advance the same time.
        self.faults = faults if faults is not None else FaultInjector(FaultPlan())
        self.clock = self.faults.clock
        self.scheduler = EventScheduler(self.clock)
        # The WAN deliberately carries no fault injector: single-region
        # ``net.link`` plans must not leak onto inter-region links.  WAN
        # faults are decided here under the ``geo.wan`` site instead.
        self.wan = SimulatedNetwork(
            self.scheduler,
            default_link=Link(
                latency_s=self.config.default_wan_latency_s,
                bandwidth_bps=self.config.wan_bandwidth_bps,
            ),
            metrics=self.metrics,
            tracer=self.tracer,
        )
        for pair, latency in sorted(self.config.wan_latencies_s.items()):
            a, b = pair
            self.wan.set_link(
                self._node(a),
                self._node(b),
                Link(latency_s=latency, bandwidth_bps=self.config.wan_bandwidth_bps),
                symmetric=True,
            )
        template = (
            self.config.cluster
            if self.config.cluster is not None
            else ClusterConfig(n_shards=2, n_executors_per_shard=2)
        )
        self._ring = ShardRouter(vnodes=self.config.region_vnodes, metrics=self.metrics)
        self._clusters: dict[str, PlatformCluster] = {}
        for name in self.config.regions:
            self._ring.add_shard(name)
            self.wan.add_node(self._node(name)).on("geo.repl", self._on_repl)
            # Every region cluster gets the *geo* registry/tracer: the
            # cluster constructor rebinds faults.metrics to whatever it is
            # handed, so handing each region its own registry would leave
            # the shared injector counting into only the last one.
            cluster = PlatformCluster(
                config=template,
                faults=self.faults,
                metrics=self.metrics,
                tracer=self.tracer,
            )
            self._clusters[name] = cluster
            for shard in cluster.shards.values():
                self._chain_purchase_log(name, shard)
        self.replicator = GeoReplicator(
            self.config.regions,
            metrics=self.metrics,
            compact_threshold=self.config.compact_threshold,
        )
        self._home_override: dict[str, str] = {}
        self._down: set[str] = set()
        self._deferred: dict[str, list[DataRecord]] = {}
        self._last_antientropy = self.clock.now
        # Highest home-log LSN applied to each replica's state, per key.
        # Absolute post-states are only safe to apply in LSN order; WAN
        # serialization delays can reorder same-instant ships (a smaller
        # payload overtakes a larger one), so an entry older than what a
        # replica already applied is adopted into the copy log but must
        # not overwrite the newer state.
        self._applied_lsn: dict[tuple[str, str], dict[str, int]] = {}
        self._read_retry = RetryPolicy(
            max_attempts=self.config.read_max_attempts,
            base_delay_s=self.config.read_retry_base_s,
            max_delay_s=4 * self.config.read_retry_base_s,
            seed=self.config.seed,
            clock=self.clock,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        self._breakers = {
            name: CircuitBreaker(
                failure_threshold=self.config.breaker_failure_threshold,
                cooldown_s=self.config.breaker_cooldown_s,
                clock=self.clock,
                name=f"geo.{name}",
                metrics=self.metrics,
                tracer=self.tracer,
            )
            for name in self.config.regions
        }
        # Query-plane executor: plans/rewrites once per geo query; the
        # regions' clusters then run the resolved plan as-is.
        self.query_executor = QueryExecutor()

    # -- topology ----------------------------------------------------------

    def _node(self, region: str) -> str:
        return f"wan/{region}"

    def region(self, name: str) -> PlatformCluster:
        """The named region's cluster (tests, direct workload drivers)."""
        try:
            return self._clusters[name]
        except KeyError:
            raise ConfigurationError(f"unknown region {name!r}") from None

    @property
    def down_regions(self) -> tuple[str, ...]:
        return tuple(sorted(self._down))

    def home_of(self, key: str) -> str:
        """The region authoritative for ``key`` (override, else ring)."""
        override = self._home_override.get(key)
        return override if override is not None else self._ring.owner_of(key)

    def _resolve_region(self, region: str | None) -> str:
        name = region if region is not None else self.config.regions[0]
        if name not in self._clusters:
            raise ConfigurationError(f"unknown region {name!r}")
        if name in self._down:
            raise NetworkError(f"client region {name!r} is down")
        return name

    def _chain_purchase_log(self, region: str, shard) -> None:
        """Tap committed stock levels into this region's replication log
        without displacing an intra-region failover hook."""
        inner = shard.purchase_log

        def hook(product_id, stock, _region=region, _inner=inner):
            if _inner is not None:
                _inner(product_id, stock)
            self._on_stock_commit(_region, product_id, stock)

        shard.purchase_log = hook

    # -- WAN primitives ----------------------------------------------------

    def _wan_reachable(self, a: str, b: str) -> bool:
        if a in self._down or b in self._down:
            return False
        return not self.wan.is_partitioned(self._node(a), self._node(b))

    def _wan_rpc(self, src: str, dst: str) -> float:
        """One synchronous round trip ``src -> dst -> src``.

        Advances the shared clock by the RTT on success and by
        ``rpc_timeout_s`` on failure, so deadlines expire deterministically
        while a destination stays unreachable.
        """
        if src == dst:
            return 0.0
        if src in self._down or dst in self._down:
            self.clock.advance(self.config.rpc_timeout_s)
            self.metrics.counter("geo.rpc.timeouts").inc()
            down = dst if dst in self._down else src
            raise PartitionedError(f"region {down!r} is down")
        extra = 0.0
        decision = self.faults.decide(
            "geo.wan", target=f"{src}->{dst}", kinds=("partition", "drop", "delay")
        )
        if decision.kind == "partition":
            self.clock.advance(self.config.rpc_timeout_s)
            self.metrics.counter("geo.rpc.timeouts").inc()
            raise PartitionedError(f"injected WAN partition {src} -> {dst}")
        if decision.kind == "drop":
            self.clock.advance(self.config.rpc_timeout_s)
            self.metrics.counter("geo.rpc.timeouts").inc()
            raise FaultInjectedError(f"injected WAN drop {src} -> {dst}")
        if decision.kind == "delay":
            extra = decision.delay_s
        if self.wan.is_partitioned(self._node(src), self._node(dst)):
            self.clock.advance(self.config.rpc_timeout_s)
            self.metrics.counter("geo.rpc.timeouts").inc()
            raise PartitionedError(f"{src} -> {dst} is partitioned")
        there = self.wan.link_for(self._node(src), self._node(dst))
        back = self.wan.link_for(self._node(dst), self._node(src))
        rtt = (
            there.transfer_delay(self.config.rpc_bytes)
            + back.transfer_delay(self.config.rpc_bytes)
            + extra
        )
        self.clock.advance(rtt)
        self.metrics.counter("geo.rpc.round_trips").inc()
        self.metrics.histogram("geo.rpc.rtt_s").observe(rtt)
        return rtt

    # -- replication: ship / deliver / apply -------------------------------

    def _replicate(self, home: str, op: dict) -> int:
        lsn, payload = self.replicator.log_op(home, op, self.clock.now)
        for dst in self.config.regions:
            if dst != home:
                self._ship(home, dst, lsn, payload)
        return lsn

    def _ship(self, home: str, dst: str, lsn: int, payload: bytes) -> bool:
        # Once a pair has hints queued, everything later must queue behind
        # them so hints drain in log order; the per-key applied-LSN guard
        # at delivery is the backstop for any reordering that remains.
        if dst in self._down or self.replicator.has_hints(home, dst):
            self.replicator.buffer_hint(home, dst, lsn, payload)
            return False
        decision = self.faults.decide(
            "geo.wan", target=f"{home}->{dst}", kinds=("partition", "drop", "delay")
        )
        if decision.kind == "partition":
            self.replicator.buffer_hint(home, dst, lsn, payload)
            return False
        if decision.kind == "drop":
            # Lost on the WAN with no sender-side signal: a visible LSN
            # hole in the destination copy until anti-entropy repairs it.
            self.metrics.counter("geo.repl.dropped").inc()
            return False
        if decision.kind == "delay":
            self.scheduler.schedule(
                decision.delay_s,
                lambda home=home, dst=dst, lsn=lsn, payload=payload: (
                    self._ship_now(home, dst, lsn, payload)
                ),
            )
            return True
        return self._ship_now(home, dst, lsn, payload)

    def _ship_now(self, home: str, dst: str, lsn: int, payload: bytes) -> bool:
        try:
            self.wan.send(
                self._node(home),
                self._node(dst),
                "geo.repl",
                {"home": home, "lsn": lsn, "data": payload},
                size_bytes=len(payload) + 64,
            )
        except PartitionedError:
            self.replicator.buffer_hint(home, dst, lsn, payload)
            return False
        self.metrics.counter("geo.repl.shipped").inc()
        return True

    def _on_repl(self, message: Message) -> None:
        dst = message.dst.split("/", 1)[1]
        home = message.payload["home"]
        lsn = message.payload["lsn"]
        data = message.payload["data"]
        if dst in self._down:
            # The destination died with the entry in flight: it was never
            # processed, so park it for handoff at restart.
            self.replicator.buffer_hint(home, dst, lsn, data)
            return
        op = self.replicator.deliver(home, dst, lsn, data)
        if op is None:
            return
        applied = self._applied_lsn.setdefault((home, dst), {})
        key = op.get("k")
        if lsn <= applied.get(key, -1):
            # An entry that arrived behind a newer post-state for the same
            # key: keep it in the copy log (no hole) but do not let it
            # regress the replica's state.
            self.metrics.counter("geo.repl.out_of_order").inc()
            return
        applied[key] = lsn
        self._apply_op(dst, home, op)

    def _apply_op(self, region: str, home: str, op: dict) -> None:
        """Fold one home-log op into ``region``'s replica state."""
        key = op.get("k")
        if self.home_of(key) != home:
            # The key re-homed after this op was logged; the new home's
            # log is authoritative and will overwrite.
            self.metrics.counter("geo.repl.stale_ignored").inc()
            return
        cluster = self._clusters[region]
        shard = cluster.shards[cluster.router.owner_of(key)]
        kind = op.get("op")
        if kind == "entity":
            shard.import_entity(key, op["v"])
        elif kind == "drop_entity":
            try:
                shard.drop_entity(key)
            except KeyNotFoundError:
                pass
        elif kind == "product":
            shard.import_product(key, dict(op["v"]))
        elif kind == "drop_product":
            try:
                shard.drop_product(key)
            except KeyNotFoundError:
                pass
        elif kind == "stock":
            value = cluster._committed_product(key)
            value = dict(value) if value is not None else {}
            value["stock"] = int(op["stock"])
            shard.import_product(key, value)
        self.metrics.counter("geo.repl.applied").inc()

    def _on_stock_commit(self, region: str, product_id: str, stock: int) -> None:
        self._replicate(region, {"op": "stock", "k": product_id, "stock": int(stock)})

    # -- hinted handoff / anti-entropy -------------------------------------

    def _deliver_hints(self) -> None:
        for home in self.config.regions:
            for dst in self.config.regions:
                if dst == home or not self.replicator.has_hints(home, dst):
                    continue
                if not self._wan_reachable(home, dst):
                    continue
                decision = self.faults.decide(
                    "geo.wan", target=f"{home}->{dst}", kinds=("partition",)
                )
                if decision.kind == "partition":
                    continue
                delivered = 0
                for lsn, payload in self.replicator.take_hints(home, dst):
                    if self._ship_now(home, dst, lsn, payload):
                        delivered += 1
                if delivered:
                    self.metrics.counter("geo.repl.hints_delivered").inc(delivered)

    def _antientropy_round(self) -> None:
        """Reconverge every reachable (home, destination) pair.

        The replicator rebuilds a diverged copy from the primary; the
        entries the destination had never adopted are *folded* — replayed
        in LSN order over the whole copy for just the affected keys — so
        repairing an old hole can never regress a newer applied state.
        """
        for home in self.config.regions:
            if home in self._down:
                continue
            for dst in self.config.regions:
                if dst == home or dst in self._down:
                    continue
                if not self._wan_reachable(home, dst):
                    continue
                decision = self.faults.decide(
                    "geo.wan", target=f"{home}->{dst}", kinds=("partition",)
                )
                if decision.kind == "partition":
                    continue
                missing = self.replicator.antientropy(home, dst)
                if missing:
                    self._apply_folded(dst, home, missing)

    def _apply_folded(self, region: str, home: str, missing: list) -> None:
        affected = {
            json.loads(payload.decode("utf-8")).get("k") for _, payload in missing
        }
        entity_final: dict[str, tuple] = {}
        product_final: dict[str, dict | None] = {}
        applied = self._applied_lsn.setdefault((home, region), {})
        for entry in self.replicator.copy_entries(home, region):
            op = json.loads(entry.payload.decode("utf-8"))
            key = op.get("k")
            if key not in affected:
                continue
            applied[key] = max(applied.get(key, -1), entry.lsn)
            kind = op.get("op")
            if kind == "entity":
                entity_final[key] = ("set", op["v"])
            elif kind == "drop_entity":
                entity_final[key] = ("drop", None)
            elif kind == "product":
                product_final[key] = dict(op["v"])
            elif kind == "drop_product":
                product_final[key] = None
            elif kind == "stock":
                base = product_final.get(key)
                base = dict(base) if base else {}
                base["stock"] = int(op["stock"])
                product_final[key] = base
        cluster = self._clusters[region]
        for key in sorted(entity_final):
            if self.home_of(key) != home:
                self.metrics.counter("geo.repl.stale_ignored").inc()
                continue
            action, value = entity_final[key]
            shard = cluster.shards[cluster.router.owner_of(key)]
            if action == "set":
                shard.import_entity(key, value)
            else:
                try:
                    shard.drop_entity(key)
                except KeyNotFoundError:
                    pass
        for key in sorted(product_final):
            if self.home_of(key) != home:
                self.metrics.counter("geo.repl.stale_ignored").inc()
                continue
            value = product_final[key]
            shard = cluster.shards[cluster.router.owner_of(key)]
            if value is None:
                try:
                    shard.drop_product(key)
                except KeyNotFoundError:
                    pass
            else:
                shard.import_product(key, dict(value))

    # -- writes ------------------------------------------------------------

    def write_record(
        self,
        record: DataRecord,
        region: str | None = None,
        session: GeoSession | None = None,
    ) -> int | None:
        """Write-through at the record's home region; returns the home-log
        LSN (``None`` when the home is down and the write was deferred)."""
        home = self.home_of(record.key)
        if home in self._down:
            self._deferred.setdefault(home, []).append(record)
            self.metrics.counter("geo.writes.deferred").inc()
            return None
        if region is not None:
            submitted = self._resolve_region(region)
            if submitted != home:
                # The client's region forwards to the home region: a WAN
                # partition surfaces here, before anything mutates.
                self._wan_rpc(submitted, home)
                self.metrics.counter("geo.writes.forwarded").inc()
        self._clusters[home].write_record(record)
        lsn = self._replicate(
            home, {"op": "entity", "k": record.key, "v": stored_record_value(record)}
        )
        if session is not None:
            session.observe(home, lsn)
        self.metrics.counter("geo.writes").inc()
        return lsn

    def ingest(
        self,
        record: DataRecord,
        region: str | None = None,
        session: GeoSession | None = None,
    ) -> int | None:
        return self.write_record(record, region=region, session=session)

    def ingest_many(
        self,
        records: list[DataRecord],
        region: str | None = None,
        session: GeoSession | None = None,
    ) -> list[int | None]:
        return [self.write_record(r, region=region, session=session) for r in records]

    def load_catalog(self, records: list[DataRecord]) -> None:
        by_home: dict[str, list[DataRecord]] = {}
        for record in records:
            by_home.setdefault(self.home_of(record.key), []).append(record)
        for home in sorted(by_home):
            if home in self._down:
                raise NetworkError(f"cannot load catalog: region {home!r} is down")
            batch = by_home[home]
            self._clusters[home].load_catalog(batch)
            for record in batch:
                self._replicate(
                    home, {"op": "product", "k": record.key, "v": dict(record.payload)}
                )

    def process_purchases(
        self, requests: list[PurchaseRequest], max_retries: int = 2
    ) -> list[PurchaseOutcome]:
        """Route purchases to their products' home regions.

        The stream is globally presorted with the single-node sort key and
        re-merged positionally, so per-product decisions match a
        single-region run.  Purchases against a down home region fail fast
        (never queued): queueing would risk double-execution when the
        region restarts — the same exactly-once stance the intra-region
        failover path takes.
        """
        if not requests:
            return []
        physical_priority = self._clusters[self.config.regions[0]].physical_priority
        ordered = sorted(
            requests, key=lambda r: purchase_sort_key(r, physical_priority)
        )
        by_home: dict[str, list[PurchaseRequest]] = {}
        for request in ordered:
            by_home.setdefault(self.home_of(request.product_id), []).append(request)
        outcome_streams: dict[str, list[PurchaseOutcome]] = {}
        for home in sorted(by_home):
            batch = by_home[home]
            if home in self._down:
                outcome_streams[home] = [
                    PurchaseOutcome(request, False, f"region down: {home}")
                    for request in batch
                ]
                self.metrics.counter("geo.purchases.rejected_region_down").inc(
                    len(batch)
                )
                continue
            outcome_streams[home] = self._clusters[home].process_purchases(
                batch, max_retries=max_retries
            )
        cursor = {home: 0 for home in outcome_streams}
        merged: list[PurchaseOutcome] = []
        for request in ordered:
            home = self.home_of(request.product_id)
            merged.append(outcome_streams[home][cursor[home]])
            cursor[home] += 1
        self.metrics.counter("geo.purchases").inc(len(requests))
        return merged

    # -- reads -------------------------------------------------------------

    def read(
        self,
        key: str,
        consistency: str = EVENTUAL,
        region: str | None = None,
        session: GeoSession | None = None,
    ):
        """Point read under the requested consistency mode."""
        return self._read(
            key, consistency, region, session, lambda cluster: cluster.read(key)
        )

    def get_stock(
        self,
        product_id: str,
        consistency: str = EVENTUAL,
        region: str | None = None,
        session: GeoSession | None = None,
    ) -> int:
        """Product stock under the requested consistency mode."""
        return self._read(
            product_id,
            consistency,
            region,
            session,
            lambda cluster: cluster.get_stock(product_id),
        )

    def _read(self, key, consistency, region, session, local):
        if consistency not in CONSISTENCY_MODES:
            raise ConfigurationError(
                f"unknown consistency mode {consistency!r}; "
                f"expected one of {CONSISTENCY_MODES}"
            )
        via = self._resolve_region(region)
        home = self.home_of(key)
        started = self.clock.now
        try:
            if consistency == EVENTUAL:
                value = local(self._clusters[via])
            elif consistency == READ_YOUR_WRITES:
                value = self._read_ryw(via, home, session, local)
            else:
                value = self._read_linearizable(via, home, local)
        finally:
            self.metrics.histogram(f"geo.read.latency.{consistency}").observe(
                self.clock.now - started
            )
        self.metrics.counter(f"geo.read.{consistency}").inc()
        return value

    def _read_ryw(self, via, home, session, local):
        needed = session.vector.get(home, 0) if session is not None else 0
        if via == home or self.replicator.watermark(home, via) >= needed:
            self.metrics.counter("geo.read.ryw_local").inc()
            return local(self._clusters[via])
        # The local copy has not caught up to this session's writes:
        # upgrade to the home round trip rather than violate RYW.
        self.metrics.counter("geo.read.ryw_upgraded").inc()
        return self._read_linearizable(via, home, local)

    def _read_linearizable(self, via, home, local):
        guard = Timeout(self.config.linearizable_timeout_s).guard(
            self.clock, label=f"geo.read.{home}"
        )
        breaker = self._breakers[home]

        def attempt():
            guard.check()
            if via != home:
                self._wan_rpc(via, home)
            return local(self._clusters[home])

        try:
            return breaker.call(
                lambda: self._read_retry.call(
                    attempt, retry_on=(PartitionedError, FaultInjectedError)
                )
            )
        except DeadlineExceededError:
            self.metrics.counter("geo.read.linearizable_failed").inc()
            raise
        except (PartitionedError, FaultInjectedError, CircuitOpenError) as exc:
            self.metrics.counter("geo.read.linearizable_failed").inc()
            raise DeadlineExceededError(
                f"linearizable read via {via!r} of home {home!r} failed: {exc}"
            ) from exc

    # -- follow-the-user re-homing -----------------------------------------

    def rehome_entity(self, key: str, to_region: str) -> str:
        """Move ``key``'s authoritative home to ``to_region``."""
        return self._rehome(key, to_region, product=False)

    def rehome_product(self, product_id: str, to_region: str) -> str:
        """Move a product's authoritative home (stock moves with it)."""
        return self._rehome(product_id, to_region, product=True)

    def _rehome(self, key: str, to_region: str, product: bool) -> str:
        if to_region not in self._clusters:
            raise ConfigurationError(f"unknown region {to_region!r}")
        old = self.home_of(key)
        if old == to_region:
            return old
        if old in self._down or to_region in self._down:
            self.metrics.counter("geo.rehome.aborted").inc()
            down = old if old in self._down else to_region
            raise NetworkError(f"cannot re-home {key!r}: region {down!r} is down")
        try:
            # The handoff round trip runs before any state moves, so a WAN
            # partition aborts the re-home atomically: home map, both
            # clusters, and both logs are untouched.
            self._wan_rpc(old, to_region)
        except (PartitionedError, FaultInjectedError) as exc:
            self.metrics.counter("geo.rehome.aborted").inc()
            raise PartitionedError(f"re-home of {key!r} aborted: {exc}") from exc
        src, dst = self._clusters[old], self._clusters[to_region]
        if product:
            value = src._committed_product(key)
            if value is None:
                raise KeyNotFoundError(key)
            dst.shards[dst.router.owner_of(key)].import_product(key, dict(value))
            self._home_override[key] = to_region
            self._replicate(to_region, {"op": "product", "k": key, "v": dict(value)})
        else:
            value = src.shards[src.router.owner_of(key)].export_entity(key)
            dst.shards[dst.router.owner_of(key)].import_entity(key, value)
            self._home_override[key] = to_region
            self._replicate(to_region, {"op": "entity", "k": key, "v": value})
        # The old home keeps its copy as a plain replica; ops still in its
        # log for this key are ignored at apply time (home guard), and the
        # new home's full-state op overwrites every copy.
        self.metrics.counter("geo.rehomes").inc()
        return to_region

    # -- region lifecycle / WAN control ------------------------------------

    def kill_region(self, name: str) -> None:
        """Take a region down (outage model: its state survives)."""
        if name not in self._clusters:
            raise ConfigurationError(f"unknown region {name!r}")
        if name in self._down:
            raise ConfigurationError(f"region {name!r} is already down")
        self._down.add(name)
        self.metrics.counter("geo.region.kills").inc()
        self.metrics.gauge("geo.regions.down").set(float(len(self._down)))

    def restart_region(self, name: str) -> None:
        """Bring a region back; deferred writes land immediately, hints and
        anti-entropy reconverge its copies on the following ticks."""
        if name not in self._down:
            raise ConfigurationError(f"region {name!r} is not down")
        self._down.discard(name)
        self.metrics.counter("geo.region.restarts").inc()
        self.metrics.gauge("geo.regions.down").set(float(len(self._down)))
        for record in self._deferred.pop(name, []):
            self.write_record(record)

    def partition_regions(self, groups) -> None:
        """Split the WAN into isolated region groups (chaos drills)."""
        self.wan.partition_group(
            [[self._node(region) for region in group] for group in groups]
        )
        self.metrics.counter("geo.wan.partitions").inc()

    def heal_wan(self) -> None:
        self.wan.heal_all()
        self.metrics.counter("geo.wan.heals").inc()

    # -- time --------------------------------------------------------------

    def tick(self, dt: float) -> None:
        """Advance the shared clock once and run every region's sub-steps.

        Region clusters share one clock (via the shared injector), so this
        must not call ``cluster.tick`` — that would advance time once per
        region.  Instead each live region's flush/failover/storage steps
        run against the single advance made here.
        """
        if dt < 0:
            raise ConfigurationError(f"dt must be >= 0, got {dt}")
        self.clock.advance(dt)
        now = self.clock.now
        self.scheduler.run_until(now)
        for name in self.config.regions:
            if name in self._down:
                continue
            cluster = self._clusters[name]
            cluster.flush()
            if cluster.failover is not None:
                cluster.failover.tick()
            cluster.maintain_storage()
        self._deliver_hints()
        if now - self._last_antientropy >= self.config.antientropy_interval_s:
            self._last_antientropy = now
            self._antientropy_round()
        for home in self.config.regions:
            if self.replicator.should_compact(home):
                self.replicator.compact(home)
        self._refresh_gauges()

    def _refresh_gauges(self) -> None:
        now = self.clock.now
        max_lag, max_stale = 0, 0.0
        for home in self.config.regions:
            for dst in self.config.regions:
                if dst == home:
                    continue
                lag = self.replicator.lag(home, dst)
                stale = self.replicator.staleness_s(home, dst, now)
                self.metrics.gauge(f"geo.replication.lag.{home}.{dst}").set(float(lag))
                self.metrics.gauge(
                    f"geo.replication.staleness_s.{home}.{dst}"
                ).set(stale)
                max_lag = max(max_lag, lag)
                max_stale = max(max_stale, stale)
        self.metrics.gauge("geo.replication.lag_max").set(float(max_lag))
        self.metrics.gauge("geo.replication.staleness_s_max").set(max_stale)

    # -- fan-out queries ---------------------------------------------------

    def query(
        self,
        request: QueryRequest,
        consistency: str = EVENTUAL,
        region: str | None = None,
        session: GeoSession | None = None,
    ) -> GatherResult:
        """Fan one query-plane request out under a per-call consistency mode.

        Like point reads, fan-out queries choose which replicas answer:

        * ``eventual`` — served entirely by the caller's region from its
          local replica state: zero WAN traffic, bounded staleness,
          available through partitions and remote outages.
        * ``read_your_writes`` — served locally only when the caller
          region's replication watermarks cover the session's writes for
          every home; otherwise transparently upgraded to the
          authoritative fan-out.
        * ``linearizable`` — the authoritative fan-out: each live region
          answers for exactly the keys it is home for.  With an explicit
          caller ``region``, reaching each remote home pays (and
          accounts) a WAN round trip, and an unreachable home makes the
          result partial instead of stale; with ``region=None`` (the
          operator view — what :meth:`scan_prefix` uses) the gather is
          costed as intra-DC.

        Any registered modality rides this path — the geo layer resolves
        the plan once and never looks at what the modality is.
        """
        if consistency not in CONSISTENCY_MODES:
            raise ConfigurationError(
                f"unknown consistency mode {consistency!r}; "
                f"expected one of {CONSISTENCY_MODES}"
            )
        modality, plan = self.query_executor.resolve(request)
        if consistency == EVENTUAL:
            result = self._query_local(
                modality, plan, self._resolve_region(region)
            )
        elif consistency == READ_YOUR_WRITES:
            via = self._resolve_region(region)
            if self._session_covered(via, session):
                self.metrics.counter("geo.query.ryw_local").inc()
                result = self._query_local(modality, plan, via)
            else:
                # The local copy has not caught up to this session's
                # writes: upgrade to the authoritative fan-out rather
                # than violate RYW.
                self.metrics.counter("geo.query.ryw_upgraded").inc()
                result = self._query_homes(modality, plan, via=via)
        else:
            result = self._query_homes(modality, plan, via=region)
        self.metrics.counter(f"geo.query.{consistency}").inc()
        return result

    def _session_covered(self, via: str, session: GeoSession | None) -> bool:
        """Has ``via`` replicated everything this session wrote, for
        every home?  (No session ⇒ nothing to cover.)"""
        for home in self.config.regions:
            if home == via:
                continue
            needed = session.vector.get(home, 0) if session is not None else 0
            if self.replicator.watermark(home, via) < needed:
                return False
        return True

    def _query_local(
        self, modality: QueryModality, plan: QueryPlan, via: str
    ) -> GatherResult:
        """One region answers from whatever replica state it holds."""
        result = self._clusters[via].run_plan(modality, plan)
        failed = tuple(f"{via}/{shard}" for shard in result.failed_shards)
        if failed:
            self.metrics.counter("geo.gather.partial").inc()
        return GatherResult(items=result.items, failed_shards=failed)

    def _query_homes(
        self, modality: QueryModality, plan: QueryPlan, via: str | None = None
    ) -> GatherResult:
        """Authoritative fan-out: each region answers for its home keys.

        Each live region contributes only the keys it is authoritative
        for (its replica copies of other homes' keys are filtered out, so
        every key appears exactly once).  A down or — under an explicit
        caller region — WAN-unreachable region makes the result partial:
        its name lands in ``failed_shards`` alongside any
        ``region/shard`` entries from intra-region fan-out failures,
        rather than silently serving stale replica state.
        """
        partials: list[list] = []
        failed: list[str] = []
        for name in self.config.regions:
            if name in self._down:
                failed.append(name)
                self.metrics.counter("geo.gather.region_down").inc()
                continue
            if via is not None and via != name:
                try:
                    self._wan_rpc(via, name)
                except (PartitionedError, FaultInjectedError):
                    failed.append(name)
                    self.metrics.counter("geo.gather.region_unreachable").inc()
                    continue
            result = self._clusters[name].run_plan(modality, plan)
            partials.append(
                [
                    item
                    for item in result.items
                    if self.home_of(modality.item_key(item)) == name
                ]
            )
            failed.extend(f"{name}/{shard}" for shard in result.failed_shards)
        items = modality.merge(partials, plan)
        if failed:
            self.metrics.counter("geo.gather.partial").inc()
        return GatherResult(items=items, failed_shards=tuple(failed))

    def scan_prefix(self, prefix: str) -> GatherResult:
        """Range query over every region's *home* keyspace (the
        authoritative fan-out of :meth:`query`, operator view)."""
        return self.query(prefix_query(prefix), consistency=LINEARIZABLE)

    # -- introspection -----------------------------------------------------

    def replication_lag(self) -> dict[tuple[str, str], int]:
        """Outstanding entries per (home, destination) pair."""
        return {
            (home, dst): self.replicator.lag(home, dst)
            for home in self.config.regions
            for dst in self.config.regions
            if dst != home
        }

    def max_replication_lag(self) -> int:
        return max(self.replication_lag().values(), default=0)

"""Geo-distributed multi-region deployment (paper Sec. IV-E).

Multiple :class:`~repro.cluster.PlatformCluster`\\ s as named regions over
a simulated WAN: async cross-region replication with hinted handoff and
Merkle anti-entropy, per-call consistency modes (eventual /
read-your-writes / linearizable), follow-the-user re-homing, and
partition-tolerant routing.  See :mod:`repro.geo.deployment`.
"""

from .deployment import (
    CONSISTENCY_MODES,
    EVENTUAL,
    LINEARIZABLE,
    READ_YOUR_WRITES,
    GeoConfig,
    GeoDeployment,
    GeoSession,
)
from .replication import GeoReplicator

__all__ = [
    "CONSISTENCY_MODES",
    "EVENTUAL",
    "GeoConfig",
    "GeoDeployment",
    "GeoReplicator",
    "GeoSession",
    "LINEARIZABLE",
    "READ_YOUR_WRITES",
]

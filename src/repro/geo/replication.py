"""Cross-region replication logs: async shipping of absolute post-states.

Each region is the *home* (primary) for the keys it owns on the region
ring.  The home region appends every mutation to its primary
:class:`~repro.storage.wal.WriteAheadLog` as the same absolute
post-state op dicts :class:`~repro.cluster.failover.ShardReplicator`
uses (``entity``/``drop_entity``/``product``/``drop_product``/``stock``,
JSON-encoded with sorted keys); every other region holds a copy that
adopts the primary's LSNs verbatim via ``append_at``, so a replication
message lost on the WAN stays visible as an LSN hole instead of being
silently renumbered.

:class:`GeoReplicator` owns only the *logs and their bookkeeping* —
contiguous-prefix watermarks per (home, destination) pair, outstanding
entry counts (replication lag), log-time stamps (staleness in simulated
seconds), hinted handoff buffers for unreachable destinations, Merkle
anti-entropy diffs, and :func:`~repro.cluster.failover.compact_entries`
compaction.  Shipping entries over the simulated WAN and applying ops to
region clusters is the deployment's job (:mod:`repro.geo.deployment`),
which keeps this class deterministic and network-free.
"""

from __future__ import annotations

import json

from ..cluster.failover import _merkle_root, compact_entries
from ..core.metrics import MetricsRegistry
from ..storage.wal import WriteAheadLog

__all__ = ["GeoReplicator"]


class GeoReplicator:
    """Per-home replicated op logs with watermarks, hints, anti-entropy."""

    def __init__(
        self,
        regions,
        metrics: MetricsRegistry | None = None,
        compact_threshold: int | None = 4096,
    ) -> None:
        self.regions = tuple(regions)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.compact_threshold = compact_threshold
        self._primary = {home: WriteAheadLog() for home in self.regions}
        self._copies = {
            home: {dst: WriteAheadLog() for dst in self.regions if dst != home}
            for home in self.regions
        }
        #: LSNs each destination has adopted from each home's primary.
        self._received: dict[str, dict[str, set[int]]] = {
            home: {dst: set() for dst in self.regions if dst != home}
            for home in self.regions
        }
        # Primary LSNs in append order (rebuilt on compaction) plus a set
        # twin for O(1) membership — watermark/lag bookkeeping walks these
        # instead of rescanning the log buffer.
        self._primary_lsns: dict[str, list[int]] = {h: [] for h in self.regions}
        self._primary_set: dict[str, set[int]] = {h: set() for h in self.regions}
        self._wm: dict[str, dict[str, int]] = {
            home: {dst: 0 for dst in self.regions if dst != home}
            for home in self.regions
        }
        self._wm_idx: dict[str, dict[str, int]] = {
            home: {dst: 0 for dst in self.regions if dst != home}
            for home in self.regions
        }
        #: Primary entries not yet adopted by the destination (the lag).
        self._outstanding: dict[str, dict[str, int]] = {
            home: {dst: 0 for dst in self.regions if dst != home}
            for home in self.regions
        }
        #: Hinted handoff: entries bound for an unreachable destination,
        #: buffered in ship order as ``(lsn, payload)``.
        self._hints: dict[str, dict[str, list[tuple[int, bytes]]]] = {
            home: {dst: [] for dst in self.regions if dst != home}
            for home in self.regions
        }
        #: Simulated log time per primary LSN, for staleness-in-seconds.
        self._logged_at: dict[str, dict[int, float]] = {h: {} for h in self.regions}

    # -- primary side ------------------------------------------------------

    def log_op(self, home: str, op: dict, now: float) -> tuple[int, bytes]:
        """Append ``op`` to ``home``'s primary log; return (lsn, payload)."""
        payload = json.dumps(op, sort_keys=True).encode("utf-8")
        lsn = self._primary[home].append(payload)
        self._primary_lsns[home].append(lsn)
        self._primary_set[home].add(lsn)
        self._logged_at[home][lsn] = now
        for dst in self._outstanding[home]:
            self._outstanding[home][dst] += 1
        self.metrics.counter("geo.repl.logged").inc()
        return lsn, payload

    # -- destination side --------------------------------------------------

    def deliver(self, home: str, dst: str, lsn: int, payload: bytes) -> dict | None:
        """Adopt one shipped entry into ``dst``'s copy of ``home``'s log.

        Idempotent: hints and anti-entropy can re-ship an entry that is
        also in flight, so a duplicate LSN is skipped (returns ``None``)
        rather than applied twice.  Returns the decoded op for the caller
        to apply to the destination's cluster state.
        """
        received = self._received[home][dst]
        if lsn in received:
            self.metrics.counter("geo.repl.duplicates").inc()
            return None
        self._copies[home][dst].append_at(lsn, payload)
        received.add(lsn)
        if lsn in self._primary_set[home]:
            self._outstanding[home][dst] -= 1
        self._advance_watermark(home, dst)
        self.metrics.counter("geo.repl.delivered").inc()
        return json.loads(payload.decode("utf-8"))

    def _advance_watermark(self, home: str, dst: str) -> None:
        lsns = self._primary_lsns[home]
        received = self._received[home][dst]
        idx = self._wm_idx[home][dst]
        while idx < len(lsns) and lsns[idx] in received:
            self._wm[home][dst] = lsns[idx]
            idx += 1
        self._wm_idx[home][dst] = idx

    # -- lag / staleness ---------------------------------------------------

    def watermark(self, home: str, dst: str) -> int:
        """Highest LSN below which ``dst`` has every primary entry."""
        return self._wm[home][dst]

    def high_water(self, home: str) -> int:
        """The primary's last assigned LSN (0 when nothing logged)."""
        return self._primary[home].next_lsn - 1

    def lag(self, home: str, dst: str) -> int:
        """Primary entries not yet adopted by ``dst`` (0 = converged)."""
        return self._outstanding[home][dst]

    def staleness_s(self, home: str, dst: str, now: float) -> float:
        """Age (simulated seconds) of the oldest entry ``dst`` is missing."""
        if self._outstanding[home][dst] == 0:
            return 0.0
        idx = self._wm_idx[home][dst]
        lsns = self._primary_lsns[home]
        received = self._received[home][dst]
        while idx < len(lsns) and lsns[idx] in received:
            idx += 1
        if idx >= len(lsns):
            return 0.0
        return max(0.0, now - self._logged_at[home].get(lsns[idx], now))

    # -- hinted handoff ----------------------------------------------------

    def buffer_hint(self, home: str, dst: str, lsn: int, payload: bytes) -> None:
        """Park an entry bound for an unreachable ``dst`` (ship order)."""
        self._hints[home][dst].append((lsn, payload))
        self.metrics.counter("geo.repl.hints_buffered").inc()

    def has_hints(self, home: str, dst: str) -> bool:
        return bool(self._hints[home][dst])

    def take_hints(self, home: str, dst: str) -> list[tuple[int, bytes]]:
        """Drain the hint buffer for re-shipping (caller re-buffers on
        failure, preserving order)."""
        hints = self._hints[home][dst]
        self._hints[home][dst] = []
        return hints

    # -- anti-entropy ------------------------------------------------------

    def antientropy(self, home: str, dst: str) -> list[tuple[int, bytes]]:
        """Reconverge ``dst``'s copy with ``home``'s primary log.

        Compares Merkle roots of the two valid prefixes; on divergence the
        copy is rebuilt from the primary (the primary is authoritative
        under the outage model — a home that accepted the write defines
        the truth) and the entries ``dst`` had never adopted are returned
        for the caller to apply to the destination cluster.  Pending hints
        for the pair are dropped: the rebuild already covers them.
        """
        primary_entries, _ = self._primary[home].recover_prefix()
        copy_entries, _ = self._copies[home][dst].recover_prefix()
        if _merkle_root(primary_entries) == _merkle_root(copy_entries):
            return []
        received = self._received[home][dst]
        missing = [e for e in primary_entries if e.lsn not in received]
        self._copies[home][dst].rebuild(primary_entries)
        self._received[home][dst] = {e.lsn for e in primary_entries}
        self._hints[home][dst] = []
        self._recompute(home, dst)
        self.metrics.counter("geo.antientropy.rounds").inc()
        self.metrics.counter("geo.antientropy.repaired_entries").inc(len(missing))
        return [(e.lsn, e.payload) for e in missing]

    def _recompute(self, home: str, dst: str) -> None:
        """Rebuild watermark/lag bookkeeping after a rebuild/compaction."""
        lsns = self._primary_lsns[home]
        received = self._received[home][dst]
        wm, idx = 0, 0
        while idx < len(lsns) and lsns[idx] in received:
            wm = lsns[idx]
            idx += 1
        self._wm[home][dst] = wm
        self._wm_idx[home][dst] = idx
        self._outstanding[home][dst] = sum(
            1 for lsn in lsns if lsn not in received
        )

    # -- compaction --------------------------------------------------------

    def should_compact(self, home: str) -> bool:
        if self.compact_threshold is None:
            return False
        return len(self._primary_lsns[home]) >= self.compact_threshold

    def compact(self, home: str) -> int:
        """Collapse superseded post-states in ``home``'s primary and every
        copy (each compacted independently — a copy with holes may keep an
        op the primary dropped; the next anti-entropy round reconciles).
        Returns the number of primary entries removed."""
        entries, _ = self._primary[home].recover_prefix()
        kept = compact_entries(entries)
        removed = len(entries) - len(kept)
        self._primary[home].rebuild(kept)
        self._primary_lsns[home] = [e.lsn for e in kept]
        self._primary_set[home] = set(self._primary_lsns[home])
        kept_times = {
            lsn: t
            for lsn, t in self._logged_at[home].items()
            if lsn in self._primary_set[home]
        }
        self._logged_at[home] = kept_times
        for dst, copy in self._copies[home].items():
            copy_entries, _ = copy.recover_prefix()
            copy.rebuild(compact_entries(copy_entries))
            self._recompute(home, dst)
        self.metrics.counter("geo.repl.compactions").inc()
        self.metrics.counter("geo.repl.compacted_entries").inc(removed)
        return removed

    # -- introspection -----------------------------------------------------

    def primary_entries(self, home: str):
        """Valid entries of ``home``'s primary log (tests, audits)."""
        return self._primary[home].recover_prefix()[0]

    def copy_entries(self, home: str, dst: str):
        """Valid entries of ``dst``'s copy of ``home``'s log."""
        return self._copies[home][dst].recover_prefix()[0]

"""Horizontal scale-out: sharded platform cluster (paper Sec. IV).

``repro.cluster`` turns N single-node :class:`~repro.platform.platform.
MetaversePlatform` instances into one horizontally scaled system:

* :class:`ShardRouter` — consistent-hash (vnode) key → shard mapping;
* :class:`PlatformCluster` — the facade: batched per-tick ingest,
  scatter-gather queries with per-shard deadlines, routed purchases,
  cross-shard 2PC baskets, live rebalancing;
* :class:`CrossShardCoordinator` / :class:`ShardParticipant` — the 2PC
  bridge binding the protocol driver in :mod:`repro.txn.twopc` to
  shard-local MVCC state;
* :class:`FailoverManager` / :class:`FailureDetector` /
  :class:`ShardReplicator` — shard crash survival: heartbeat-driven
  phi-accrual detection, ring-successor log replication with hinted
  handoff, replica promotion with WAL replay, and Merkle anti-entropy
  (enable with ``ClusterConfig(n_replicas=2)``).

Disaggregated mode (``ClusterConfig(n_storage_nodes=M)``) mounts every
compute shard on a shared :class:`~repro.storage.engine.StorageTier`
instead: membership changes become pure ring remaps with zero entity
migration, and a killed compute node recovers by re-mounting the tier.

Experiment E24 (``bench_cluster_scaleout.py``) measures the scaling
claim; E25 (``bench_cluster_failover.py``) the crash-survival claim;
E26 (``bench_disaggregated_scaleout.py``) the compute/storage split.
"""

from .cluster import BasketOutcome, GatherResult, PlatformCluster
from .config import ClusterConfig, ElasticityConfig
from .coordinator import CrossShardCoordinator, ShardParticipant
from .elasticity import (
    AdmissionController,
    ElasticityController,
    ScaleAction,
    ScalingPolicy,
    TokenBucket,
)
from .failover import FailoverManager, FailureDetector, ShardReplicator
from .router import ShardRouter

__all__ = [
    "AdmissionController",
    "BasketOutcome",
    "ClusterConfig",
    "CrossShardCoordinator",
    "ElasticityConfig",
    "ElasticityController",
    "FailoverManager",
    "FailureDetector",
    "GatherResult",
    "PlatformCluster",
    "ScaleAction",
    "ScalingPolicy",
    "ShardParticipant",
    "ShardReplicator",
    "ShardRouter",
    "TokenBucket",
]

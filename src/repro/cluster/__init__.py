"""Horizontal scale-out: sharded platform cluster (paper Sec. IV).

``repro.cluster`` turns N single-node :class:`~repro.platform.platform.
MetaversePlatform` instances into one horizontally scaled system:

* :class:`ShardRouter` — consistent-hash (vnode) key → shard mapping;
* :class:`PlatformCluster` — the facade: batched per-tick ingest,
  scatter-gather queries with per-shard deadlines, routed purchases,
  cross-shard 2PC baskets, live rebalancing;
* :class:`CrossShardCoordinator` / :class:`ShardParticipant` — the 2PC
  bridge binding the protocol driver in :mod:`repro.txn.twopc` to
  shard-local MVCC state.

Experiment E24 (``bench_cluster_scaleout.py``) measures the scaling claim.
"""

from .cluster import BasketOutcome, GatherResult, PlatformCluster
from .coordinator import CrossShardCoordinator, ShardParticipant
from .router import ShardRouter

__all__ = [
    "BasketOutcome",
    "CrossShardCoordinator",
    "GatherResult",
    "PlatformCluster",
    "ShardParticipant",
    "ShardRouter",
]

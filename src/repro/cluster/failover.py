"""Shard failover: detection, replication, promotion, anti-entropy (Sec. IV).

The paper's platform must keep serving the physical–virtual data flow as
nodes fail; the cluster's availability-over-completeness stance already
covers a slow shard (partial gathers), but a *dead* shard was a single
point of failure.  This module closes that gap with the classic
replicated-state-machine toolkit, each piece reusing an existing
substrate:

* :class:`FailureDetector` — phi-accrual-style suspicion over heartbeats
  carried by a :class:`~repro.net.simnet.SimulatedNetwork` on the cluster
  clock, so injected ``net.link`` partition/drop rules starve heartbeats
  and drive detection exactly as a real partition would;
* :class:`ShardReplicator` — every shard-state mutation is logged to a
  per-shard :class:`~repro.storage.wal.WriteAheadLog` and copied,
  LSN-for-LSN (:meth:`WriteAheadLog.append_at`), to the R-1 ring-successor
  shards (the ``replicas_of`` walk :mod:`repro.storage.sharded` uses),
  with hinted handoff while a holder is down;
* **promotion** — when the detector suspects a shard, the
  :class:`FailoverManager` replays the LSN-union of the surviving log
  copies (tolerant of torn tails from ``corrupt_tail`` and of holes from
  dropped replication messages) into a fresh platform and installs it
  under the dead shard's name — the ring never changes, so routing is
  untouched;
* **anti-entropy** — after promotion, copies reconverge by comparing
  RFC-6962 Merkle roots (:mod:`repro.ledger.merkle`) over ``(lsn,
  payload)`` leaves and rebuilding any copy whose root disagrees; reads
  against a recovering shard additionally read-repair through
  :meth:`PlatformCluster.read`.

Replayed operations are *absolute post-states* (entity values, product
records, stock levels after a committed purchase), never the requests
themselves — replay is therefore idempotent and a promoted replica can
never re-execute a purchase, which is what keeps the flash sale
exactly-once across a mid-sale kill (experiment E25).
"""

from __future__ import annotations

import json
import math
from collections import deque
from typing import TYPE_CHECKING

from ..core.clock import EventScheduler
from ..core.errors import ConfigurationError, NetworkError, PartitionedError
from ..core.metrics import MetricsRegistry
from ..ledger.merkle import MerkleTree
from ..net.simnet import SimulatedNetwork
from ..obs.tracing import NoopTracer, Tracer
from ..resilience.faults import FaultInjector
from ..storage.wal import WalEntry, WriteAheadLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..platform.platform import MetaversePlatform
    from .cluster import PlatformCluster
    from .router import ShardRouter

#: Failover lifecycle of a shard (``FailoverManager.state``).
UP = "up"                  # serving; heartbeats flowing
DOWN = "down"              # crashed, not yet detected; replicas answer reads
RECOVERING = "recovering"  # promoted replica serving; anti-entropy running


class FailureDetector:
    """Phi-accrual-style failure detection over heartbeat arrivals.

    Classic phi-accrual (Hayashibara et al.) reports suspicion as a
    continuous ``phi = -log10 P(no heartbeat for this long)``; with
    exponentially distributed inter-arrival times of mean ``m`` that is
    ``elapsed / (m * ln 10)``.  Crossing ``phi_threshold`` declares the
    shard suspect.  A shard with no arrivals yet is seeded with a
    synthetic arrival at :meth:`watch` time, so a shard that dies (or is
    partitioned) before its first heartbeat still accrues suspicion
    instead of staying invisible forever.
    """

    def __init__(
        self,
        heartbeat_interval_s: float = 0.05,
        phi_threshold: float = 8.0,
        window: int = 32,
    ) -> None:
        if heartbeat_interval_s <= 0:
            raise ConfigurationError("heartbeat_interval_s must be positive")
        if phi_threshold <= 0:
            raise ConfigurationError("phi_threshold must be positive")
        self.heartbeat_interval_s = heartbeat_interval_s
        self.phi_threshold = phi_threshold
        self.window = window
        self._last: dict[str, float] = {}
        self._intervals: dict[str, deque[float]] = {}

    def watch(self, shard: str, now: float) -> None:
        """Begin monitoring ``shard`` (idempotent)."""
        self._last.setdefault(shard, now)
        self._intervals.setdefault(shard, deque(maxlen=self.window))

    def forget(self, shard: str) -> None:
        self._last.pop(shard, None)
        self._intervals.pop(shard, None)

    def heartbeat(self, shard: str, now: float) -> None:
        """Record one heartbeat arrival."""
        self.watch(shard, now)
        last = self._last[shard]
        if now > last:
            self._intervals[shard].append(now - last)
        self._last[shard] = now

    def mean_interval(self, shard: str) -> float:
        intervals = self._intervals.get(shard)
        if intervals:
            return max(sum(intervals) / len(intervals), 1e-9)
        return self.heartbeat_interval_s

    def phi(self, shard: str, now: float) -> float:
        """Current suspicion level; 0.0 for an unwatched shard."""
        last = self._last.get(shard)
        if last is None:
            return 0.0
        elapsed = max(0.0, now - last)
        return elapsed / (self.mean_interval(shard) * math.log(10.0))

    def suspected(self, shard: str, now: float) -> bool:
        return self.phi(shard, now) >= self.phi_threshold

    def reset(self, shard: str, now: float) -> None:
        """Restart monitoring after a recovery (history discarded)."""
        self._last[shard] = now
        self._intervals[shard] = deque(maxlen=self.window)


def _merkle_root(entries: list[WalEntry]) -> bytes:
    tree = MerkleTree()
    for entry in entries:
        tree.append(f"{entry.lsn}:".encode("utf-8") + entry.payload)
    return tree.root()


def compact_entries(entries: list[WalEntry]) -> list[WalEntry]:
    """Collapse superseded absolute post-states, preserving replay
    semantics.

    Every logged op is an absolute post-state keyed by ``k``.  An op is
    dropped only when a *later op in this same copy* provably supersedes
    it under the replay fold, for any interleaving with other copies'
    entries in the LSN-union:

    * entity family (``entity``/``drop_entity``): later ops replace
      wholesale, so only the last op per key survives;
    * product family (``product``/``drop_product``): same wholesale rule
      — keep the last, which also supersedes any *earlier* ``stock`` op;
    * ``stock``: sets only the stock field, so the last stock op survives
      alongside (not folded into) the last product op when it is newer.

    Survivors are kept *verbatim at their original LSNs* — no ops are
    synthesized, because a synthesized full record could claim non-stock
    fields at an LSN newer than another copy's genuine ``product`` op
    that this copy missed (a replication hole), corrupting the union.
    Unknown op kinds are kept verbatim (future-proofing over dropping
    data).
    """
    # Hinted handoff can append old LSNs after newer ones, so buffer
    # order is not LSN order; sort first so "last seen" == "highest LSN".
    entries = sorted(entries, key=lambda entry: entry.lsn)
    entity_last: dict[str, WalEntry] = {}
    product_last: dict[str, WalEntry] = {}
    stock_last: dict[str, WalEntry] = {}
    passthrough: list[WalEntry] = []
    for entry in entries:
        op = json.loads(entry.payload.decode("utf-8"))
        kind = op.get("op")
        key = op.get("k")
        if kind in ("entity", "drop_entity"):
            entity_last[key] = entry
        elif kind in ("product", "drop_product"):
            product_last[key] = entry
            stock_last.pop(key, None)  # older stock level: superseded
        elif kind == "stock":
            stock_last[key] = entry
        else:
            passthrough.append(entry)
    compacted = (
        passthrough
        + list(entity_last.values())
        + list(product_last.values())
        + list(stock_last.values())
    )
    compacted.sort(key=lambda entry: entry.lsn)
    return compacted


class ShardReplicator:
    """Per-shard replicated operation logs with hinted handoff.

    For each shard (the *owner*) there is one log copy per replica holder
    — the owner itself plus its R-1 distinct ring successors
    (:meth:`ShardRouter.replica_holders`).  The owner's copy assigns LSNs;
    holder copies adopt them verbatim, so a copy that missed a replication
    message (injected ``cluster.replicate`` drop) carries a visible LSN
    hole rather than silently renumbering, and the union across copies is
    well defined.  Ops destined for a *down* holder are buffered as hints
    and delivered when the holder returns.
    """

    def __init__(
        self,
        router: "ShardRouter",
        n_replicas: int,
        metrics: MetricsRegistry | None = None,
        faults: FaultInjector | None = None,
    ) -> None:
        if n_replicas < 1:
            raise ConfigurationError("n_replicas must be >= 1")
        self.router = router
        self.n_replicas = n_replicas
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.faults = faults
        # owner -> holder -> that holder's copy of the owner's op log.
        self._logs: dict[str, dict[str, WriteAheadLog]] = {}
        # holder -> ops buffered while the holder was down.
        self._hints: dict[str, list[tuple[str, int, bytes]]] = {}
        self._down: set[str] = set()
        # owner -> primary-copy entry count right after its last compaction
        # (the 2x-growth trigger that keeps compaction amortized O(n)).
        self._last_compacted: dict[str, int] = {}

    def holders(self, owner: str) -> list[str]:
        """Replica holders of ``owner``'s log, owner first."""
        n = min(self.n_replicas, len(self.router))
        names = self.router.replica_holders(owner, n)
        if owner in names:
            names.remove(owner)
        return [owner, *names][:n]

    def _copies(self, owner: str) -> dict[str, WriteAheadLog]:
        copies = self._logs.get(owner)
        if copies is None:
            copies = {holder: WriteAheadLog() for holder in self.holders(owner)}
            self._logs[owner] = copies
        return copies

    def reset(self) -> None:
        """Drop all logs and hints (membership-change resync)."""
        self._logs.clear()
        self._hints.clear()
        self._last_compacted.clear()

    # -- the write path -----------------------------------------------------

    def log_op(self, owner: str, op: dict) -> int:
        """Log one absolute-state op for ``owner`` and replicate it."""
        payload = json.dumps(op, sort_keys=True).encode("utf-8")
        copies = self._copies(owner)
        lsn = copies[owner].append(payload)
        for holder, copy in copies.items():
            if holder == owner:
                continue
            if holder in self._down:
                self._hints.setdefault(holder, []).append((owner, lsn, payload))
                self.metrics.counter("cluster.failover.hints_buffered").inc()
                continue
            if self.faults is not None:
                decision = self.faults.decide(
                    "cluster.replicate",
                    target=f"{owner}->{holder}",
                    kinds=("drop",),
                )
                if decision.faulted:
                    self.metrics.counter(
                        "cluster.failover.replication_dropped"
                    ).inc()
                    continue
            copy.append_at(lsn, payload)
        self.metrics.counter("cluster.failover.replicated_ops").inc()
        return lsn

    # -- holder availability ------------------------------------------------

    def mark_down(self, holder: str) -> None:
        self._down.add(holder)

    def mark_up(self, holder: str) -> None:
        """Holder is back: deliver every hint buffered for it."""
        self._down.discard(holder)
        for owner, lsn, payload in self._hints.pop(holder, []):
            copy = self._logs.get(owner, {}).get(holder)
            if copy is not None:
                copy.append_at(lsn, payload)
                self.metrics.counter("cluster.failover.hints_delivered").inc()

    def torn_tail(self, owner: str, nbytes: int) -> None:
        """Tear the owner's primary copy (crash mid-write)."""
        self._copies(owner)[owner].corrupt_tail(nbytes)

    # -- recovery primitives ------------------------------------------------

    def union(self, owner: str) -> list[WalEntry]:
        """LSN-union of every copy's valid prefix, sorted by LSN.

        Tolerates torn tails (each copy contributes only its valid prefix)
        and per-copy holes (another copy fills them); an LSN no copy holds
        is genuinely lost and simply absent.
        """
        merged: dict[int, WalEntry] = {}
        for copy in self._copies(owner).values():
            for entry in copy.replay():
                merged.setdefault(entry.lsn, entry)
        return [merged[lsn] for lsn in sorted(merged)]

    def last_valid_lsn(self, owner: str, holder: str) -> int:
        return self._copies(owner)[holder].last_valid_lsn

    def sync_owner(self, owner: str) -> bool:
        """One anti-entropy round for ``owner``'s copies.

        Compares each copy's Merkle root against the root of the LSN-union;
        any disagreement rebuilds every copy from the union.  Returns True
        when a repair was performed (i.e. the copies had diverged).
        """
        entries = self.union(owner)
        target = _merkle_root(entries)
        copies = self._copies(owner)
        diverged = any(
            _merkle_root(copy.recover_prefix()[0]) != target
            for copy in copies.values()
        )
        if diverged:
            for copy in copies.values():
                copy.rebuild(entries)
            self.metrics.counter("cluster.failover.antientropy_repairs").inc()
        return diverged

    # -- log compaction -----------------------------------------------------

    def entry_count(self, owner: str) -> int:
        """Intact entries in ``owner``'s primary log copy."""
        return self._copies(owner)[owner].entry_count

    def should_compact(self, owner: str, threshold: int) -> bool:
        """True when the primary copy has outgrown both the configured
        threshold and twice its post-compaction size — the latter keeps a
        shard whose *live* key set exceeds the threshold from rewriting
        its whole log every tick for no reduction."""
        floor = max(threshold, 2 * self._last_compacted.get(owner, 0))
        return self.entry_count(owner) > floor

    def compact(self, owner: str) -> int:
        """Compact every *up* holder's copy of ``owner``'s log in place.

        Down holders are skipped — their copies (and any torn tails from a
        crash) are untouched, so the union a later promotion replays still
        sees exactly what PR 4's semantics promise; they reconverge via
        anti-entropy when they return.  Returns total entries removed
        across copies.
        """
        removed = 0
        for holder, copy in self._copies(owner).items():
            if holder in self._down:
                continue
            entries, _ = copy.recover_prefix()
            compacted = compact_entries(entries)
            if len(compacted) < len(entries):
                copy.rebuild(compacted)
                removed += len(entries) - len(compacted)
        self._last_compacted[owner] = self.entry_count(owner)
        if removed:
            self.metrics.counter("cluster.failover.log_compactions").inc()
            self.metrics.counter(
                "cluster.failover.compacted_entries"
            ).inc(removed)
        return removed

    # -- replica-side reads -------------------------------------------------

    def latest_value(self, owner: str, key: str):
        """Last logged entity value for ``key`` (None if absent/dropped)."""
        for entry in reversed(self.union(owner)):
            op = json.loads(entry.payload.decode("utf-8"))
            if op.get("k") != key:
                continue
            if op["op"] == "entity":
                return op["v"]
            if op["op"] == "drop_entity":
                return None
        return None

    def latest_stock(self, owner: str, product_id: str) -> int | None:
        """Last logged stock level for ``product_id`` (None if unknown)."""
        for entry in reversed(self.union(owner)):
            op = json.loads(entry.payload.decode("utf-8"))
            if op.get("k") != product_id:
                continue
            if op["op"] == "stock":
                return int(op["stock"])
            if op["op"] == "product":
                return int(op["v"].get("stock", 0))
            if op["op"] == "drop_product":
                return None
        return None


class FailoverManager:
    """Drives the detect → promote → reconverge loop for one cluster.

    Owns the heartbeat fabric (a :class:`SimulatedNetwork` on the cluster
    clock sharing the cluster's fault injector, so ``net.link`` rules can
    starve heartbeats), the :class:`FailureDetector`, and the
    :class:`ShardReplicator`.  :meth:`tick` is called once per cluster
    tick and performs, in order: heartbeat delivery, heartbeat sends,
    anti-entropy for already-recovering shards, then detection and
    promotion of newly suspected ones — so a promoted replica always
    serves for at least one full tick before its recovery completes.
    """

    def __init__(
        self,
        cluster: "PlatformCluster",
        n_replicas: int = 2,
        heartbeat_interval_s: float = 0.05,
        phi_threshold: float = 8.0,
        tracer: Tracer | None = None,
        replica_log_compact_threshold: int | None = 4096,
    ) -> None:
        if n_replicas < 2:
            raise ConfigurationError("failover needs n_replicas >= 2")
        if (
            replica_log_compact_threshold is not None
            and replica_log_compact_threshold < 1
        ):
            raise ConfigurationError(
                "replica_log_compact_threshold must be >= 1 (or None)"
            )
        self.compact_threshold = replica_log_compact_threshold
        self.cluster = cluster
        self.clock = cluster.clock
        self.metrics = cluster.metrics
        self.tracer = tracer if tracer is not None else (
            cluster.tracer if cluster.tracer is not None else NoopTracer()
        )
        self.n_replicas = n_replicas
        self.detector = FailureDetector(
            heartbeat_interval_s=heartbeat_interval_s,
            phi_threshold=phi_threshold,
        )
        self.replicator = ShardReplicator(
            cluster.router, n_replicas,
            metrics=self.metrics, faults=cluster.faults,
        )
        self.scheduler = EventScheduler(self.clock)
        self.net = SimulatedNetwork(
            self.scheduler, metrics=self.metrics,
            tracer=self.tracer, faults=cluster.faults,
        )
        self._monitor = self.net.add_node("hb/monitor")
        self._monitor.on("hb", self._on_heartbeat)
        self._state: dict[str, str] = {}
        self._downed_at: dict[str, float] = {}
        self._last_sent: dict[str, float] = {}
        now = self.clock.now
        for name in cluster.router.shards:
            self._watch(name, now)

    # -- state accessors ----------------------------------------------------

    def state(self, shard: str) -> str:
        return self._state.get(shard, UP)

    def is_down(self, shard: str) -> bool:
        """True while the shard is crashed and no replica has been
        promoted yet — the only window in which it cannot serve."""
        return self.state(shard) == DOWN

    def phi(self, shard: str) -> float:
        return self.detector.phi(shard, self.clock.now)

    # -- membership ---------------------------------------------------------

    def _watch(self, name: str, now: float) -> None:
        self._state[name] = UP
        self.detector.watch(name, now)
        if f"hb/{name}" not in self.net.nodes:
            self.net.add_node(f"hb/{name}")

    def resync(self) -> None:
        """Rebuild replication state after a membership change.

        Holder sets shift when shards join or leave; rather than migrate
        log suffixes incrementally, every owner's log is re-seeded from
        its shard's current snapshot (the same wholesale stance
        ``_rebalance`` takes for the data itself).
        """
        self.replicator.reset()
        now = self.clock.now
        for name in list(self._state):
            if name not in self.cluster.shards:
                self._state.pop(name, None)
                self._downed_at.pop(name, None)
                self.detector.forget(name)
        for name, shard in self.cluster.shards.items():
            self._watch(name, now)
            for key in shard.entity_keys():
                self.log_entity(name, key, shard.export_entity(key))
            for product_id, value in shard.catalog_snapshot().items():
                self.log_product(name, product_id, value)

    # -- the write-path hooks (called by PlatformCluster) --------------------

    def log_entity(self, owner: str, key: str, value) -> int:
        return self.replicator.log_op(
            owner, {"op": "entity", "k": key, "v": value}
        )

    def log_drop_entity(self, owner: str, key: str) -> int:
        return self.replicator.log_op(owner, {"op": "drop_entity", "k": key})

    def log_product(self, owner: str, product_id: str, value: dict) -> int:
        return self.replicator.log_op(
            owner, {"op": "product", "k": product_id, "v": dict(value)}
        )

    def log_stock(self, owner: str, product_id: str, stock: int) -> int:
        return self.replicator.log_op(
            owner, {"op": "stock", "k": product_id, "stock": int(stock)}
        )

    # -- replica-side serving ----------------------------------------------

    def replica_value(self, owner: str, key: str):
        return self.replicator.latest_value(owner, key)

    def replica_stock(self, owner: str, product_id: str) -> int | None:
        return self.replicator.latest_stock(owner, product_id)

    # -- crash entry point ---------------------------------------------------

    def kill(self, name: str, torn_tail_bytes: int = 0) -> None:
        """Model an abrupt shard crash (process gone, tail possibly torn).

        The shard stops serving and heartbeating immediately; *detection*
        still takes the phi-accrual delay, after which a replica is
        promoted.  ``torn_tail_bytes`` chops the primary log copy's tail,
        modelling a write in flight at crash time — the surviving replica
        copies carry the suffix.
        """
        if self.state(name) != UP:
            raise ConfigurationError(f"shard {name!r} is not up")
        self._state[name] = DOWN
        self._downed_at[name] = self.clock.now
        self.replicator.mark_down(name)
        if torn_tail_bytes > 0:
            self.replicator.torn_tail(name, torn_tail_bytes)
        self.metrics.counter("cluster.failover.kills").inc()
        self.tracer.log("warn", "shard killed", shard=name)

    # -- the per-tick loop ---------------------------------------------------

    def tick(self) -> None:
        now = self.clock.now
        self.scheduler.run_until(now)  # deliver heartbeats in flight
        self._send_heartbeats(now)
        self._advance_recoveries(now)
        self._detect(now)
        self._compact_logs()
        self.metrics.gauge("cluster.failover.down_shards").set(
            float(sum(1 for s in self._state.values() if s != UP))
        )

    def _send_heartbeats(self, now: float) -> None:
        for name in self.cluster.router.shards:
            if self.state(name) != UP:
                continue
            if now - self._last_sent.get(name, -math.inf) < (
                self.detector.heartbeat_interval_s * 0.999
            ):
                continue
            self._last_sent[name] = now
            try:
                self.net.send(f"hb/{name}", "hb/monitor", "hb", {"shard": name})
            except (PartitionedError, NetworkError):
                self.metrics.counter("cluster.failover.heartbeats_starved").inc()

    def _on_heartbeat(self, message) -> None:
        self.detector.heartbeat(message.payload["shard"], self.clock.now)

    def _detect(self, now: float) -> None:
        for name in list(self.cluster.router.shards):
            state = self.state(name)
            if state == RECOVERING:
                continue
            if not self.detector.suspected(name, now):
                continue
            if state == UP:
                # A false positive (e.g. a partition starving heartbeats):
                # failover proceeds anyway — the promoted state replays the
                # same logged ops the live shard holds, so it converges.
                self._downed_at.setdefault(name, now)
                self.replicator.mark_down(name)
            self.metrics.counter("cluster.failover.suspected").inc()
            self._promote(name, now)

    def _promote(self, name: str, now: float) -> None:
        """Replay the freshest surviving log state into a fresh platform
        and install it under the dead shard's name (ring unchanged)."""
        with self.tracer.span("cluster.failover.promote", shard=name):
            entries = self.replicator.union(name)
            platform = self.cluster._make_shard()
            self._replay(platform, entries)
            # Continue the primary copy from the union so new LSNs extend
            # (never collide with) what the replicas already hold.
            self.replicator._copies(name)[name].rebuild(entries)
            self.cluster.install_shard(name, platform)
        self._state[name] = RECOVERING
        self.replicator.mark_up(name)  # node is back: deliver its hints
        self.metrics.counter("cluster.failover.promotions").inc()
        self.metrics.gauge(f"cluster.shard.{name}.promoted_lsn").set(
            float(entries[-1].lsn if entries else 0)
        )
        # How much work promotion had to replay — the number compaction
        # exists to bound, and what E28 gates on (deterministic, unlike
        # wall-clock).
        self.metrics.gauge("cluster.failover.promotion_replayed_entries").set(
            float(len(entries))
        )
        self.tracer.log(
            "info", "replica promoted", shard=name, ops=len(entries)
        )

    @staticmethod
    def _replay(platform: "MetaversePlatform", entries: list[WalEntry]) -> None:
        """Apply the logged post-states to a fresh shard platform.

        Products fold in memory first (stock ops are absolute levels, and
        one MVCC commit per product beats one per op), entities import
        directly.
        """
        products: dict[str, dict] = {}
        for entry in entries:
            op = json.loads(entry.payload.decode("utf-8"))
            kind = op["op"]
            if kind == "entity":
                platform.import_entity(op["k"], op["v"])
            elif kind == "drop_entity":
                platform.drop_entity(op["k"])
            elif kind == "product":
                products[op["k"]] = dict(op["v"])
            elif kind == "drop_product":
                products.pop(op["k"], None)
            elif kind == "stock":
                products.setdefault(op["k"], {})["stock"] = int(op["stock"])
        for product_id, value in products.items():
            platform.import_product(product_id, value)

    def _compact_logs(self) -> None:
        if self.compact_threshold is None:
            return
        for name in self.cluster.router.shards:
            if self.state(name) != UP:
                continue
            if self.replicator.should_compact(name, self.compact_threshold):
                self.replicator.compact(name)

    def _advance_recoveries(self, now: float) -> None:
        for name in list(self._state):
            if self._state[name] != RECOVERING:
                continue
            with self.tracer.span("cluster.failover.antientropy", shard=name):
                diverged = self.replicator.sync_owner(name)
            if diverged:
                continue  # repaired this round; confirm convergence next tick
            self._state[name] = UP
            self.detector.reset(name, now)
            self._last_sent.pop(name, None)
            downed_at = self._downed_at.pop(name, now)
            self.metrics.gauge("cluster.failover.recovery_time_s").set(
                now - downed_at
            )
            self.metrics.counter("cluster.failover.recoveries").inc()
            self.tracer.log("info", "shard recovered", shard=name)

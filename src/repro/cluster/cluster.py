"""Horizontal scale-out: N platform shards behind one facade (paper Sec. IV).

The paper's answer to the data deluge is disaggregated, horizontally
scalable storage and compute; the ROADMAP north-star is "heavy traffic
from millions of users".  A single :class:`MetaversePlatform` node tops
out at its executor pool — :class:`PlatformCluster` scales past it by
partitioning entity and product keys across N full platform shards with a
:class:`~repro.cluster.router.ShardRouter` (consistent-hash ring, vnodes)
and coordinating the cross-shard paths:

* **batched ingest** — observations buffer in the router grouped by owning
  shard and flush per simulated-clock tick, so each shard sees one batch
  per tick instead of a per-record stream;
* **scatter-gather queries** — prefix/range, spatial, and continuous
  queries fan out to every shard under a per-shard
  :class:`~repro.resilience.policies.Deadline`; a shard that faults or
  blows its deadline is skipped and the gather is marked partial rather
  than failing the caller;
* **purchases** — single-product requests route to the owning shard (the
  global stream is pre-sorted with the same space-aware key a single node
  uses, so sharded and single-node runs decide every purchase the same
  way); multi-product baskets spanning shards run through the existing
  2PC coordinator (:mod:`repro.cluster.coordinator`);
* **rebalancing** — shards join and leave live: every key whose ring
  owner changed migrates (KV entities and catalog products both), with
  no entity lost or duplicated;
* **disaggregated mode** (``n_storage_nodes=M``) — the Fig. 7 split:
  every compute shard mounts a shared
  :class:`~repro.storage.engine.StorageTier` of M standalone storage
  nodes through a :class:`~repro.storage.engine.RemoteStorageEngine`, so
  N compute nodes scale independently of M storage nodes.  State lives in
  the tier: shard join/leave is a pure ring remap (zero entity
  migration — compute caches reset, nothing moves), ``kill_shard``
  marks the compute node down and the next :meth:`tick` recovers it by
  *re-mounting* the surviving storage nodes (no WAL replay, no data
  movement), and reads re-route to any live compute node while the owner
  is down.  Mutually exclusive with replica failover (``n_replicas >=
  2``): in a disaggregated deployment the shared tier *is* the
  availability mechanism.

Chaos coverage: sites ``cluster.ingest`` (drop) and ``cluster.query``
(crash/delay) are instrumented, and the shared fault injector reaches
every shard's storage/broker/gateway sites, so the nightly chaos tier
exercises the cluster path end to end.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace

from ..api.dataplane import ContinuousQuery, GatherResult
from ..core.clock import SimulationClock
from ..core.columns import RecordBatch
from ..core.errors import (
    ConfigurationError,
    FaultInjectedError,
    KeyNotFoundError,
)
from ..core.metrics import MetricsRegistry
from ..core.records import DataRecord, Space
from ..net.overlay import stable_hash
from ..obs.tracing import NoopTracer, Tracer
from ..platform.platform import (
    MetaversePlatform,
    PurchaseOutcome,
    purchase_sort_key,
    stored_record_value,
)
from ..query.plane import (
    QueryExecutor,
    QueryModality,
    QueryPlan,
    QueryRequest,
    prefix_query,
    spatial_query,
)
from ..resilience.faults import FaultInjector
from ..resilience.policies import Timeout
from ..storage.engine import StorageTier
from ..spatial.geometry import BBox
from ..txn.twopc import TxnOutcome
from ..workloads.marketplace import PurchaseRequest
from .config import ClusterConfig
from .coordinator import CrossShardCoordinator
from .elasticity import ElasticityController
from .failover import RECOVERING, FailoverManager
from .router import ShardRouter

#: Per-shard breaker-state gauge encoding (matches the platform-level
#: ``resilience.breaker.<name>.state`` gauge: closed/half-open/open).
_BREAKER_STATE_CODES = {"closed": 0.0, "half_open": 1.0, "open": 2.0}


@dataclass
class BasketOutcome:
    """Outcome of an all-or-nothing multi-product basket."""

    committed: bool
    reason: str = ""
    shards: tuple[str, ...] = ()
    txn: TxnOutcome | None = None


class PlatformCluster:
    """N :class:`MetaversePlatform` shards behind a single facade.

    All shards share the cluster's metrics registry, tracer, and (when
    present) fault injector, so cluster-wide counters aggregate naturally
    and per-shard gauges (``cluster.shard.<name>.*``) sit beside them.
    """

    def __init__(
        self,
        config: ClusterConfig | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        faults: FaultInjector | None = None,
        **legacy,
    ) -> None:
        if legacy:
            # Back-compat shim: the old constructor took every shape knob
            # as a loose keyword argument.  Fold them into a ClusterConfig
            # (unknown names fail inside the dataclass constructor).
            if config is not None:
                raise ConfigurationError(
                    "pass either config= or legacy keyword arguments, not both"
                )
            warnings.warn(
                "constructing PlatformCluster from loose keyword arguments "
                "is deprecated; pass config=ClusterConfig(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            try:
                config = ClusterConfig(**legacy)
            except TypeError as exc:
                raise ConfigurationError(str(exc)) from None
        config = (config if config is not None else ClusterConfig()).validate()
        self.config = config
        n_shards = config.n_shards
        n_executors_per_shard = config.n_executors_per_shard
        vnodes = config.vnodes
        query_deadline_s = config.query_deadline_s
        twopc_timeout_s = config.twopc_timeout_s
        buffer_pool_pages = config.buffer_pool_pages
        physical_priority = config.physical_priority
        txn_cost_s = config.txn_cost_s
        n_replicas = config.n_replicas
        heartbeat_interval_s = config.heartbeat_interval_s
        phi_threshold = config.phi_threshold
        n_storage_nodes = config.n_storage_nodes
        storage_vnodes = config.storage_vnodes
        storage_rpc_timeout_s = config.storage_rpc_timeout_s
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NoopTracer()
        self.faults = faults
        if faults is not None:
            # Route the injector's counters/spans into the cluster registry
            # before any shard adopts it (platform adoption would otherwise
            # rebind them shard by shard).
            faults.metrics = self.metrics
            faults.metrics_injected = True
            faults.tracer = self.tracer
            faults.tracer_injected = True
        self.clock = faults.clock if faults is not None else SimulationClock()
        self.n_executors_per_shard = n_executors_per_shard
        self.buffer_pool_pages = buffer_pool_pages
        self.physical_priority = physical_priority
        self.txn_cost_s = txn_cost_s
        self.query_deadline = Timeout(query_deadline_s)
        self.router = ShardRouter(vnodes=vnodes, metrics=self.metrics)
        # Disaggregated mode: one shared storage tier, mounted by every
        # compute shard.  The tier shares the cluster clock so RPC latency
        # advances the same simulated time the rest of the system runs on.
        self.storage: StorageTier | None = None
        self._storage_rpc_timeout_s = storage_rpc_timeout_s
        self._down_compute: set[str] = set()
        if n_storage_nodes is not None:
            self.storage = StorageTier(
                n_nodes=n_storage_nodes,
                vnodes=storage_vnodes,
                clock=self.clock,
                metrics=self.metrics,
                tracer=self.tracer,
            )
        self.shards: dict[str, MetaversePlatform] = {}
        for i in range(n_shards):
            name = f"shard-{i}"
            self.router.add_shard(name)
            self.shards[name] = self._make_shard(name)
        self.coordinator = CrossShardCoordinator(
            self.shards,
            clock=self.clock,
            timeout_s=twopc_timeout_s,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        self._pending: dict[str, list[DataRecord]] = {}
        self._pending_batches: dict[str, list[RecordBatch]] = {}
        self._continuous: dict[str, ContinuousQuery] = {}
        # Query-plane executor: resolves requests to (modality, plan);
        # the cluster contributes only the scatter-gather dispatch.
        self.query_executor = QueryExecutor()
        # Bounded-drain ingest queues (opt-in): banked per-shard drain
        # credit, accrued each tick at ``shard_drain_rate`` and spent by
        # flush().  With the rate unset, flushes stay unbounded and the
        # dict stays empty.
        self._drain_credit: dict[str, float] = {}
        # Closed-loop elasticity (opt-in via config.elasticity): the
        # controller reads this cluster's own metrics each tick and
        # drives shard membership, hot-key salting, and admission.
        self.elasticity: ElasticityController | None = None
        if config.elasticity is not None:
            self.elasticity = ElasticityController(
                self,
                config.elasticity,
                clock=self.clock,
                metrics=self.metrics,
                tracer=self.tracer,
            )
        # Failover is opt-in: with n_replicas == 1 (the default) nothing is
        # replicated, no heartbeats flow, and every path below behaves
        # exactly as before.
        self.failover: FailoverManager | None = None
        if n_replicas >= 2:
            self.failover = FailoverManager(
                self,
                n_replicas=n_replicas,
                heartbeat_interval_s=heartbeat_interval_s,
                phi_threshold=phi_threshold,
                tracer=self.tracer,
                replica_log_compact_threshold=(
                    config.replica_log_compact_threshold
                ),
            )
            for name, shard in self.shards.items():
                self._hook_purchase_log(name, shard)

    def _make_shard(self, name: str | None = None) -> MetaversePlatform:
        engine = None
        if self.storage is not None:
            # Stateless compute: the shard's engine is a fresh mount of
            # the shared tier (a new network identity per mount, so a
            # re-mounted shard rejoins like a restarted process would).
            # Storage RPCs inherit the platform's own retry policy via
            # _with_retry, so the engine itself carries none.
            engine = self.storage.mount(
                client=name or "shard",
                faults=self.faults,
                rpc_timeout_s=self._storage_rpc_timeout_s,
            )
        return MetaversePlatform(
            n_executors=self.n_executors_per_shard,
            buffer_pool_pages=self.buffer_pool_pages,
            physical_priority=self.physical_priority,
            txn_cost_s=self.txn_cost_s,
            metrics=self.metrics,
            tracer=self.tracer,
            faults=self.faults,
            engine=engine,
            semantic_index=self.config.semantic_index,
        )

    def shard_of(self, key: str) -> MetaversePlatform:
        """The shard platform currently owning ``key``."""
        return self.shards[self.router.owner_of(key)]

    def _hook_purchase_log(self, name: str, shard: MetaversePlatform) -> None:
        """Route the shard's committed stock levels into the failover log."""
        shard.purchase_log = (
            lambda product_id, stock, owner=name: self.failover.log_stock(
                owner, product_id, stock
            )
        )

    def _is_down(self, name: str) -> bool:
        if name in self._down_compute:
            return True
        return self.failover is not None and self.failover.is_down(name)

    def install_shard(self, name: str, platform: MetaversePlatform) -> None:
        """Swap in a promoted replica under an existing shard name.

        Called by the failover manager: the router ring is untouched (the
        name — and therefore key ownership — survives the crash), the 2PC
        participant re-binds to the new platform, and the stock-level
        replication hook is re-armed.
        """
        if name not in self.shards:
            raise ConfigurationError(f"unknown shard {name!r}")
        self.shards[name] = platform
        self.coordinator.attach_shard(name, platform)
        if self.failover is not None:
            self._hook_purchase_log(name, platform)

    def _remount_shard(self, name: str) -> None:
        """Bring a crashed compute node back by mounting the tier afresh."""
        shard = self._make_shard(name)
        self.shards[name] = shard
        self.coordinator.attach_shard(name, shard)
        self.metrics.counter("cluster.disagg.remounts").inc()
        self.tracer.log("info", "compute node re-mounted storage tier",
                        shard=name)

    # -- batched ingest -----------------------------------------------------

    def ingest(self, record: DataRecord) -> None:
        """Buffer one observation, grouped under its owning shard.

        With admission control on (``config.elasticity.admission_rate``),
        the record passes the owning shard's token bucket first —
        virtual-space LOD traffic is shed when the bucket is dry,
        physical-space records always land.
        """
        if self.faults is not None:
            if self.faults.decide("cluster.ingest", kinds=("drop",)).faulted:
                self.metrics.counter("cluster.dropped_records").inc()
                return
        owner = self.router.owner_of(record.key)
        if not self._admit(owner, record.space):
            return
        self._pending.setdefault(owner, []).append(record)
        self.metrics.counter("cluster.buffered_records").inc()

    def ingest_many(self, records: list[DataRecord]) -> None:
        with self.tracer.span("cluster.ingest", batch=len(records)):
            for record in records:
                self.ingest(record)

    def ingest_batch(self, batch: RecordBatch) -> None:
        """Buffer one columnar batch, split by owning shard.

        Fault decisions stay per row (same injector RNG sequence as the
        per-record path); surviving rows stay columnar per shard unless
        replica failover is on, whose op log is inherently per record.
        """
        if self.faults is not None:
            keep = [
                i for i in range(len(batch))
                if not self.faults.decide(
                    "cluster.ingest", kinds=("drop",)
                ).faulted
            ]
            dropped = len(batch) - len(keep)
            if dropped:
                self.metrics.counter("cluster.dropped_records").inc(dropped)
                if not keep:
                    return
                batch = batch.take(keep)
        if self.elasticity is not None and self.elasticity.admission is not None:
            spaces = batch.space_values()
            admitted = [
                i
                for i, key in enumerate(batch.keys)
                if self._admit(self.router.owner_of(key), spaces[i])
            ]
            if len(admitted) < len(batch):
                if not admitted:
                    return
                batch = batch.take(admitted)
        owners: dict[str, list[int]] = {}
        for i, key in enumerate(batch.keys):
            owners.setdefault(self.router.owner_of(key), []).append(i)
        if self.failover is not None:
            records = batch.to_records()
            for name, rows in owners.items():
                self._pending.setdefault(name, []).extend(
                    records[i] for i in rows
                )
        else:
            for name, rows in owners.items():
                shard_batch = (
                    batch if len(rows) == len(batch) else batch.take(rows)
                )
                self._pending_batches.setdefault(name, []).append(shard_batch)
        self.metrics.counter("cluster.buffered_records").inc(len(batch))

    @property
    def pending_count(self) -> int:
        return sum(len(batch) for batch in self._pending.values()) + sum(
            len(batch)
            for batches in self._pending_batches.values()
            for batch in batches
        )

    def shard_queue_depth(self, name: str) -> int:
        """Records currently queued for ``name`` (bounded-drain mode)."""
        return len(self._pending.get(name, [])) + sum(
            len(batch) for batch in self._pending_batches.get(name, [])
        )

    def _admit(self, owner: str, space: Space) -> bool:
        if self.elasticity is None or self.elasticity.admission is None:
            return True
        return self.elasticity.admission.admit(owner, space)

    def flush(self, force: bool = True) -> int:
        """Write buffered batches to their shards; return records written.

        Direct calls (and membership changes, which must not leave
        records queued under a stale ring) drain everything.  The tick
        path passes ``force=False``: with ``shard_drain_rate`` set, each
        shard writes at most its banked drain credit and the remainder
        stays queued — the queue depth and implied wait are the
        elasticity loop's load signal.
        """
        total = 0
        rate = self.config.shard_drain_rate
        bounded = not force and rate is not None
        with self.tracer.span("cluster.flush", pending=self.pending_count):
            for name in self.router.shards:
                if self._is_down(name):
                    # Crashed and not yet failed over: keep the batch
                    # buffered — it flushes to the promoted replica.
                    continue
                budget = (
                    int(self._drain_credit.get(name, 0.0)) if bounded else None
                )
                written = self._flush_shard(name, budget)
                if bounded and written:
                    self._drain_credit[name] = (
                        self._drain_credit.get(name, 0.0) - written
                    )
                total += written
        self.metrics.counter("cluster.ingested_records").inc(total)
        self._refresh_shard_gauges()
        return total

    def _flush_shard(self, name: str, budget: int | None) -> int:
        """Write up to ``budget`` queued records to ``name`` (None =
        unbounded); leftovers stay queued in arrival order."""
        shard = self.shards[name]
        written = 0
        batch = self._pending.get(name)
        if batch:
            take = len(batch) if budget is None else min(budget, len(batch))
            if take:
                self.metrics.histogram("cluster.router.batch_size").observe(
                    take
                )
                for record in batch[:take]:
                    shard.write_record(record)
                    if self.failover is not None:
                        self.failover.log_entity(
                            name, record.key, stored_record_value(record)
                        )
                written += take
                if take == len(batch):
                    del self._pending[name]
                else:
                    self._pending[name] = batch[take:]
        columnar = self._pending_batches.get(name)
        if columnar:
            remaining = None if budget is None else budget - written
            drained = 0
            for i, shard_batch in enumerate(columnar):
                if remaining is not None and remaining <= 0:
                    break
                if remaining is not None and len(shard_batch) > remaining:
                    # Split the batch at the budget: the head flushes
                    # now, the columnar tail stays queued.
                    head = shard_batch.take(list(range(remaining)))
                    tail = shard_batch.take(
                        list(range(remaining, len(shard_batch)))
                    )
                    self.metrics.histogram(
                        "cluster.router.batch_size"
                    ).observe(len(head))
                    shard.write_record_batch(head)
                    written += len(head)
                    columnar[i] = tail
                    remaining = 0
                    break
                # One bulk write per buffered batch: the shard's
                # engine coalesces it into one RPC per storage node.
                self.metrics.histogram("cluster.router.batch_size").observe(
                    len(shard_batch)
                )
                shard.write_record_batch(shard_batch)
                written += len(shard_batch)
                drained += 1
                if remaining is not None:
                    remaining -= len(shard_batch)
            if drained == len(columnar):
                del self._pending_batches[name]
            elif drained:
                self._pending_batches[name] = columnar[drained:]
        return written

    def tick(self, dt: float) -> dict[str, GatherResult]:
        """One simulated-clock tick: advance time, flush batches, refresh
        every registered continuous query.  Returns the fresh results."""
        self.clock.advance(dt)
        if self._down_compute:
            # Disaggregated recovery: a crashed compute node holds no
            # state, so recovery is a re-mount of the surviving storage
            # nodes — no WAL replay, no data movement.
            for name in sorted(self._down_compute):
                self._remount_shard(name)
            self._down_compute.clear()
            self._refresh_shard_gauges()
        rate = self.config.shard_drain_rate
        if rate is not None:
            # Bank one tick of drain credit per live shard, capped so an
            # idle shard cannot accumulate an unbounded burst allowance.
            cap = max(rate, rate * dt)
            for name in self.router.shards:
                self._drain_credit[name] = min(
                    cap, self._drain_credit.get(name, 0.0) + rate * dt
                )
        self.flush(force=rate is None)
        if rate is not None:
            self._observe_ingest_waits(rate)
        if self.elasticity is not None:
            self.elasticity.tick(dt)
        if self.failover is not None:
            self.failover.tick()
        self.maintain_storage()
        results: dict[str, GatherResult] = {}
        for query in self._continuous.values():
            request = (
                query.request
                if query.request is not None
                else prefix_query(query.prefix)
            )
            query.results = self.query(request)
            self.metrics.counter("cluster.continuous.evaluations").inc()
            results[query.query_id] = query.results
        return results

    def _observe_ingest_waits(self, rate: float) -> None:
        """Record each live shard's post-flush queue state: depth gauge
        plus implied drain wait (depth / rate) into the per-shard
        histogram the elasticity loop reads through a window."""
        for name in self.router.shards:
            if self._is_down(name):
                continue
            depth = self.shard_queue_depth(name)
            self.metrics.gauge(f"cluster.shard.{name}.queue_depth").set(
                float(depth)
            )
            self.metrics.histogram(
                f"cluster.shard.{name}.ingest_wait_s"
            ).observe(depth / rate)

    def ingest_wait_p95(self, window: int) -> float:
        """Worst per-shard p95 ingest wait over the last ``window``
        observations — the elasticity loop's SLO signal.  0.0 while no
        shard has observations (cold start, drain rate unset)."""
        worst = 0.0
        for name in self.router.shards:
            view = self.metrics.histogram(
                f"cluster.shard.{name}.ingest_wait_s"
            ).window(window)
            if view.count:
                worst = max(worst, view.p95())
        return worst

    def maintain_storage(self) -> None:
        """One data-lifecycle sweep across the cluster's storage.

        Disaggregated mode sweeps the shared tier's nodes; otherwise each
        live shard's own engine sweeps.  A no-op unless an engine actually
        implements lifecycle maintenance (e.g. the tiered engine), so the
        default cluster is unchanged.
        """
        now = self.clock.now
        if self.storage is not None:
            self.storage.maintain(now)
            return
        for name, shard in self.shards.items():
            if self._is_down(name):
                continue
            shard.maintain_storage(now)

    # -- reads and scatter-gather queries -----------------------------------

    def read(self, key: str, allow_stale: bool = True):
        """Point read, routed to the owning shard.

        While the owner is crashed (and not yet failed over), the read is
        answered from its replicated op log — stale by at most the
        replication lag, but available.  While the owner is a freshly
        promoted replica (recovering), the read additionally read-repairs:
        a value that disagrees with the replicated log is overwritten in
        place, so hot keys reconverge ahead of the anti-entropy sweep.
        """
        owner = self.router.owner_of(key)
        if owner in self._down_compute:
            # Disaggregated mode: state lives in the shared tier, so any
            # live compute node can answer — straight from the engine,
            # bypassing the fallback's caches so nothing stale lingers.
            fallback = self._live_shard()
            self.metrics.counter("cluster.disagg.rerouted_reads").inc()
            return fallback._with_retry(lambda: fallback.engine.get(key))
        if self.failover is not None:
            if self.failover.is_down(owner):
                self.metrics.counter("cluster.failover.replica_reads").inc()
                return self.failover.replica_value(owner, key)
            if self.failover.state(owner) == RECOVERING:
                return self._read_repair(owner, key, allow_stale)
        return self.shards[owner].read(key, allow_stale=allow_stale)

    def _live_shard(self) -> MetaversePlatform:
        """Any compute node that is up (disaggregated re-route target)."""
        for name in self.router.shards:
            if name not in self._down_compute:
                return self.shards[name]
        raise ConfigurationError("every compute node is down")

    def _read_repair(self, owner: str, key: str, allow_stale: bool):
        expected = self.failover.replica_value(owner, key)
        value = self.shards[owner].read(key, allow_stale=allow_stale)
        if expected is not None and value != expected:
            self.shards[owner].import_entity(key, expected)
            self.metrics.counter("cluster.failover.read_repairs").inc()
            return expected
        return value

    def write_record(self, record: DataRecord) -> None:
        """Unbatched write-through (catalog audits, tests)."""
        owner = self.router.owner_of(record.key)
        if self._is_down(owner):
            # The owner is crashed: defer like batched ingest does rather
            # than write into dead state; the flush after promotion lands it.
            self._pending.setdefault(owner, []).append(record)
            self.metrics.counter("cluster.failover.deferred_writes").inc()
            return
        self.shards[owner].write_record(record)
        if self.failover is not None:
            self.failover.log_entity(
                owner, record.key, stored_record_value(record)
            )

    def query(self, request: QueryRequest) -> GatherResult:
        """Scatter one query-plane request across the ring and merge.

        The modality (from the plane registry) plans/rewrites once; the
        cluster contributes exactly one thing — the fault-aware scatter
        in :meth:`_scatter` — and the modality folds the per-shard
        partials with its order-deterministic merge.  New modalities
        (e.g. :mod:`repro.semantic`) ride this path without any cluster
        edits.
        """
        modality, plan = self.query_executor.resolve(request)
        return self.run_plan(modality, plan)

    def run_plan(self, modality: QueryModality, plan: QueryPlan) -> GatherResult:
        """Dispatch an already-planned query (the geo layer reuses this
        to fan the same plan out across regions without re-planning)."""
        partials, failed = self._scatter(
            lambda name, shard: self._owned_slice(
                name, modality.execute(shard, plan), key_of=modality.item_key
            )
        )
        return GatherResult(
            items=modality.merge(partials, plan), failed_shards=failed
        )

    def gather(self, fn) -> GatherResult:
        """Scatter an ad-hoc ``fn(shard)`` to every shard (escape hatch
        for cross-shard reads that are not a registered modality); the
        per-shard results are concatenated in ring order."""
        partials, failed = self._scatter(lambda name, shard: fn(shard))
        return GatherResult(
            items=[item for partial in partials for item in partial],
            failed_shards=failed,
        )

    def _scatter(self, fn) -> tuple[list[list], tuple[str, ...]]:
        """THE scatter core: every fan-out in the cluster runs through here.

        Visits shards in ring order under per-shard deadlines.  A shard
        that is down, raises an injected crash (site ``cluster.query``),
        exceeds its deadline — injected delays advance the simulated
        clock — or whose storage RPCs stay faulted past the retry budget
        (disaggregated mode, site ``storage.rpc``) is skipped and
        reported in the failed tuple; the result is then *partial*, the
        availability-over-completeness stance the paper takes for
        interactive queries.  Partiality is observable exactly once per
        fan-out via the ``cluster.gather.partial`` counter, and
        ``failed_shards`` names exactly which shards were unreachable.
        """
        partials: list[list] = []
        failed: list[str] = []
        with self.tracer.span("cluster.gather", shards=len(self.shards)):
            for name in self.router.shards:
                if self._is_down(name):
                    self.metrics.counter("cluster.query.shard_down").inc()
                    failed.append(name)
                    continue
                guard = self.query_deadline.guard(self.clock, label=name)
                if self.faults is not None:
                    decision = self.faults.decide(
                        "cluster.query", target=name, kinds=("crash", "delay")
                    )
                    if decision.kind == "crash":
                        self.metrics.counter("cluster.query.shard_failed").inc()
                        failed.append(name)
                        continue
                    if decision.kind == "delay":
                        self.clock.advance(decision.delay_s)
                if guard.expired:
                    self.metrics.counter("cluster.query.deadline_missed").inc()
                    failed.append(name)
                    continue
                try:
                    partials.append(list(fn(name, self.shards[name])))
                except FaultInjectedError:
                    # Remote-engine RPCs that stayed faulted past the
                    # shard's retry budget: partial result, not an error.
                    self.metrics.counter("cluster.query.shard_failed").inc()
                    failed.append(name)
        self.metrics.histogram("cluster.query.fanout_results").observe(
            sum(len(partial) for partial in partials)
        )
        if failed:
            # Partial results are legitimate (availability over
            # completeness) but must be observable: dashboards alert on
            # this counter.
            self.metrics.counter("cluster.gather.partial").inc()
        return partials, tuple(failed)

    def _owned_slice(self, name: str, items: list, key_of=None) -> list:
        """Restrict shard output to keys ``name`` owns on the compute ring.

        On local engines each shard physically holds only its own keys and
        this is the identity; on a shared storage tier every compute node
        sees the whole keyspace, so scatter-gather must partition results
        by ring ownership to keep exactly-one semantics.  ``key_of`` maps
        one result item to its routing key (the modality's ``item_key``),
        keeping this filter modality-agnostic.
        """
        if self.storage is None:
            return items
        if key_of is None:
            def key_of(item):
                return item[0]
        return [
            item for item in items
            if self.router.owner_of(key_of(item)) == name
        ]

    def scan_prefix(self, prefix: str) -> GatherResult:
        """Range query: every (key, value) with ``key`` under ``prefix``."""
        return self.query(prefix_query(prefix))

    def query_spatial(self, region: BBox) -> GatherResult:
        """Entities whose payload position (``x``/``y``) lies in ``region``."""
        return self.query(spatial_query(region))

    def register_continuous(self, query_id: str, prefix: str) -> None:
        """Register a standing prefix query, re-evaluated every tick."""
        self.register_continuous_query(query_id, prefix_query(prefix))

    def register_continuous_query(
        self, query_id: str, request: QueryRequest
    ) -> None:
        """Register a standing query of *any* modality, refreshed per tick."""
        if query_id in self._continuous:
            raise ConfigurationError(f"duplicate continuous query {query_id!r}")
        self._continuous[query_id] = ContinuousQuery(
            query_id, str(request.params.get("prefix", "")), request=request
        )

    def continuous_results(self, query_id: str) -> GatherResult | None:
        return self._continuous[query_id].results

    # -- marketplace --------------------------------------------------------

    def load_catalog(self, records: list[DataRecord]) -> None:
        by_shard: dict[str, list[DataRecord]] = {}
        for record in records:
            by_shard.setdefault(self.router.owner_of(record.key), []).append(record)
        for name, batch in by_shard.items():
            self.shards[name].load_catalog(batch)
            if self.failover is not None:
                for record in batch:
                    self.failover.log_product(
                        name, record.key, dict(record.payload)
                    )

    def process_purchases(
        self, requests: list[PurchaseRequest], max_retries: int = 2
    ) -> list[PurchaseOutcome]:
        """Route each purchase to the shard owning its product.

        The global stream is sorted with the exact key a single node uses;
        each shard then processes the order-preserved subsequence, so every
        per-product decision (who gets the last unit) is identical to the
        single-node run — asserted by experiment E24.
        """
        ordered = sorted(
            requests, key=lambda r: purchase_sort_key(r, self.physical_priority)
        )
        # Salt-bucket routing: each request maps to the request that
        # actually executes (identity unless its product is salted).  The
        # heat sketch sees every original product id, so hot keys are
        # detected before and tracked after salting.
        routed = ordered
        if self.elasticity is not None:
            for request in ordered:
                self.elasticity.observe_purchase(request.product_id)
        if self.router.salted_keys():
            reserved: dict[str, int] = {}
            routed = [
                self._route_purchase(request, reserved)
                for request in ordered
            ]
        by_shard: dict[str, list[PurchaseRequest]] = {}
        for request in routed:
            owner = self.router.owner_of(request.product_id)
            by_shard.setdefault(owner, []).append(request)
        outcome_streams: dict[str, list[PurchaseOutcome]] = {}
        with self.tracer.span("cluster.process_purchases", n=len(requests)):
            for name, batch in by_shard.items():
                if self._is_down(name):
                    # Fail fast, never queue: a purchase against a crashed
                    # shard is rejected (and retriable by the shopper) —
                    # queuing it would risk double-execution at promotion.
                    outcome_streams[name] = [
                        PurchaseOutcome(request, False, "shard down")
                        for request in batch
                    ]
                    self.metrics.counter(
                        "cluster.failover.rejected_purchases"
                    ).inc(len(batch))
                    continue
                # presorted: each shard batch is an order-preserved
                # subsequence of the globally sorted stream.
                outcome_streams[name] = self.shards[name].process_purchases(
                    batch, max_retries=max_retries, presorted=True
                )
        # Re-interleave shard outcomes back into global order: each shard
        # returns its subsequence in the same sort order, so a positional
        # merge is exact.  Outcomes of salted requests are re-labelled
        # with the shopper's original request — callers never see bucket
        # keys.
        cursor = {name: 0 for name in outcome_streams}
        merged: list[PurchaseOutcome] = []
        for original, request in zip(ordered, routed):
            name = self.router.owner_of(request.product_id)
            outcome = outcome_streams[name][cursor[name]]
            cursor[name] += 1
            if request is not original:
                outcome = PurchaseOutcome(
                    original, outcome.success, outcome.reason
                )
            merged.append(outcome)
        self.metrics.counter("cluster.purchases_routed").inc(len(requests))
        self._refresh_purchase_gauges()
        return merged

    def process_basket(self, requests: list[PurchaseRequest]) -> BasketOutcome:
        """All-or-nothing basket; cross-shard baskets go through 2PC.

        A basket touching a salted product merges it back first: 2PC
        prepares exact per-shard quantities, and "enough stock across
        buckets but not in any one" must not abort a basket the unsalted
        cluster would commit.  Admission control never applies here —
        baskets are top-priority traffic and are never shed.
        """
        if not requests:
            raise ConfigurationError("empty basket")
        if self.router.salted_keys():
            for pid in sorted({r.product_id for r in requests}):
                if self.router.is_salted(pid):
                    self.unsalt_product(pid)
                    self.metrics.counter(
                        "cluster.elasticity.basket_unsalts"
                    ).inc()
        quantities: dict[str, dict[str, int]] = {}
        for request in requests:
            owner = self.router.owner_of(request.product_id)
            shard_quantities = quantities.setdefault(owner, {})
            shard_quantities[request.product_id] = (
                shard_quantities.get(request.product_id, 0) + request.quantity
            )
        shards = tuple(sorted(quantities))
        for name in shards:
            if self._is_down(name):
                self.metrics.counter("cluster.failover.rejected_baskets").inc()
                return BasketOutcome(False, f"shard down: {name}", shards)
        if len(shards) == 1:
            committed, reason = self._local_basket(shards[0], quantities[shards[0]])
            self.metrics.counter("cluster.basket.local").inc()
            return BasketOutcome(committed, reason, shards)
        outcome = self.coordinator.execute(quantities)
        self.metrics.counter("cluster.basket.distributed").inc()
        return BasketOutcome(outcome.committed, outcome.reason, shards, outcome)

    def _local_basket(
        self, shard_name: str, quantities: dict[str, int]
    ) -> tuple[bool, str]:
        """Single-shard basket: one MVCC transaction, no network rounds."""
        shard = self.shards[shard_name]
        txn = shard.txn.begin()
        new_stocks: dict[str, int] = {}
        for product_id, quantity in quantities.items():
            product = txn.read_or(product_id)
            if product is None:
                shard.txn.abort(txn)
                return False, f"no such product {product_id!r}"
            stock = product.get("stock", 0)
            if stock < quantity:
                shard.txn.abort(txn)
                return False, f"sold out: {product_id}"
            updated = dict(product)
            updated["stock"] = stock - quantity
            txn.write(product_id, updated)
            new_stocks[product_id] = updated["stock"]
        shard.txn.commit(txn)
        for product_id in new_stocks:
            shard.persist_committed(product_id)
        if self.failover is not None:
            for product_id, stock in new_stocks.items():
                self.failover.log_stock(shard_name, product_id, stock)
        return True, ""

    def get_stock(self, product_id: str) -> int:
        """Stock of ``product_id`` — merge-on-read for salted products:
        the visible stock is the sum over all salt buckets."""
        buckets = self.router.buckets_of(product_id)
        if len(buckets) > 1:
            return sum(self._bucket_stock(bucket) for bucket in buckets)
        return self._bucket_stock(product_id)

    def _bucket_stock(self, product_id: str) -> int:
        owner = self.router.owner_of(product_id)
        if owner in self._down_compute:
            # Disaggregated re-route: read the committed record straight
            # from the shared tier through any live compute node.
            fallback = self._live_shard()
            value = fallback._with_retry(
                lambda: fallback.engine.get_product(product_id)
            )
            if value is None:
                raise KeyNotFoundError(product_id)
            self.metrics.counter("cluster.disagg.rerouted_reads").inc()
            return int(value.get("stock", 0))
        if self._is_down(owner):
            stock = self.failover.replica_stock(owner, product_id)
            if stock is None:
                raise ConfigurationError(
                    f"product {product_id!r} unknown to replicas of {owner!r}"
                )
            self.metrics.counter("cluster.failover.replica_reads").inc()
            return stock
        return self.shards[owner].get_stock(product_id)

    # -- hot-key salting ----------------------------------------------------
    #
    # A flash sale concentrates the purchase stream on a few products —
    # no matter how many shards join, one shard owns the hot key and
    # melts (the hot-shard problem).  Salting splits a hot product's
    # stock across ``n_buckets`` bucket records whose keys hash to their
    # own ring positions: contention spreads across shards, the visible
    # stock is the merge-on-read sum, and total stock is conserved
    # exactly through split and merge (property-tested).

    def salt_product(self, product_id: str, n_buckets: int) -> list[str]:
        """Split ``product_id``'s stock across ``n_buckets`` salt buckets.

        Bucket 0 keeps the base key (and the first share of stock);
        buckets 1..n-1 are new product records on their own ring
        positions.  Stock splits as evenly as integers allow and sums
        back exactly.  Returns the bucket key list.
        """
        stock = self.get_stock(product_id)  # raises if unknown
        value = self._committed_product(product_id)
        if value is None:
            raise KeyNotFoundError(product_id)
        buckets = self.router.salt_key(product_id, n_buckets)
        share, extra = divmod(stock, len(buckets))
        with self.tracer.span(
            "cluster.salt_product", product=product_id, buckets=n_buckets
        ):
            for i, bucket in enumerate(buckets):
                bucket_value = dict(value)
                bucket_value["stock"] = share + (1 if i < extra else 0)
                self.shards[self.router.owner_of(bucket)].import_product(
                    bucket, bucket_value
                )
        self.metrics.counter("cluster.elasticity.salt_splits").inc()
        return buckets

    def unsalt_product(self, product_id: str) -> int:
        """Merge a salted product back into one record; returns the
        merged stock (exactly the sum of the bucket stocks)."""
        buckets = self.router.buckets_of(product_id)
        if len(buckets) == 1:
            raise ConfigurationError(f"product {product_id!r} is not salted")
        total = 0
        merged: dict | None = None
        with self.tracer.span("cluster.unsalt_product", product=product_id):
            for bucket in buckets:
                value = self._committed_product(bucket)
                if value is not None:
                    total += int(value.get("stock", 0))
                    if merged is None:
                        merged = dict(value)
            for bucket in buckets[1:]:
                self.shards[self.router.owner_of(bucket)].drop_product(bucket)
            self.router.unsalt_key(product_id)
            if merged is None:
                merged = {}
            merged["stock"] = total
            self.shards[self.router.owner_of(product_id)].import_product(
                product_id, merged
            )
        self.metrics.counter("cluster.elasticity.salt_merges").inc()
        return total

    def _committed_product(self, key: str) -> dict | None:
        """Committed product state from the owner's MVCC cache, falling
        back to storage hydration (stateless compute after a remap)."""
        owner = self.router.owner_of(key)
        shard = (
            self._live_shard()
            if owner in self._down_compute
            else self.shards[owner]
        )
        txn = shard.txn.begin()
        value = txn.read_or(key)
        if value is None:
            value = shard._hydrate_product(key)
        return dict(value) if value is not None else None

    def _route_purchase(
        self, request: PurchaseRequest, reserved: dict[str, int]
    ) -> PurchaseRequest:
        """Map a purchase onto its salt bucket (identity when unsalted).

        The shopper's stable hash picks a start bucket — the flash-sale
        crowd spreads across buckets, and a given shopper always starts
        at the same one — then rotation skips exhausted buckets so stock
        stranded in a cold bucket is still sellable.  ``reserved`` tracks
        quantities already routed in this batch on top of committed
        stock, so a batch never oversubscribes one bucket while another
        still has units: as long as *total* stock covers the request,
        some bucket accepts it (the salting property suite holds this
        exact-utilisation bar for unit purchases).
        """
        pid = request.product_id
        if not self.router.is_salted(pid):
            return request
        buckets = self.router.buckets_of(pid)
        start = stable_hash(request.shopper_id) % len(buckets)
        rotation = buckets[start:] + buckets[:start]
        chosen = rotation[0]
        for bucket in rotation:
            try:
                available = (
                    self._bucket_stock(bucket) - reserved.get(bucket, 0)
                )
            except (KeyNotFoundError, ConfigurationError):
                continue
            if available >= request.quantity:
                chosen = bucket
                reserved[chosen] = (
                    reserved.get(chosen, 0) + request.quantity
                )
                break
        self.metrics.counter("cluster.elasticity.salted_routes").inc()
        return replace(request, product_id=chosen)

    # -- failover -----------------------------------------------------------

    def kill_shard(self, name: str, torn_tail_bytes: int = 0) -> None:
        """Crash a shard abruptly (chaos entry point).

        With replica failover on, detection, promotion, and recovery play
        out over subsequent :meth:`tick` calls.  In disaggregated mode the
        compute node simply goes dark — it held no state, so the next
        :meth:`tick` recovers it by re-mounting the storage tier (zero
        data movement; ``torn_tail_bytes`` is meaningless and ignored
        because there is no compute-side WAL to tear).  Either way its
        2PC participant goes silent, so an in-flight basket aborts on the
        prepare round instead of blocking.
        """
        if self.failover is None and self.storage is None:
            raise ConfigurationError(
                "kill_shard requires n_replicas >= 2 or a storage tier"
            )
        if name not in self.shards:
            raise ConfigurationError(f"unknown shard {name!r}")
        if self.storage is not None:
            self._down_compute.add(name)
            self.metrics.counter("cluster.disagg.kills").inc()
        else:
            self.failover.kill(name, torn_tail_bytes=torn_tail_bytes)
        participant = self.coordinator.participants.get(name)
        if participant is not None:
            participant.crashed = True
        self._refresh_shard_gauges()

    # -- rebalancing --------------------------------------------------------

    def add_shard(self, name: str) -> int:
        """Join a fresh shard and migrate the keys it now owns.

        Returns the number of keys (entities + products) that moved — in
        disaggregated mode always 0: joining is a pure ring remap, the
        new compute node reads everything it now owns from the shared
        tier on demand.
        """
        if name in self.shards:
            raise ConfigurationError(f"duplicate shard {name!r}")
        self.flush()  # buffered records route under the old ring otherwise
        shard = self._make_shard(name)
        self.router.add_shard(name)
        self.shards[name] = shard
        self.coordinator.attach_shard(name, shard)
        if self.storage is not None:
            return self._remap_compute()
        moved = self._rebalance()
        if self.failover is not None:
            self._hook_purchase_log(name, shard)
            self.failover.resync()
        return moved

    def remove_shard(self, name: str) -> int:
        """Drain and drop a shard; its keys migrate to their new owners.

        In disaggregated mode nothing drains — the departing compute node
        held only caches — so the return value is always 0.
        """
        if name not in self.shards:
            raise ConfigurationError(f"unknown shard {name!r}")
        if len(self.shards) == 1:
            raise ConfigurationError("cannot remove the last shard")
        if self.failover is not None and self.failover.state(name) != "up":
            raise ConfigurationError(
                f"shard {name!r} is {self.failover.state(name)}; "
                "wait for failover to finish before removing it"
            )
        if name in self._down_compute:
            raise ConfigurationError(
                f"shard {name!r} is down; let the next tick re-mount it "
                "before removing it"
            )
        self.flush()
        self.router.remove_shard(name)
        departing = self.shards.pop(name)
        self.coordinator.detach_shard(name)
        if self.storage is not None:
            return self._remap_compute()
        moved = self._drain(departing)
        if self.failover is not None:
            self.failover.resync()
        self.metrics.counter("cluster.rebalance.moved_keys").inc(moved)
        self._refresh_shard_gauges()
        return moved

    def _remap_compute(self) -> int:
        """Disaggregated membership change: zero keys move; every compute
        node drops its caches so the next access hydrates fresh state
        from the tier under the new ownership map.

        Deferred product write-throughs (parked on storage faults) are
        force-flushed *before* the caches drop: the new owner hydrates
        from the tier, and a stale tier record would resurrect sold
        stock.  A write still failing is surfaced as a counter — the
        oversell hazard is then real and observable, not silent.
        """
        for name, shard in self.shards.items():
            remaining = shard.flush_dirty_products()
            if remaining:
                self.metrics.counter("cluster.disagg.dirty_remaps").inc()
                self.tracer.log(
                    "warn",
                    "remap with unflushed product write-throughs",
                    shard=name,
                    dirty=remaining,
                )
            shard.reset_caches()
        self.metrics.counter("cluster.disagg.remaps").inc()
        self.metrics.counter("cluster.rebalance.moved_keys").inc(0)
        self._refresh_shard_gauges()
        return 0

    def _rebalance(self) -> int:
        """Move every key whose ring owner changed; nothing else moves."""
        moved = 0
        with self.tracer.span("cluster.rebalance"):
            for name in list(self.shards):
                shard = self.shards[name]
                for key in shard.entity_keys():
                    target = self.router.owner_of(key)
                    if target != name:
                        self.shards[target].import_entity(
                            key, shard.export_entity(key)
                        )
                        shard.drop_entity(key)
                        moved += 1
                for product_id, value in shard.catalog_snapshot().items():
                    target = self.router.owner_of(product_id)
                    if target != name:
                        self.shards[target].import_product(product_id, value)
                        shard.drop_product(product_id)
                        moved += 1
        self.metrics.counter("cluster.rebalance.moved_keys").inc(moved)
        self._refresh_shard_gauges()
        return moved

    def _drain(self, departing: MetaversePlatform) -> int:
        moved = 0
        with self.tracer.span("cluster.rebalance", draining=True):
            for key in departing.entity_keys():
                self.shards[self.router.owner_of(key)].import_entity(
                    key, departing.export_entity(key)
                )
                moved += 1
            for product_id, value in departing.catalog_snapshot().items():
                self.shards[self.router.owner_of(product_id)].import_product(
                    product_id, value
                )
                moved += 1
        return moved

    # -- introspection ------------------------------------------------------

    def entity_locations(self) -> dict[str, list[str]]:
        """Which shard(s) serve each entity key — exactly one, invariantly.

        On local engines this is physical placement; on a shared storage
        tier it is ring ownership (every entity lives in the tier and is
        *served* by exactly one compute node).
        """
        if self.storage is not None:
            return {
                key: [self.router.owner_of(key)] for key in self.storage.keys()
            }
        locations: dict[str, list[str]] = {}
        for name, shard in self.shards.items():
            for key in shard.entity_keys():
                locations.setdefault(key, []).append(name)
        return locations

    def compute_makespan(self) -> float:
        """Simulated completion time: shards run in parallel, so the
        cluster finishes when its busiest shard does."""
        return max(shard.compute_makespan() for shard in self.shards.values())

    def compute_throughput(self, n_requests: int) -> float:
        makespan = self.compute_makespan()
        return n_requests / makespan if makespan > 0 else float("inf")

    def _refresh_shard_gauges(self) -> None:
        owned_counts: dict[str, int] | None = None
        if self.storage is not None:
            # One tier sweep instead of a per-shard keys() fan-out: count
            # how many tier keys each compute node currently owns.
            owned_counts = {name: 0 for name in self.shards}
            for key in self.storage.keys():
                owner = self.router.owner_of(key)
                if owner in owned_counts:
                    owned_counts[owner] += 1
            self.storage.refresh_gauges()
        for name, shard in self.shards.items():
            self.metrics.gauge(f"cluster.shard.{name}.entities").set(
                float(owned_counts[name]) if owned_counts is not None
                else float(len(shard.entity_keys()))
            )
            # Per-shard resilience state, labeled by shard name: the
            # circuit-breaker position (0/1/2 = closed/half-open/open,
            # previously visible only at platform level) and the failure
            # detector's view (suspicion level + liveness).
            breaker = shard.breaker
            self.metrics.gauge(f"cluster.shard.{name}.breaker_state").set(
                _BREAKER_STATE_CODES.get(breaker.state, 0.0)
                if breaker is not None
                else 0.0
            )
            if self.failover is not None:
                self.metrics.gauge(f"cluster.shard.{name}.alive").set(
                    0.0 if self.failover.is_down(name) else 1.0
                )
                self.metrics.gauge(f"cluster.shard.{name}.phi").set(
                    self.failover.phi(name)
                )
            elif self.storage is not None:
                self.metrics.gauge(f"cluster.shard.{name}.alive").set(
                    0.0 if name in self._down_compute else 1.0
                )

    def _refresh_purchase_gauges(self) -> None:
        for name, shard in self.shards.items():
            self.metrics.gauge(f"cluster.shard.{name}.purchases").set(
                float(sum(e.processed for e in shard.executors))
            )
            self.metrics.gauge(f"cluster.shard.{name}.busy_s").set(
                shard.compute_makespan()
            )

"""Closed-loop elasticity: autoscaling, hot-key salting, admission control.

The paper's elasticity argument (Sec. IV-E) is that a metaverse platform
must ride out order-of-magnitude load swings — diurnal cycles, flash
sales — without being provisioned for the peak.  The disaggregated
cluster already makes membership changes cheap (a join/leave is a pure
ring remap, zero data movement); this module closes the loop by *driving*
those membership changes from the cluster's own metrics:

* :class:`ScalingPolicy` — a pure hysteresis + cooldown decision core.
  It sees a stream of ``(now, p95 ingest wait, shard count)`` evaluations
  and answers scale out / scale in / hold.  Two bands
  (``slo_p95_wait_s`` above, ``clear_p95_wait_s`` below) with a dead zone
  between them, consecutive-evaluation streak requirements, and a
  post-action cooldown make the policy provably non-oscillating — the
  Hypothesis suite in ``tests/test_cluster_elasticity.py`` drives this
  class directly with generated signal streams.
* :class:`ElasticityController` — binds the policy to a live
  :class:`~repro.cluster.cluster.PlatformCluster`: reads windowed
  per-shard ingest-wait histograms (:meth:`Histogram.window
  <repro.core.metrics.Histogram.window>` — recent load, not lifetime
  quantiles), joins ``elastic-N`` compute shards on breach, retires them
  LIFO on sustained slack, and runs the hot-key and admission mechanisms
  below on the same cadence.
* **hot-key salting** — a :class:`~repro.selftune.heat.HeatSketch` over
  the purchase stream finds products drawing more than a configured share
  of recent traffic; the controller splits them across salt buckets on
  distinct shards (router-level salt map, merge-on-read stock, see
  :meth:`PlatformCluster.salt_product`) and merges them back when they
  cool.
* :class:`AdmissionController` — a per-shard :class:`TokenBucket` ahead
  of the circuit breaker.  When a shard's bucket runs dry, the lowest
  priority traffic is shed first: virtual-space LOD records are dropped
  (and the shared :class:`~repro.resilience.degrade.DegradationController`
  notified, so attached streamers coarsen), physical-space records are
  always admitted.  Already-admitted work is never shed — purchases and
  2PC baskets do not pass through admission at all.

Everything is driven by the simulated clock, so a run is deterministic:
the same workload and seed produce the same scale actions, the same salt
decisions, and the same shed counts (experiment E29 commits to this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.clock import SimulationClock
from ..core.errors import ConfigurationError
from ..core.metrics import MetricsRegistry
from ..core.records import Space
from ..obs.tracing import NoopTracer, Tracer
from ..resilience.degrade import DegradationController
from ..selftune.heat import HeatSketch
from .config import ElasticityConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cluster import PlatformCluster


@dataclass(frozen=True)
class ScaleAction:
    """One scale decision, for audit and test assertions."""

    at: float
    direction: str  # "out" | "in"
    from_shards: int
    to_shards: int
    p95_wait_s: float


class ScalingPolicy:
    """Pure hysteresis + cooldown scale-decision core.

    Stateful but clusterless: feed it evaluations via :meth:`decide` and
    it answers ``+1`` (scale out), ``-1`` (scale in), or ``0`` (hold).
    The anti-oscillation contract, held by the property tier:

    * at most one action per ``cooldown_s`` of evaluation time — inside
      a cooldown window every decision is ``0``;
    * an action requires the signal to sit past its band for
      ``breach_evals`` / ``clear_evals`` *consecutive* evaluations;
      a single sample in the dead zone resets both streaks;
    * shard counts never leave ``[min_shards, max_shards]``.
    """

    def __init__(self, config: ElasticityConfig) -> None:
        self.config = config.validate()
        self._breach_streak = 0
        self._clear_streak = 0
        self._last_action_at: float | None = None
        self.actions: list[ScaleAction] = []

    def in_cooldown(self, now: float) -> bool:
        return (
            self._last_action_at is not None
            and now - self._last_action_at < self.config.cooldown_s
        )

    def decide(self, now: float, p95_wait_s: float, n_shards: int) -> int:
        """One evaluation of the control signal; returns the shard delta."""
        cfg = self.config
        if p95_wait_s >= cfg.slo_p95_wait_s:
            self._breach_streak += 1
            self._clear_streak = 0
        elif p95_wait_s <= cfg.clear_p95_wait_s:
            self._clear_streak += 1
            self._breach_streak = 0
        else:
            # Dead zone between the bands: the load is neither bad enough
            # to grow nor calm enough to shrink — streaks restart.
            self._breach_streak = 0
            self._clear_streak = 0
        if self.in_cooldown(now):
            return 0
        if self._breach_streak >= cfg.breach_evals and n_shards < cfg.max_shards:
            self._record(now, "out", n_shards, n_shards + 1, p95_wait_s)
            return +1
        if self._clear_streak >= cfg.clear_evals and n_shards > cfg.min_shards:
            self._record(now, "in", n_shards, n_shards - 1, p95_wait_s)
            return -1
        return 0

    def _record(
        self, now: float, direction: str, before: int, after: int, p95: float
    ) -> None:
        self.actions.append(ScaleAction(now, direction, before, after, p95))
        self._last_action_at = now
        self._breach_streak = 0
        self._clear_streak = 0


class TokenBucket:
    """Deterministic token bucket on the simulated clock.

    Refills continuously at ``rate`` tokens/second up to ``burst``;
    :meth:`try_take` either takes whole tokens or reports exhaustion.
    """

    def __init__(self, rate: float, burst: float, now: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ConfigurationError("rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self._last_refill = now

    def try_take(self, now: float, n: float = 1.0) -> bool:
        if now > self._last_refill:
            self.tokens = min(
                self.burst, self.tokens + (now - self._last_refill) * self.rate
            )
            self._last_refill = now
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False


class AdmissionController:
    """Load shedding *ahead* of the circuit breaker (paper Sec. IV-C).

    The breaker protects a failing downstream after the fact; admission
    control keeps an overloaded shard from being swamped in the first
    place.  Each shard gets a :class:`TokenBucket`; the shedding policy
    is strictly priority-ordered, the "low resolution instead of late"
    stance applied to ingest:

    * **physical-space records are always admitted** — they describe the
      real world and losing them is unacceptable; an exhausted bucket
      overdraws rather than sheds (counted separately);
    * **virtual-space (LOD) records are shed** when the bucket is dry,
      and every shed is reported to the shared
      :class:`DegradationController`, so attached adaptive streamers cut
      their frame budgets — the source slows down instead of the
      platform drowning;
    * **already-admitted work is never shed** — purchases and baskets do
      not pass through this gate at all.
    """

    def __init__(
        self,
        config: ElasticityConfig,
        clock: SimulationClock,
        metrics: MetricsRegistry | None = None,
        degradation: DegradationController | None = None,
    ) -> None:
        self.config = config
        self.clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.degradation = degradation
        self._buckets: dict[str, TokenBucket] = {}

    def _bucket(self, shard: str) -> TokenBucket:
        bucket = self._buckets.get(shard)
        if bucket is None:
            rate = self.config.admission_rate
            burst = (
                self.config.admission_burst
                if self.config.admission_burst is not None
                else rate
            )
            bucket = TokenBucket(rate, burst, self.clock.now)
            self._buckets[shard] = bucket
        return bucket

    def forget_shard(self, shard: str) -> None:
        """Drop a retired shard's bucket (its tokens retire with it)."""
        self._buckets.pop(shard, None)

    def admit(self, shard: str, space: Space) -> bool:
        """Admit or shed one ingest record bound for ``shard``."""
        if self._bucket(shard).try_take(self.clock.now):
            self.metrics.counter("cluster.elasticity.admitted").inc()
            if self.degradation is not None:
                self.degradation.observe(True)
            return True
        if space is Space.PHYSICAL:
            # Physical observations must land; the bucket overdraws.
            self.metrics.counter(
                "cluster.elasticity.physical_overdraft"
            ).inc()
            return True
        self.metrics.counter("cluster.elasticity.shed_records").inc()
        if self.degradation is not None:
            self.degradation.observe(False)
        return False


class ElasticityController:
    """The closed loop binding policy, sketch, and admission to a cluster.

    Owned by :class:`~repro.cluster.cluster.PlatformCluster` when its
    config carries an :class:`ElasticityConfig`; :meth:`tick` runs once
    per cluster tick, after ingest flush (so the wait histograms are
    fresh), gated to the configured control interval.
    """

    def __init__(
        self,
        cluster: "PlatformCluster",
        config: ElasticityConfig,
        clock: SimulationClock,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.cluster = cluster
        self.config = config.validate()
        self.clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NoopTracer()
        self.policy = ScalingPolicy(config)
        self.sketch = HeatSketch()
        self.degradation = DegradationController(
            metrics=self.metrics, tracer=self.tracer
        )
        self.admission: AdmissionController | None = None
        if config.admission_rate is not None:
            self.admission = AdmissionController(
                config,
                clock=clock,
                metrics=self.metrics,
                degradation=self.degradation,
            )
        self._last_eval_at: float | None = None
        self._elastic_seq = 0
        # Shards this controller added, newest last; scale-in retires
        # them LIFO and never touches the operator-provisioned base set.
        self._elastic_shards: list[str] = []
        self.node_seconds = 0.0

    # -- signals ------------------------------------------------------------

    def observe_purchase(self, product_id: str, count: float = 1.0) -> None:
        """Feed the heat sketch (called by the cluster's purchase router)."""
        if self.config.hot_key_fraction is not None:
            self.sketch.observe(product_id, count)

    # -- the loop -----------------------------------------------------------

    def tick(self, dt: float) -> None:
        """One control-loop step; cheap no-op between control intervals."""
        self.node_seconds += len(self.cluster.shards) * dt
        self.metrics.gauge("cluster.elasticity.node_seconds").set(
            self.node_seconds
        )
        now = self.clock.now
        if (
            self._last_eval_at is not None
            and now - self._last_eval_at < self.config.control_interval_s
        ):
            return
        self._last_eval_at = now
        p95 = self.cluster.ingest_wait_p95(self.config.window)
        self.metrics.gauge("cluster.elasticity.p95_wait_s").set(p95)
        if self.config.autoscale:
            self._autoscale(now, p95)
        if self.config.hot_key_fraction is not None:
            self._retune_salting()
        self.metrics.gauge("cluster.elasticity.shards").set(
            float(len(self.cluster.shards))
        )

    def _autoscale(self, now: float, p95: float) -> None:
        delta = self.policy.decide(now, p95, len(self.cluster.shards))
        if delta > 0:
            name = f"elastic-{self._elastic_seq}"
            self._elastic_seq += 1
            self.cluster.add_shard(name)
            self._elastic_shards.append(name)
            self.metrics.counter("cluster.elasticity.scale_out").inc()
            self.tracer.log(
                "info", "elasticity scale-out", shard=name, p95_wait_s=p95
            )
        elif delta < 0 and self._elastic_shards:
            name = self._elastic_shards.pop()
            self.cluster.remove_shard(name)
            if self.admission is not None:
                self.admission.forget_shard(name)
            self.metrics.counter("cluster.elasticity.scale_in").inc()
            self.tracer.log(
                "info", "elasticity scale-in", shard=name, p95_wait_s=p95
            )

    def _retune_salting(self) -> None:
        """Salt products the sketch calls hot; unsalt the ones that cooled."""
        cfg = self.config
        hot = {
            key
            for key, _share in self.sketch.hot_keys(
                cfg.hot_key_fraction, min_total=float(cfg.hot_key_min_requests)
            )
        }
        router = self.cluster.router
        for pid in sorted(hot):
            if not router.is_salted(pid):
                self.cluster.salt_product(pid, cfg.salt_buckets)
                self.metrics.counter("cluster.elasticity.salted").inc()
                self.tracer.log("info", "hot product salted", product=pid)
        cool_floor = cfg.hot_key_fraction / 4.0
        for pid in list(router.salted_keys()):
            if pid not in hot and self.sketch.share(pid) < cool_floor:
                self.cluster.unsalt_product(pid)
                self.metrics.counter("cluster.elasticity.unsalted").inc()
                self.tracer.log("info", "product unsalted", product=pid)
        # Age the sketch once per evaluation so "hot" means hot *recently*.
        self.sketch.decay()

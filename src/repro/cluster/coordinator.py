"""Cross-shard purchases: the existing 2PC coordinator over platform shards.

A flash-sale basket can touch products owned by different shards; the
paper notes such cross-partition transactions are "hard to process at
scale" — they pay message rounds over the network.  Rather than invent a
new protocol, the cluster binds the canonical blocking 2PC driver from
:mod:`repro.txn.twopc` to shard-local MVCC state: a
:class:`ShardParticipant` overrides the participant's stage/apply/release
hooks so phase 1 validates stock inside a shard transaction and phase 2
commits (or aborts) that same transaction.  The protocol machinery —
prepare/vote/decision/ack rounds, timeouts, partition behaviour over
:class:`~repro.net.simnet.SimulatedNetwork` — is inherited unchanged, so
the latency the coordinator observes is the genuine message-round cost.
"""

from __future__ import annotations

from ..core.clock import EventScheduler, SimulationClock
from ..core.errors import KeyNotFoundError, WriteConflictError
from ..core.metrics import MetricsRegistry
from ..net.simnet import SimulatedNetwork
from ..obs.tracing import NoopTracer, Tracer
from ..platform.platform import MetaversePlatform
from ..txn.twopc import Coordinator, DistributedTxn, Participant, TxnOutcome


class ShardParticipant(Participant):
    """A 2PC participant whose resource manager is a platform shard.

    The staged resource is a live MVCC transaction holding the decremented
    stock values; the vote is the outcome of validating the basket against
    the shard's snapshot.
    """

    def __init__(
        self, network: SimulatedNetwork, name: str, shard: MetaversePlatform
    ) -> None:
        super().__init__(network, name)
        self.shard = shard

    def _stage(self, txn_id: int, writes: dict) -> bool:
        txn = self.shard.txn.begin()
        for product_id, quantity in writes.items():
            try:
                product = txn.read(product_id)
            except KeyNotFoundError:
                self.shard.txn.abort(txn)
                return False
            stock = product.get("stock", 0)
            if stock < quantity:
                self.shard.txn.abort(txn)
                return False
            updated = dict(product)
            updated["stock"] = stock - quantity
            txn.write(product_id, updated)
        self._staged[txn_id] = (txn, dict(writes))
        return True

    def _apply(self, txn_id: int, staged) -> None:
        txn, quantities = staged
        try:
            self.shard.txn.commit(txn)
            self._persist_stocks(quantities)
            self._log_stocks(quantities)
            return
        except WriteConflictError:
            pass
        # A local purchase slipped in between prepare and commit (only
        # possible when the caller interleaves shard work with an open 2PC
        # round).  The global decision is already COMMIT, so re-apply the
        # decrement against fresh state rather than losing the basket.
        self.shard.metrics.counter("cluster.twopc.commit_replays").inc()
        for product_id, quantity in quantities.items():
            txn = self.shard.txn.begin()
            product = dict(txn.read_or(product_id, {"stock": 0}))
            product["stock"] = product.get("stock", 0) - quantity
            txn.write(product_id, product)
            self.shard.txn.commit(txn)
        self._persist_stocks(quantities)
        self._log_stocks(quantities)

    def _persist_stocks(self, quantities: dict) -> None:
        """Write the committed post-basket state through to the shard's
        storage engine (a dict write on the local default; the durability
        step that keeps compute stateless on a remote engine)."""
        for product_id in quantities:
            self.shard.persist_committed(product_id)

    def _log_stocks(self, quantities: dict) -> None:
        """Replicate post-commit stock levels (failover write path)."""
        if self.shard.purchase_log is None:
            return
        for product_id in quantities:
            self.shard.purchase_log(product_id, self.shard.get_stock(product_id))

    def _release(self, txn_id: int, staged) -> None:
        txn, _ = staged
        self.shard.txn.abort(txn)


class CrossShardCoordinator:
    """Runs baskets spanning shards through one shared 2PC coordinator."""

    def __init__(
        self,
        shards: dict[str, MetaversePlatform],
        clock: SimulationClock | None = None,
        timeout_s: float = 5.0,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NoopTracer()
        self.scheduler = EventScheduler(clock)
        self.network = SimulatedNetwork(self.scheduler, metrics=self.metrics)
        self.coordinator = Coordinator(
            self.network, name="cluster-coordinator", timeout_s=timeout_s
        )
        self.participants: dict[str, ShardParticipant] = {}
        for name, shard in shards.items():
            self.attach_shard(name, shard)

    def attach_shard(self, name: str, shard: MetaversePlatform) -> None:
        """(Re-)bind ``name`` to a participant over ``shard``.

        Re-attaching after a failover promotion replaces the crashed
        participant's network endpoint, so a promoted replica answers 2PC
        rounds under the same name.
        """
        if name in self.participants:
            self.network.remove_node(name)
        self.participants[name] = ShardParticipant(self.network, name, shard)

    def detach_shard(self, name: str) -> None:
        self.participants.pop(name, None)

    def execute(self, quantities_by_shard: dict[str, dict[str, int]]) -> TxnOutcome:
        """Run one basket ({shard: {product: quantity}}) to a decision."""
        with self.tracer.span(
            "cluster.twopc", shards=len(quantities_by_shard)
        ):
            outcome = self.coordinator.execute(
                DistributedTxn(writes_by_participant=dict(quantities_by_shard))
            )
        state = "committed" if outcome.committed else "aborted"
        self.metrics.counter(f"cluster.twopc.{state}").inc()
        self.metrics.histogram("cluster.twopc.latency_s").observe(
            outcome.total_latency
        )
        return outcome

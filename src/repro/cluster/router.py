"""Consistent-hash routing of entities onto platform shards (paper Sec. IV).

The paper's scale-out argument — "database sharding, workload
partitioning" — needs a stable key → shard mapping that (a) spreads load
evenly and (b) moves as few keys as possible when the shard set changes.
:class:`ShardRouter` provides both by reusing the :class:`ChordRing` from
the P2P overlay (the same ring :class:`~repro.storage.sharded.ShardedKVCluster`
shards over), with each shard joining under ``vnodes`` virtual points so
ownership arcs stay balanced even for small clusters.

Properties the test tier holds the router to (``tests/test_cluster_ring.py``):

* **balance** — over random key sets, the most loaded shard stays within a
  small constant factor of the ideal ``keys / shards``;
* **minimal movement** — when a shard joins, the only keys that change
  owner are those the new shard now owns; when a shard leaves, the only
  keys that change owner are those the departed shard used to own.
"""

from __future__ import annotations

from ..core.errors import ConfigurationError
from ..core.metrics import MetricsRegistry
from ..net.overlay import ChordRing

#: Separator between a shard name and its virtual-node index on the ring.
_VNODE_SEP = "#"

#: Separator between a salted key's base and its salt-bucket index.
_SALT_SEP = "~s"


class ShardRouter:
    """Maps entity/region keys onto named shards via a vnode hash ring."""

    def __init__(
        self,
        shard_names: list[str] | None = None,
        vnodes: int = 64,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if vnodes < 1:
            raise ConfigurationError("vnodes must be >= 1")
        self.vnodes = vnodes
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.ring = ChordRing()
        # A second, bare-name ring (no vnodes) fixes the replica-placement
        # walk: each shard joins at exactly one point, so its ring
        # successors are n-1 *other* shards — the holder set the failover
        # layer replicates each shard's op log to.
        self.replica_ring = ChordRing()
        self._shards: list[str] = []
        # key → owner memo.  A ring lookup is a sha256 + bisect per call
        # and the hot paths (batch routing, purchase routing, owned-slice
        # filters) ask about the same keys every tick; the memo makes the
        # steady state a dict hit.  Any membership change invalidates it
        # wholesale — correctness over cleverness.
        self._owner_cache: dict[str, str] = {}
        self._owner_cache_cap = 1 << 20
        # Hot-key salting (elasticity layer): base key → bucket count.
        # The router only keeps the map — splitting stock into buckets
        # and merging it back is the cluster's job (it owns the data
        # paths); routing a salted key's *buckets* goes through the
        # normal ring, so buckets land on distinct shards naturally.
        self._salted: dict[str, int] = {}
        for name in shard_names or []:
            self.add_shard(name)

    # -- membership ---------------------------------------------------------

    def add_shard(self, name: str) -> None:
        if _VNODE_SEP in name:
            raise ConfigurationError(
                f"shard name {name!r} may not contain {_VNODE_SEP!r}"
            )
        if name in self._shards:
            raise ConfigurationError(f"duplicate shard {name!r}")
        for i in range(self.vnodes):
            self.ring.join(f"{name}{_VNODE_SEP}{i}")
        self.replica_ring.join(name)
        self._shards.append(name)
        self._owner_cache.clear()
        self.metrics.gauge("cluster.router.shards").set(len(self._shards))

    def remove_shard(self, name: str) -> None:
        if name not in self._shards:
            raise ConfigurationError(f"unknown shard {name!r}")
        for i in range(self.vnodes):
            self.ring.leave(f"{name}{_VNODE_SEP}{i}")
        self.replica_ring.leave(name)
        self._shards.remove(name)
        self._owner_cache.clear()
        self.metrics.gauge("cluster.router.shards").set(len(self._shards))

    @property
    def shards(self) -> list[str]:
        """Shard names in registration order."""
        return list(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, name: str) -> bool:
        return name in self._shards

    # -- routing ------------------------------------------------------------

    def owner_of(self, key: str) -> str:
        """The shard owning ``key`` (the vnode arc it hashes into)."""
        if not self._shards:
            raise ConfigurationError("router has no shards")
        self.metrics.counter("cluster.router.lookups").inc()
        owner = self._owner_cache.get(key)
        if owner is None:
            if len(self._owner_cache) >= self._owner_cache_cap:
                self._owner_cache.clear()
            owner = self.ring.owner_of(key).split(_VNODE_SEP, 1)[0]
            self._owner_cache[key] = owner
        return owner

    def replica_holders(self, name: str, n: int) -> list[str]:
        """The ``n`` distinct shards holding copies of ``name``'s op log:
        the shard itself plus its clockwise successors on the bare-name
        ring (the ``replicas_of`` walk from :mod:`repro.storage.sharded`)."""
        if name not in self._shards:
            raise ConfigurationError(f"unknown shard {name!r}")
        return self.replica_ring.successors(name, n)

    def group_by_shard(self, keys: list[str]) -> dict[str, list[str]]:
        """Partition ``keys`` by owning shard (input order preserved)."""
        out: dict[str, list[str]] = {}
        for key in keys:
            out.setdefault(self.owner_of(key), []).append(key)
        return out

    # -- hot-key salting ----------------------------------------------------

    def salt_key(self, key: str, n_buckets: int) -> list[str]:
        """Register ``key`` as salted across ``n_buckets`` buckets.

        Bucket 0 is the base key itself (so unsalted readers still find
        *a* record); buckets 1..n-1 are ``<key>~s<i>``, which hash to
        their own ring positions and therefore spread across shards.
        Returns the bucket key list.
        """
        if n_buckets < 2:
            raise ConfigurationError("salting needs at least 2 buckets")
        if key in self._salted:
            raise ConfigurationError(f"key {key!r} is already salted")
        if _SALT_SEP in key:
            raise ConfigurationError(
                f"key {key!r} may not contain {_SALT_SEP!r} (reserved for "
                "salt buckets; nested salting is not supported)"
            )
        self._salted[key] = n_buckets
        self.metrics.gauge("cluster.router.salted_keys").set(
            float(len(self._salted))
        )
        return self.buckets_of(key)

    def unsalt_key(self, key: str) -> None:
        """Forget ``key``'s salt map entry (the cluster merges its stock)."""
        if key not in self._salted:
            raise ConfigurationError(f"key {key!r} is not salted")
        del self._salted[key]
        self.metrics.gauge("cluster.router.salted_keys").set(
            float(len(self._salted))
        )

    def is_salted(self, key: str) -> bool:
        return key in self._salted

    def salted_keys(self) -> list[str]:
        """Currently salted base keys, in registration order."""
        return list(self._salted)

    def buckets_of(self, key: str) -> list[str]:
        """The bucket keys a salted ``key`` is split across (bucket 0 is
        the base key itself); ``[key]`` when the key is not salted."""
        n = self._salted.get(key)
        if n is None:
            return [key]
        return [key] + [f"{key}{_SALT_SEP}{i}" for i in range(1, n)]

    @staticmethod
    def base_key(key: str) -> str:
        """Strip a salt-bucket suffix: ``product~s2`` → ``product``.
        Keys without a well-formed suffix pass through unchanged."""
        base, sep, tail = key.rpartition(_SALT_SEP)
        if sep and tail.isdigit():
            return base
        return key

    def load_of(self, keys: list[str]) -> dict[str, int]:
        """Keys per shard for balance introspection (all shards listed)."""
        counts = {name: 0 for name in self._shards}
        for key in keys:
            counts[self.owner_of(key)] += 1
        return counts

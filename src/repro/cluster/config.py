"""Declarative cluster construction config.

:class:`PlatformCluster` grew one keyword argument per feature (vnodes,
replica failover, the disaggregated storage tier, ...) until call sites
carried a dozen loose knobs.  :class:`ClusterConfig` folds the shape of
the cluster — shard count, ring geometry, deadlines, failover and
disaggregation settings — into one validated dataclass, leaving only the
runtime collaborators (metrics registry, tracer, fault injector) as
constructor arguments.  Cross-field rules live in :meth:`validate`
instead of the constructor body, so a config can be checked (and its
error surfaced) before any shard is built.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigurationError


@dataclass
class ClusterConfig:
    """Everything that decides a :class:`PlatformCluster`'s shape.

    Field defaults are exactly the legacy keyword defaults, so
    ``ClusterConfig()`` builds the same cluster as a bare
    ``PlatformCluster()`` always did.
    """

    n_shards: int = 4
    n_executors_per_shard: int = 4
    vnodes: int = 64
    query_deadline_s: float = 0.25
    twopc_timeout_s: float = 5.0
    buffer_pool_pages: int = 256
    physical_priority: bool = True
    txn_cost_s: float = 1e-4
    n_replicas: int = 1
    heartbeat_interval_s: float = 0.05
    phi_threshold: float = 8.0
    n_storage_nodes: int | None = None
    storage_vnodes: int = 32
    storage_rpc_timeout_s: float = 0.05
    #: Compact replica op logs once a shard's primary copy exceeds this
    #: many entries (None disables compaction entirely).
    replica_log_compact_threshold: int | None = 4096

    def validate(self) -> "ClusterConfig":
        """Check cross-field invariants; returns self for chaining."""
        if self.n_shards < 1:
            raise ConfigurationError("need at least one shard")
        if not 1 <= self.n_replicas <= self.n_shards:
            raise ConfigurationError(
                f"n_replicas must be in [1, n_shards], got {self.n_replicas}"
            )
        if (
            self.replica_log_compact_threshold is not None
            and self.replica_log_compact_threshold < 1
        ):
            raise ConfigurationError(
                "replica_log_compact_threshold must be >= 1 (or None)"
            )
        if self.n_storage_nodes is not None:
            if self.n_storage_nodes < 1:
                raise ConfigurationError("need at least one storage node")
            if self.n_replicas >= 2:
                raise ConfigurationError(
                    "disaggregated mode and replica failover are mutually "
                    "exclusive: with a shared storage tier, availability "
                    "comes from re-mounting it, not from WAL replicas"
                )
        return self

"""Declarative cluster construction config.

:class:`PlatformCluster` grew one keyword argument per feature (vnodes,
replica failover, the disaggregated storage tier, ...) until call sites
carried a dozen loose knobs.  :class:`ClusterConfig` folds the shape of
the cluster — shard count, ring geometry, deadlines, failover and
disaggregation settings — into one validated dataclass, leaving only the
runtime collaborators (metrics registry, tracer, fault injector) as
constructor arguments.  Cross-field rules live in :meth:`validate`
instead of the constructor body, so a config can be checked (and its
error surfaced) before any shard is built.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigurationError


@dataclass
class ElasticityConfig:
    """Shape of the closed elasticity loop (:mod:`repro.cluster.elasticity`).

    Three independently switchable mechanisms:

    * **autoscaling** (``autoscale=True``) — hysteresis + cooldown scale
      decisions over the windowed p95 ingest wait, joining/leaving
      stateless compute shards between ``min_shards`` and ``max_shards``.
      Requires disaggregated mode (``n_storage_nodes``): only there is a
      membership change a zero-migration ring remap cheap enough for a
      control loop to issue.
    * **hot-key salting** (``hot_key_fraction`` set) — products whose
      share of recent purchase traffic crosses the fraction are split
      across ``salt_buckets`` salt buckets on distinct shards
      (merge-on-read); they merge back when their share falls below a
      quarter of the fraction.
    * **admission control** (``admission_rate`` set) — a token bucket
      per shard ahead of the circuit breaker; when a shard's bucket is
      dry, lowest-priority LOD traffic (virtual-space records) is shed
      first, physical-space records are always admitted.
    """

    # -- autoscaling --------------------------------------------------------
    autoscale: bool = True
    min_shards: int = 2
    max_shards: int = 8
    #: Evaluate the control signals at most once per this much simulated time.
    control_interval_s: float = 0.5
    #: Minimum simulated time between scale actions (the hysteresis window).
    cooldown_s: float = 2.0
    #: Scale-out band: windowed p95 ingest wait at or above this breaches SLO.
    slo_p95_wait_s: float = 0.5
    #: Scale-in band: windowed p95 ingest wait at or below this is slack.
    clear_p95_wait_s: float = 0.1
    #: Consecutive breached evaluations required before scaling out.
    breach_evals: int = 2
    #: Consecutive slack evaluations required before scaling in.
    clear_evals: int = 4
    #: Histogram window (samples) for controller reads.
    window: int = 16
    # -- hot-key salting ----------------------------------------------------
    #: Share of recent purchase traffic at which a product is salted
    #: (None disables automatic salting).
    hot_key_fraction: float | None = None
    #: Minimum sketch traffic before any salting decision.
    hot_key_min_requests: int = 64
    #: Salt buckets a hot product is split across.
    salt_buckets: int = 4
    # -- admission control --------------------------------------------------
    #: Records per second per shard admitted at steady state (None disables).
    admission_rate: float | None = None
    #: Bucket capacity (burst absorbed before shedding starts); defaults
    #: to one second of admission_rate.
    admission_burst: float | None = None

    def validate(self) -> "ElasticityConfig":
        if self.min_shards < 1:
            raise ConfigurationError("min_shards must be >= 1")
        if self.max_shards < self.min_shards:
            raise ConfigurationError("max_shards must be >= min_shards")
        if self.control_interval_s <= 0 or self.cooldown_s <= 0:
            raise ConfigurationError(
                "control_interval_s and cooldown_s must be positive"
            )
        if self.slo_p95_wait_s <= self.clear_p95_wait_s:
            raise ConfigurationError(
                "slo_p95_wait_s must exceed clear_p95_wait_s (the hysteresis "
                "bands may not overlap)"
            )
        if self.breach_evals < 1 or self.clear_evals < 1:
            raise ConfigurationError("breach/clear evals must be >= 1")
        if self.window < 1:
            raise ConfigurationError("window must be >= 1")
        if self.hot_key_fraction is not None and not (
            0.0 < self.hot_key_fraction <= 1.0
        ):
            raise ConfigurationError("hot_key_fraction must be in (0, 1]")
        if self.salt_buckets < 2:
            raise ConfigurationError("salt_buckets must be >= 2")
        if self.hot_key_min_requests < 1:
            raise ConfigurationError("hot_key_min_requests must be >= 1")
        if self.admission_rate is not None and self.admission_rate <= 0:
            raise ConfigurationError("admission_rate must be positive")
        if self.admission_burst is not None and self.admission_burst <= 0:
            raise ConfigurationError("admission_burst must be positive")
        return self


@dataclass
class ClusterConfig:
    """Everything that decides a :class:`PlatformCluster`'s shape.

    Field defaults are exactly the legacy keyword defaults, so
    ``ClusterConfig()`` builds the same cluster as a bare
    ``PlatformCluster()`` always did.
    """

    n_shards: int = 4
    n_executors_per_shard: int = 4
    vnodes: int = 64
    query_deadline_s: float = 0.25
    twopc_timeout_s: float = 5.0
    buffer_pool_pages: int = 256
    physical_priority: bool = True
    txn_cost_s: float = 1e-4
    n_replicas: int = 1
    heartbeat_interval_s: float = 0.05
    phi_threshold: float = 8.0
    n_storage_nodes: int | None = None
    storage_vnodes: int = 32
    storage_rpc_timeout_s: float = 0.05
    #: Compact replica op logs once a shard's primary copy exceeds this
    #: many entries (None disables compaction entirely).
    replica_log_compact_threshold: int | None = 4096
    #: Records per second each shard drains from its ingest queue per
    #: tick (None = unbounded, the legacy behaviour: every buffered
    #: record flushes immediately).  Setting it turns the per-shard
    #: buffers into real queues whose depth/wait the elasticity loop
    #: reads as its load signal.
    shard_drain_rate: float | None = None
    #: Closed-loop elasticity (autoscaling, hot-key salting, admission
    #: control); None leaves the cluster fully static.
    elasticity: ElasticityConfig | None = None
    #: Per-shard semantic retrieval (repro.semantic): True for default
    #: index parameters, or a SemanticIndexConfig.  Off by default — the
    #: numeric ingest hot paths never pay the embedding cost.
    semantic_index: object = False

    def validate(self) -> "ClusterConfig":
        """Check cross-field invariants; returns self for chaining."""
        if self.n_shards < 1:
            raise ConfigurationError("need at least one shard")
        if not 1 <= self.n_replicas <= self.n_shards:
            raise ConfigurationError(
                f"n_replicas must be in [1, n_shards], got {self.n_replicas}"
            )
        if (
            self.replica_log_compact_threshold is not None
            and self.replica_log_compact_threshold < 1
        ):
            raise ConfigurationError(
                "replica_log_compact_threshold must be >= 1 (or None)"
            )
        if self.n_storage_nodes is not None:
            if self.n_storage_nodes < 1:
                raise ConfigurationError("need at least one storage node")
            if self.n_replicas >= 2:
                raise ConfigurationError(
                    "disaggregated mode and replica failover are mutually "
                    "exclusive: with a shared storage tier, availability "
                    "comes from re-mounting it, not from WAL replicas"
                )
        if self.shard_drain_rate is not None and self.shard_drain_rate <= 0:
            raise ConfigurationError("shard_drain_rate must be positive")
        if self.semantic_index and self.n_storage_nodes is not None:
            raise ConfigurationError(
                "semantic_index requires local shard engines: on a shared "
                "storage tier a compute node's ANN graph would go stale "
                "across re-mounts and ring remaps"
            )
        if self.elasticity is not None:
            self.elasticity.validate()
            if self.n_replicas >= 2:
                raise ConfigurationError(
                    "elasticity and replica failover are mutually exclusive "
                    "(the control loop assumes stateless compute shards)"
                )
            if self.elasticity.autoscale:
                if self.n_storage_nodes is None:
                    raise ConfigurationError(
                        "autoscaling requires disaggregated mode "
                        "(n_storage_nodes): only there is a membership "
                        "change a zero-migration ring remap"
                    )
                if not (
                    self.elasticity.min_shards
                    <= self.n_shards
                    <= self.elasticity.max_shards
                ):
                    raise ConfigurationError(
                        "n_shards must start inside "
                        "[min_shards, max_shards] when autoscaling"
                    )
        return self

"""Tests for movement models and the five use-case workload generators."""

import pytest

from repro.core import ConfigurationError, Space
from repro.spatial import BBox, Point
from repro.workloads import (
    AnomalyEpisode,
    CityConfig,
    FlashSaleConfig,
    GameConfig,
    LocationBasedGame,
    MarketplaceWorkload,
    MilitaryConfig,
    MilitaryExercise,
    PatrolRoute,
    RandomWaypoint,
    SensorGrid,
    SurgerySession,
    VitalsStream,
    diurnal_rate,
    is_anomalous,
    zipf_sampler,
)
from repro.world import MetaverseWorld

DOMAIN = BBox(0, 0, 1000, 1000)


class TestMovement:
    def test_random_waypoint_stays_in_domain(self):
        mover = RandomWaypoint(DOMAIN, seed=1)
        for _ in range(500):
            position = mover.step(1.0)
            assert DOMAIN.contains_point(position)

    def test_random_waypoint_moves(self):
        mover = RandomWaypoint(DOMAIN, seed=2)
        start = mover.position
        mover.step(10.0)
        assert mover.position != start

    def test_speed_range_validated(self):
        with pytest.raises(ConfigurationError):
            RandomWaypoint(DOMAIN, speed_range=(0, 1))

    def test_patrol_visits_waypoints_in_order(self):
        patrol = PatrolRoute([Point(0, 0), Point(10, 0), Point(10, 10)], speed=10.0)
        patrol.step(1.0)
        assert patrol.position == Point(10, 0)
        patrol.step(1.0)
        assert patrol.position == Point(10, 10)
        patrol.step(2.0)  # loops through (0, 0) and continues toward (10, 0)
        assert patrol.position.y == pytest.approx(0.0)
        assert 0 <= patrol.position.x <= 10

    def test_patrol_validation(self):
        with pytest.raises(ConfigurationError):
            PatrolRoute([Point(0, 0)])

    def test_zipf_skews_to_head(self):
        sample = zipf_sampler(100, skew=1.5, seed=3)
        draws = [sample() for _ in range(5000)]
        head = sum(1 for d in draws if d < 5)
        assert head > len(draws) * 0.4

    def test_zipf_zero_skew_uniformish(self):
        sample = zipf_sampler(10, skew=0.0, seed=4)
        draws = [sample() for _ in range(10000)]
        counts = [draws.count(i) for i in range(10)]
        assert max(counts) < 2 * min(counts)

    def test_diurnal_rate_peaks_at_peak_hour(self):
        peak = diurnal_rate(100, hour=18.0)
        trough = diurnal_rate(100, hour=6.0)
        assert peak > trough


class TestMarketplace:
    def test_burst_window_raises_rate(self):
        config = FlashSaleConfig(burst_start=60, burst_end=90)
        workload = MarketplaceWorkload(config, seed=5)
        quiet = workload.requests_between(0, 30)
        burst = workload.requests_between(60, 90)
        assert len(burst) > 5 * len(quiet)

    def test_requests_skewed_to_hot_products(self):
        workload = MarketplaceWorkload(FlashSaleConfig(zipf_skew=1.5), seed=6)
        requests = workload.requests_between(60, 90)
        hot = workload.hot_products(requests, top=5)
        hot_share = sum(1 for r in requests if r.product_id in hot) / len(requests)
        assert hot_share > 0.4

    def test_spaces_mixed_per_fraction(self):
        workload = MarketplaceWorkload(
            FlashSaleConfig(physical_fraction=0.3), seed=7
        )
        requests = workload.requests_between(60, 90)
        physical = sum(1 for r in requests if r.space is Space.PHYSICAL)
        assert 0.2 < physical / len(requests) < 0.4

    def test_catalog_records(self):
        workload = MarketplaceWorkload(FlashSaleConfig(n_products=10))
        catalog = workload.catalog_records()
        assert len(catalog) == 10
        assert all(r.payload["stock"] == 50 for r in catalog)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            FlashSaleConfig(physical_fraction=2.0)
        with pytest.raises(ConfigurationError):
            FlashSaleConfig(burst_start=100, burst_end=50)


class TestMilitary:
    def exercise(self, n_units=20):
        w = MetaverseWorld(position_epsilon=5.0)
        return w, MilitaryExercise(
            w, MilitaryConfig(n_units=n_units, physical_area=BBox(0, 0, 1000, 1000)), seed=8
        )

    def test_units_installed_and_move(self):
        w, exercise = self.exercise()
        before = {
            uid: w.physical.entities[uid].position
            for uid in list(w.physical.entities)[:5]
        }
        exercise.tick(10.0)
        moved = sum(
            1
            for uid, pos in before.items()
            if w.physical.entities[uid].position != pos
        )
        assert moved >= 4

    def test_airstrike_kills_units_in_region(self):
        """The paper's rule: air-raided troops 'perish'."""
        w, exercise = self.exercise()
        exercise.tick(1.0)
        cascade = exercise.order_airstrike(BBox(0, 0, 1000, 1000))
        assert exercise.active_units() == 0
        perish_events = [e for e in cascade if e.topic == "ground.perish"]
        assert len(perish_events) == 20
        assert all(e.space is Space.PHYSICAL for e in perish_events)

    def test_airstrike_outside_region_harmless(self):
        w, exercise = self.exercise()
        exercise.order_airstrike(BBox(5000, 5000, 6000, 6000))
        assert exercise.active_units() == 20

    def test_down_units_stop_moving(self):
        w, exercise = self.exercise(n_units=5)
        exercise.order_airstrike(BBox(0, 0, 1000, 1000))
        positions = {
            uid: w.physical.entities[uid].position for uid in w.physical.entities
        }
        exercise.tick(10.0)
        assert all(
            w.physical.entities[uid].position == pos for uid, pos in positions.items()
        )

    def test_noisy_position_near_truth(self):
        w, exercise = self.exercise(n_units=1)
        unit_id = next(iter(w.physical.entities))
        true = w.physical.entities[unit_id].position
        noisy = exercise.noisy_position(unit_id)
        assert true.distance_to(noisy) < 20.0


class TestGaming:
    def game(self):
        w = MetaverseWorld(position_epsilon=2.0)
        return w, LocationBasedGame(
            w,
            GameConfig(n_players=30, n_virtual_players=10, n_spawns=20, capture_radius=50),
            seed=9,
        )

    def test_captures_happen(self):
        _, game = self.game()
        total = []
        for _ in range(20):
            total.extend(game.tick(5.0))
        assert len(total) > 0
        assert len(game.spawns) == 20  # respawns keep the count constant

    def test_social_encounters_cross_space(self):
        _, game = self.game()
        game.tick(1.0)
        matches = game.social_encounters(radius=500.0)
        assert all(m.cross_space for m in matches)

    def test_position_records_stream(self):
        _, game = self.game()
        game.tick(1.0)
        records = game.position_records()
        assert len(records) == 30
        assert all(r.space is Space.PHYSICAL for r in records)


class TestHealthcare:
    def test_normal_vitals_not_anomalous(self):
        stream = VitalsStream(n_patients=5, seed=10)
        assert not any(is_anomalous(r) for r in stream.readings_at(0.0))

    def test_episode_triggers_anomaly(self):
        episode = AnomalyEpisode(patient_index=2, start=10.0, end=20.0, kind="tachycardia")
        stream = VitalsStream(n_patients=5, episodes=[episode], seed=11)
        during = stream.readings_at(15.0)
        assert is_anomalous(during[2])
        assert not is_anomalous(during[0])
        after = stream.readings_at(25.0)
        assert not is_anomalous(after[2])

    def test_desaturation_detected(self):
        episode = AnomalyEpisode(0, 0.0, 10.0, "desaturation")
        stream = VitalsStream(n_patients=1, episodes=[episode], seed=12)
        assert is_anomalous(stream.readings_at(5.0)[0])

    def test_stream_length(self):
        stream = VitalsStream(n_patients=3, interval_s=1.0)
        assert len(stream.stream(10.0)) == 30

    def test_surgery_session_degrades(self):
        session = SurgerySession("op-1")
        assert session.feasible(30e6) == "full"
        assert session.feasible(10e6) == "fallback"
        assert session.feasible(1e6) is None
        assert session.bytes_transferred(10e6) < session.bytes_transferred(30e6)


class TestSmartCity:
    def test_grid_emits_one_reading_per_sensor(self):
        grid = SensorGrid(CityConfig(grid_side=5), seed=13)
        readings = grid.readings_at(0.0)
        assert len(readings) == 25
        assert len({r.key for r in readings}) == 25

    def test_downtown_sensors_busier(self):
        grid = SensorGrid(CityConfig(grid_side=10), seed=14)
        readings = {r.key: r for r in grid.readings_at(12 * 3600.0)}
        center = readings[grid.sensor_id(5, 5)].payload["traffic"]
        corner = readings[grid.sensor_id(0, 0)].payload["traffic"]
        assert center > corner

    def test_peak_hour_busier_than_night(self):
        grid = SensorGrid(CityConfig(grid_side=6), seed=15)
        evening = sum(r.payload["traffic"] for r in grid.readings_at(18 * 3600.0))
        night = sum(r.payload["traffic"] for r in grid.readings_at(6 * 3600.0))
        assert evening > night

    def test_district_rollup(self):
        grid = SensorGrid(CityConfig(grid_side=8))
        record = grid.readings_at(0.0)[0]
        district = grid.district_of(record)
        assert district.startswith("district-")

    def test_stream_cadence(self):
        grid = SensorGrid(CityConfig(grid_side=2, reading_interval_s=10.0))
        records = grid.stream(30.0)
        assert len(records) == 4 * 3

"""Tests for semantic retrieval (repro.semantic): deterministic
embeddings, the from-scratch HNSW index, the query-plane modality, and
end-to-end behaviour through the platform / cluster / geo layers.

The Hypothesis properties pin the three invariants the benchmark leans
on: tombstoned keys never resurface (and re-inserted ones always do),
recall against the brute-force oracle clears a floor on seeded gaussian
corpora, and the scatter-gather merge is partition-invariant.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig, PlatformCluster
from repro.core import ConfigurationError, DataKind, DataRecord, Space
from repro.platform import MetaversePlatform
from repro.query.plane import QueryPlan
from repro.semantic import (
    HNSWIndex,
    SemanticIndex,
    SemanticIndexConfig,
    SemanticModality,
    brute_force_topk,
    embed_payload,
    embed_text,
    embed_tokens,
    normalize,
    payload_tokens,
    semantic_query,
    tokenize,
)

pytestmark = pytest.mark.semantic


def record(key, payload, timestamp=0.0):
    return DataRecord(
        key=key, payload=payload, space=Space.VIRTUAL,
        timestamp=timestamp, kind=DataKind.STRUCTURED, source="test",
    )


WORDS = (
    "red blue green wooden stone glass chair table lamp statue vase "
    "carpet kitchen garden lobby tower bridge fountain"
).split()


def scene_payload(i):
    return {
        "name": f"object {i}",
        "tags": [WORDS[i % len(WORDS)], WORDS[(i * 7 + 3) % len(WORDS)]],
        "room": WORDS[(i * 5) % len(WORDS)],
    }


class TestEmbeddings:
    def test_tokenize_is_lowercase_alphanumeric(self):
        assert tokenize("Red CHAIR, 2nd floor!") == ["red", "chair", "2nd", "floor"]

    def test_payload_tokens_ignore_numeric_telemetry(self):
        tokens = payload_tokens(
            {"x": 3.0, "stock": 7, "tags": ["red", 42, "chair"], "room": "lobby"}
        )
        assert tokens == ["lobby", "red", "chair"]

    def test_payload_tokens_are_insertion_order_independent(self):
        a = payload_tokens({"a": "red", "b": "chair"})
        b = payload_tokens({"b": "chair", "a": "red"})
        assert a == b

    def test_embedding_is_deterministic_and_normalized(self):
        v1 = embed_text("red wooden chair")
        v2 = embed_text("red wooden chair")
        assert v1 is not v2 and np.array_equal(v1, v2)
        assert np.linalg.norm(v1) == pytest.approx(1.0)

    def test_numeric_only_payload_embeds_to_none(self):
        assert embed_payload({"x": 1.0, "y": 2.0, "v": 3}) is None
        assert embed_tokens([]) is None

    def test_similar_phrases_score_higher_than_disjoint_ones(self):
        query = embed_text("red chair")
        near = embed_text("red chair kitchen")
        far = embed_text("stone fountain garden")
        assert float(query @ near) > float(query @ far)


class TestHNSW:
    def build(self, n, dim=16, seed=7, **kwargs):
        rng = np.random.default_rng(seed)
        index = HNSWIndex(dim=dim, **kwargs)
        vectors = {}
        for i in range(n):
            vec = rng.normal(size=dim)
            index.add(f"k/{i:03d}", vec)
            vectors[f"k/{i:03d}"] = normalize(vec)
        return index, vectors

    def test_invalid_parameters_are_rejected(self):
        with pytest.raises(ConfigurationError):
            HNSWIndex(dim=0)
        with pytest.raises(ConfigurationError):
            HNSWIndex(dim=8, m=1)
        with pytest.raises(ConfigurationError):
            HNSWIndex(dim=8, m=8, ef_construction=4)
        with pytest.raises(ConfigurationError):
            HNSWIndex(dim=8).search(np.ones(8), k=0)
        with pytest.raises(ConfigurationError):
            HNSWIndex(dim=8).add("k", np.zeros(8))
        with pytest.raises(ConfigurationError):
            HNSWIndex(dim=8).add("k", np.ones(4))

    def test_small_corpus_search_is_exact(self):
        index, vectors = self.build(40)
        query = np.random.default_rng(99).normal(size=16)
        keys = sorted(vectors)
        matrix = np.stack([vectors[key] for key in keys])
        exact = brute_force_topk(keys, matrix, query, 5)
        got = index.search(query, 5, ef=64)
        assert [k for k, _ in got] == [k for k, _ in exact]
        for (_, score), (_, want) in zip(got, exact):
            assert score == pytest.approx(want)

    def test_remove_tombstones_and_readd_resurrects(self):
        index, vectors = self.build(20)
        target = index.search(vectors["k/003"], 1)[0][0]
        assert target == "k/003"
        index.remove("k/003")
        assert "k/003" not in index
        assert len(index) == 19 and index.node_count == 20
        hits = [k for k, _ in index.search(vectors["k/003"], 20, ef=64)]
        assert "k/003" not in hits
        index.add("k/003", vectors["k/003"])
        assert index.search(vectors["k/003"], 1)[0][0] == "k/003"
        with pytest.raises(ConfigurationError):
            index.remove("nope")
        assert index.discard("nope") is False

    def test_levels_derive_from_the_key_alone(self):
        empty, busy = HNSWIndex(dim=8), self.build(40, dim=8)[0]
        for i in range(40):
            assert empty.level_for(f"k/{i}") == busy.level_for(f"k/{i}")

    def test_search_keys_are_insertion_order_independent_at_full_beam(self):
        """With the beam covering the whole corpus the returned *keys*
        (the deterministic contract E31 pins) do not depend on insertion
        order; scores may differ in the last ulp from BLAS batching."""
        rng = np.random.default_rng(3)
        vectors = {f"k/{i}": rng.normal(size=8) for i in range(30)}
        forward, backward = HNSWIndex(dim=8), HNSWIndex(dim=8)
        for key in sorted(vectors):
            forward.add(key, vectors[key])
        for key in sorted(vectors, reverse=True):
            backward.add(key, vectors[key])
        query = rng.normal(size=8)
        a, b = forward.search(query, 10, ef=64), backward.search(query, 10, ef=64)
        assert [k for k, _ in a] == [k for k, _ in b]
        for (_, sa), (_, sb) in zip(a, b):
            assert sa == pytest.approx(sb, abs=1e-12)

    def test_distance_evals_count_work(self):
        index, vectors = self.build(64)
        before = index.distance_evals
        index.search(np.ones(16), 5)
        assert index.distance_evals > before

    @settings(max_examples=25, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["add", "remove"]), st.integers(0, 11)),
            min_size=1, max_size=40,
        )
    )
    def test_insert_delete_round_trip(self, ops):
        """After any op sequence, search returns exactly the live keys —
        tombstones never resurface, re-inserted keys always do."""
        rng = np.random.default_rng(17)
        vectors = {f"k/{i}": rng.normal(size=8) for i in range(12)}
        index = HNSWIndex(dim=8)
        live = set()
        for op, i in ops:
            key = f"k/{i}"
            if op == "add":
                index.add(key, vectors[key])
                live.add(key)
            else:
                assert index.discard(key) == (key in live)
                live.discard(key)
        assert set(index.keys()) == live
        if live:
            hits = index.search(rng.normal(size=8), len(live) + 4, ef=128)
            assert {k for k, _ in hits} == live

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(30, 120))
    def test_recall_floor_vs_brute_force(self, seed, n):
        rng = np.random.default_rng(seed)
        index = HNSWIndex(dim=12, m=8, ef_construction=64, ef_search=48)
        keys, rows = [], []
        for i in range(n):
            vec = rng.normal(size=12)
            index.add(f"k/{i:03d}", vec)
            keys.append(f"k/{i:03d}")
            rows.append(normalize(vec))
        matrix = np.stack(rows)
        query = rng.normal(size=12)
        exact = {k for k, _ in brute_force_topk(keys, matrix, query, 10)}
        got = {k for k, _ in index.search(query, 10, ef=48)}
        assert len(got & exact) / 10 >= 0.9

    @settings(max_examples=25, deadline=None)
    @given(
        data=st.data(),
        n=st.integers(1, 24),
        n_parts=st.integers(1, 5),
        k=st.integers(1, 12),
    )
    def test_merge_is_partition_invariant(self, data, n, n_parts, k):
        """SemanticModality.merge gives the same top-k no matter how the
        scored items are split across shards."""
        rng = np.random.default_rng(5)
        items = [(f"k/{i:03d}", float(rng.normal())) for i in range(n)]
        assignment = data.draw(
            st.lists(st.integers(0, n_parts - 1), min_size=n, max_size=n)
        )
        partials = [[] for _ in range(n_parts)]
        for item, part in zip(items, assignment):
            partials[part].append(item)
        modality = SemanticModality()
        plan = QueryPlan("semantic", {"k": k})
        merged = modality.merge(partials, plan)
        assert merged == modality.merge([items], plan)
        assert merged == sorted(items, key=lambda p: (-p[1], p[0]))[:k]


class TestSemanticIndex:
    def test_index_record_skips_and_evicts_numeric_payloads(self):
        index = SemanticIndex()
        assert index.index_record("a", {"name": "red chair"}) is True
        assert "a" in index and len(index) == 1
        # Updated to pure telemetry: evicted from the graph.
        assert index.index_record("a", {"x": 1.0}) is False
        assert "a" not in index and len(index) == 0
        assert index.index_record("b", {"v": 7}) is False

    def test_exact_search_matches_hnsw_on_small_corpus(self):
        index = SemanticIndex()
        for i in range(24):
            index.index_record(f"s/{i:02d}", scene_payload(i))
        query = embed_text("red chair lobby")
        got, exact = index.search(query, 5, ef=64), index.exact_search(query, 5)
        assert [k for k, _ in got] == [k for k, _ in exact]
        for (_, score), (_, want) in zip(got, exact):
            assert score == pytest.approx(want)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SemanticIndexConfig(dim=0).validate()
        with pytest.raises(ConfigurationError):
            SemanticIndexConfig(m=1).validate()
        with pytest.raises(ConfigurationError):
            SemanticIndexConfig(ef_search=0).validate()


class TestModality:
    def test_plan_validation(self):
        modality = SemanticModality()
        with pytest.raises(ConfigurationError, match="k >= 1"):
            modality.plan(semantic_query("chair", k=0))
        with pytest.raises(ConfigurationError, match="'text' or"):
            modality.plan(semantic_query())

    def test_rewrite_embeds_text_once_at_plan_time(self):
        modality = SemanticModality()
        plan = modality.rewrite(modality.plan(semantic_query("red chair")))
        assert np.array_equal(plan.params["vector"], embed_text("red chair"))

    def test_unembeddable_text_returns_empty_not_garbage(self):
        platform = MetaversePlatform(semantic_index=True)
        platform.ingest(record("s/0", scene_payload(0)))
        platform.tick(1.0)
        result = platform.query(semantic_query("''..!!"))
        assert result.items == []


class TestDeploymentIntegration:
    def seed(self, plane, n=24):
        plane.ingest_many(
            [record(f"s/{i:02d}", scene_payload(i)) for i in range(n)]
        )
        plane.tick(1.0)
        return plane

    def test_platform_search_requires_the_index(self):
        platform = MetaversePlatform()
        with pytest.raises(ConfigurationError, match="semantic_index"):
            platform.semantic_search(np.ones(64), 5)

    def test_platform_drop_entity_evicts_from_index(self):
        platform = self.seed(MetaversePlatform(semantic_index=True))
        top = platform.query(semantic_query("red chair", k=3)).items
        victim = top[0][0]
        platform.drop_entity(victim)
        keys = [k for k, _ in platform.query(semantic_query("red chair", k=24)).items]
        assert victim not in keys

    def test_cluster_topk_identical_one_vs_two_shards(self):
        one = self.seed(
            PlatformCluster(config=ClusterConfig(n_shards=1, semantic_index=True))
        )
        two = self.seed(
            PlatformCluster(config=ClusterConfig(n_shards=2, semantic_index=True))
        )
        request = semantic_query("wooden table garden", k=6, ef=64)
        a, b = one.query(request), two.query(request)
        assert [k for k, _ in a.items] == [k for k, _ in b.items]
        for (_, sa), (_, sb) in zip(a.items, b.items):
            assert sa == pytest.approx(sb, abs=1e-12)

    def test_semantic_index_config_flows_through_cluster(self):
        cluster = PlatformCluster(
            config=ClusterConfig(
                n_shards=2, semantic_index=SemanticIndexConfig(dim=32)
            )
        )
        self.seed(cluster)
        assert all(
            shard.semantic.config.dim == 32 for shard in cluster.shards.values()
        )
        assert len(cluster.query(semantic_query("red chair", dim=32, k=4)).items) == 4

    def test_semantic_index_rejects_disaggregated_mode(self):
        with pytest.raises(ConfigurationError, match="semantic_index"):
            ClusterConfig(n_shards=2, n_storage_nodes=2, semantic_index=True).validate()

    def test_columnar_batch_update_evicts_describable_records(self):
        """The columnar batch path carries numeric fields only, so a
        batch update of a previously-describable key evicts it (the same
        describable→numeric eviction rule as per-record updates)."""
        from repro.core import RecordBatch

        platform = self.seed(MetaversePlatform(semantic_index=True), n=8)
        assert len(platform.semantic) == 8
        platform.ingest_batch(
            RecordBatch.from_records([record("s/03", {"x": 1.0, "y": 2.0})])
        )
        platform.tick(1.0)
        assert len(platform.semantic) == 7 and "s/03" not in platform.semantic
        keys = [k for k, _ in platform.query(semantic_query("red chair", k=8)).items]
        assert "s/03" not in keys

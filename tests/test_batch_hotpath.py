"""Byte-identity of the columnar hot path against the per-record path.

The vectorized pipeline (RecordBatch ingest, batched gateway aggregation,
fuse_batch) is a wire/compute format, not a different data model: over
the same rows it must leave the platform in *byte-identical* state and
return *equal* results — same floats, not merely close ones.  Hypothesis
drives the comparison, including under injected ``storage.rpc`` faults
where a dropped coalesced batch must time out and retry as a unit.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConfigurationError,
    DataKind,
    DataRecord,
    FaultInjectedError,
    RecordBatch,
    Space,
)
from repro.fusion import ObservationBatch, TruthFusion
from repro.fusion.sources import Observation
from repro.platform import DeviceGateway, MetaversePlatform
from repro.resilience import FaultInjector, FaultPlan
from repro.resilience.faults import FaultRule
from repro.storage import StorageTier

keys = st.integers(0, 40).map(lambda i: f"ent/{i:03d}")
floats = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)
ints = st.integers(-(10**9), 10**9)


@st.composite
def record_lists(draw, min_size=1, max_size=40):
    """Uniform-payload record lists: one int and two float columns."""
    n = draw(st.integers(min_size, max_size))
    return [
        DataRecord(
            key=draw(keys),
            payload={
                "x": draw(floats), "y": draw(floats), "v": draw(ints),
            },
            space=draw(st.sampled_from([Space.PHYSICAL, Space.VIRTUAL])),
            timestamp=draw(st.floats(0, 1e4, allow_nan=False)),
            kind=DataKind.SENSOR,
            source="hyp",
        )
        for _ in range(n)
    ]


def engine_state(platform):
    """Everything the storage engine holds, JSON-serialized for byte
    comparison (int-vs-float payload drift would change the encoding)."""
    entities = platform.engine.scan("", "￿")
    products = sorted(platform.catalog_snapshot().items())
    return json.dumps(
        {"entities": entities, "products": products}, sort_keys=True
    )


class TestBatchIngestIdentity:
    @settings(max_examples=40, deadline=None)
    @given(records=record_lists())
    def test_local_engine_state_is_byte_identical(self, records):
        per_record = MetaversePlatform()
        per_record.ingest_many(records)
        per_record.flush()

        columnar = MetaversePlatform()
        columnar.ingest_batch(RecordBatch.from_records(records))
        columnar.flush()

        assert engine_state(columnar) == engine_state(per_record)
        assert (
            columnar.scan_prefix("ent/").items
            == per_record.scan_prefix("ent/").items
        )

    @settings(max_examples=15, deadline=None)
    @given(
        records=record_lists(min_size=4),
        seed=st.integers(0, 100),
        drop_rate=st.floats(0.0, 0.3),
    )
    def test_remote_engine_state_identical_under_rpc_faults(
        self, records, seed, drop_rate
    ):
        """A dropped coalesced batch times out as a unit, the platform's
        retry re-sends it, and the final tier state still matches the
        per-record path under its own identically-seeded fault stream.
        Either path may exhaust the 4-attempt retry budget outright
        (a batch is one retried unit, so its per-attempt failure rate
        spans every node it touches); re-ingesting is idempotent — the
        same values land — so the test re-drives until durable."""

        def build():
            tier = StorageTier(n_nodes=3)
            plan = FaultPlan(
                rules=[
                    FaultRule(site="storage.rpc", kind="drop", rate=drop_rate),
                    FaultRule(
                        site="storage.rpc", kind="delay", rate=0.2,
                        delay_s=0.005,
                    ),
                ],
                seed=seed,
            )
            injector = FaultInjector(plan, clock=tier.clock)
            platform = MetaversePlatform(
                engine=tier.mount("test", faults=injector),
                faults=injector,
            )
            return tier, platform

        def ingest_until_durable(platform, do_ingest):
            for _ in range(60):
                do_ingest()
                try:
                    platform.flush()
                    return
                except FaultInjectedError:
                    continue
            raise AssertionError("could not flush past injected faults")

        tier_a, per_record = build()
        ingest_until_durable(
            per_record, lambda: per_record.ingest_many(records)
        )

        tier_b, columnar = build()
        batch = RecordBatch.from_records(records)
        ingest_until_durable(columnar, lambda: columnar.ingest_batch(batch))

        state_a = sorted(tier_a.mget(tier_a.keys()).items())
        state_b = sorted(tier_b.mget(tier_b.keys()).items())
        assert json.dumps(state_b) == json.dumps(state_a)


class TestGatewayBatchIdentity:
    @settings(max_examples=40, deadline=None)
    @given(records=record_lists())
    def test_aggregated_flush_matches_per_record(self, records):
        group_fn = lambda r: r.key.split("/")[0]  # noqa: E731
        per_record = DeviceGateway(aggregate=True, group_fn=group_fn)
        per_record.ingest_many(records)
        out_records, uplink_records = per_record.flush()

        columnar = DeviceGateway(aggregate=True, group_fn=group_fn)
        batch = RecordBatch.from_records(records)
        batch.groups = [group_fn(r) for r in records]
        columnar.ingest_batch(batch)
        out_batch, uplink_batch = columnar.flush_batch()

        assert uplink_batch == uplink_records
        expanded = out_batch.to_records()
        assert len(expanded) == len(out_records)
        for got, want in zip(expanded, out_records):
            assert got.key == want.key
            assert got.payload == want.payload  # same floats, int count
            assert got.timestamp == want.timestamp
            assert got.space is want.space

    def test_raw_flush_preserves_rows_and_uplink(self):
        records = [
            DataRecord(key=f"e/{i}", payload={"x": float(i), "y": 0.5, "v": i})
            for i in range(10)
        ]
        per_record = DeviceGateway(aggregate=False)
        per_record.ingest_many(records)
        out_records, uplink_records = per_record.flush()

        columnar = DeviceGateway(aggregate=False)
        columnar.ingest_batch(RecordBatch.from_records(records))
        out_batch, uplink_batch = columnar.flush_batch()

        assert uplink_batch == uplink_records
        assert [r.payload for r in out_batch.to_records()] == [
            r.payload for r in out_records
        ]

    def test_empty_flush_batch(self):
        gateway = DeviceGateway(aggregate=False)
        assert gateway.flush_batch() == (None, 0)


class TestFusionBatchIdentity:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(1, 120),
        seed=st.integers(0, 1000),
        iterations=st.integers(1, 6),
    )
    def test_fuse_batch_equals_fuse_bitwise(self, n, seed, iterations):
        import random

        rng = random.Random(seed)
        observations = [
            Observation(
                entity_id=f"e{rng.randrange(12)}",
                attribute=rng.choice(["x", "y"]),
                value=rng.uniform(-50, 50),
                source=f"s{rng.randrange(5)}",
                timestamp=float(i),
                confidence=rng.uniform(0.1, 1.0),
            )
            for i in range(n)
        ]
        reference = TruthFusion(iterations=iterations)
        expected = reference.fuse(observations)

        vectorized = TruthFusion(iterations=iterations)
        actual = vectorized.fuse_batch(
            ObservationBatch.from_observations(observations)
        )

        assert set(actual) == set(expected)
        for key, fused in expected.items():
            got = actual[key]
            assert got.value == fused.value  # bitwise, not approx
            assert got.support == fused.support
            assert got.contributors == fused.contributors
        assert vectorized.source_trust == reference.source_trust

    def test_categorical_observations_stay_per_record(self):
        with pytest.raises(ConfigurationError):
            ObservationBatch.from_observations(
                [Observation("e", "color", "red", "s", 0.0, 1.0)]
            )


class TestRecordBatchFormat:
    def test_round_trip_preserves_int_vs_float(self):
        records = [
            DataRecord(key="a", payload={"v": 3, "x": 1.5}),
            DataRecord(key="b", payload={"v": -2, "x": 0.25}),
        ]
        back = RecordBatch.from_records(records).to_records()
        assert [r.payload for r in back] == [r.payload for r in records]
        assert all(isinstance(r.payload["v"], int) for r in back)
        assert all(isinstance(r.payload["x"], float) for r in back)

    def test_mixed_int_float_column_is_rejected(self):
        with pytest.raises(ConfigurationError):
            RecordBatch.from_records(
                [
                    DataRecord(key="a", payload={"v": 1}),
                    DataRecord(key="b", payload={"v": 1.0}),
                ]
            )

    def test_non_numeric_payload_is_rejected(self):
        with pytest.raises(ConfigurationError):
            RecordBatch.from_records(
                [DataRecord(key="a", payload={"v": "text"})]
            )

    def test_take_and_concat(self):
        records = [
            DataRecord(key=f"k{i}", payload={"v": i}, timestamp=float(i))
            for i in range(6)
        ]
        batch = RecordBatch.from_records(records)
        subset = batch.take([4, 1])
        assert subset.keys == ["k4", "k1"]
        assert subset.columns["v"].tolist() == [4, 1]
        merged = RecordBatch.concat([batch.take([0, 1]), batch.take([2])])
        assert merged.keys == ["k0", "k1", "k2"]
        assert len(RecordBatch.concat([batch])) == 6

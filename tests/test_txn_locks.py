"""Tests for the 2PL lock manager."""

import pytest

from repro.core import DeadlockError
from repro.txn import LockManager, LockMode

S, X = LockMode.SHARED, LockMode.EXCLUSIVE


class TestGrants:
    def test_shared_locks_coexist(self):
        lm = LockManager()
        assert lm.acquire(1, "r", S)
        assert lm.acquire(2, "r", S)
        assert set(lm.holders_of("r")) == {1, 2}

    def test_exclusive_excludes(self):
        lm = LockManager()
        assert lm.acquire(1, "r", X)
        assert not lm.acquire(2, "r", S)
        assert not lm.acquire(3, "r", X)
        assert lm.waiters_of("r") == [(2, S), (3, X)]

    def test_reentrant(self):
        lm = LockManager()
        assert lm.acquire(1, "r", X)
        assert lm.acquire(1, "r", X)
        assert lm.acquire(1, "r", S)  # weaker re-request is satisfied

    def test_upgrade_sole_holder(self):
        lm = LockManager()
        assert lm.acquire(1, "r", S)
        assert lm.acquire(1, "r", X)
        assert lm.holders_of("r")[1] is X

    def test_upgrade_blocked_by_other_sharer(self):
        lm = LockManager()
        lm.acquire(1, "r", S)
        lm.acquire(2, "r", S)
        assert not lm.acquire(1, "r", X)

    def test_exclusive_waiter_blocks_new_shared(self):
        """FIFO fairness prevents writer starvation."""
        lm = LockManager()
        lm.acquire(1, "r", S)
        assert not lm.acquire(2, "r", X)  # waits
        assert not lm.acquire(3, "r", S)  # must queue behind the X waiter


class TestRelease:
    def test_release_grants_waiters(self):
        lm = LockManager()
        lm.acquire(1, "r", X)
        lm.acquire(2, "r", X)
        granted = lm.release_all(1)
        assert granted == [(2, "r")]
        assert lm.holders_of("r") == {2: X}

    def test_release_grants_multiple_sharers(self):
        lm = LockManager()
        lm.acquire(1, "r", X)
        lm.acquire(2, "r", S)
        lm.acquire(3, "r", S)
        granted = lm.release_all(1)
        assert set(granted) == {(2, "r"), (3, "r")}

    def test_release_stops_at_exclusive(self):
        lm = LockManager()
        lm.acquire(1, "r", X)
        lm.acquire(2, "r", X)
        lm.acquire(3, "r", S)
        granted = lm.release_all(1)
        assert granted == [(2, "r")]
        assert lm.waiters_of("r") == [(3, S)]

    def test_release_clears_own_waits(self):
        lm = LockManager()
        lm.acquire(1, "r", X)
        lm.acquire(2, "r", X)
        lm.release_all(2)
        assert lm.waiters_of("r") == []

    def test_locks_held_tracking(self):
        lm = LockManager()
        lm.acquire(1, "a", S)
        lm.acquire(1, "b", X)
        assert lm.locks_held(1) == {"a", "b"}
        lm.release_all(1)
        assert lm.locks_held(1) == set()


class TestDeadlock:
    def test_two_txn_cycle_detected(self):
        lm = LockManager()
        lm.acquire(1, "a", X)
        lm.acquire(2, "b", X)
        assert not lm.acquire(1, "b", X)  # 1 waits on 2
        with pytest.raises(DeadlockError):
            lm.acquire(2, "a", X)  # 2 waits on 1 -> cycle
        assert lm.deadlocks_detected == 1

    def test_three_txn_cycle_detected(self):
        lm = LockManager()
        lm.acquire(1, "a", X)
        lm.acquire(2, "b", X)
        lm.acquire(3, "c", X)
        assert not lm.acquire(1, "b", X)
        assert not lm.acquire(2, "c", X)
        with pytest.raises(DeadlockError):
            lm.acquire(3, "a", X)

    def test_no_false_positive_on_chain(self):
        lm = LockManager()
        lm.acquire(1, "a", X)
        assert not lm.acquire(2, "a", X)  # 2 waits on 1: a chain, not a cycle
        assert not lm.acquire(3, "a", X)

    def test_victim_not_queued(self):
        lm = LockManager()
        lm.acquire(1, "a", X)
        lm.acquire(2, "b", X)
        lm.acquire(1, "b", X)
        with pytest.raises(DeadlockError):
            lm.acquire(2, "a", X)
        # Victim's failed request must not linger in the wait queue.
        assert (2, X) not in lm.waiters_of("a")

    def test_progress_after_victim_releases(self):
        lm = LockManager()
        lm.acquire(1, "a", X)
        lm.acquire(2, "b", X)
        lm.acquire(1, "b", X)
        with pytest.raises(DeadlockError):
            lm.acquire(2, "a", X)
        granted = lm.release_all(2)  # victim aborts, releasing b
        assert (1, "b") in granted

"""Tests for geometry primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import ConfigurationError
from repro.spatial import BBox, Point, Velocity, predicted_position

finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_translate(self):
        assert Point(1, 1).translated(2, -1) == Point(3, 0)

    def test_points_are_hashable(self):
        assert len({Point(0, 0), Point(0, 0), Point(1, 0)}) == 2


class TestBBox:
    def test_degenerate_rejected(self):
        with pytest.raises(ConfigurationError):
            BBox(1, 0, 0, 1)

    def test_contains_point_inclusive(self):
        box = BBox(0, 0, 10, 10)
        assert box.contains_point(Point(0, 0))
        assert box.contains_point(Point(10, 10))
        assert not box.contains_point(Point(10.01, 5))

    def test_intersects(self):
        a = BBox(0, 0, 10, 10)
        assert a.intersects(BBox(5, 5, 15, 15))
        assert a.intersects(BBox(10, 10, 20, 20))  # touching counts
        assert not a.intersects(BBox(11, 11, 20, 20))

    def test_union_and_enlargement(self):
        a = BBox(0, 0, 2, 2)
        b = BBox(3, 0, 4, 2)
        union = a.union(b)
        assert union == BBox(0, 0, 4, 2)
        assert a.enlargement(b) == union.area - a.area

    def test_contains_box(self):
        assert BBox(0, 0, 10, 10).contains_box(BBox(1, 1, 9, 9))
        assert not BBox(0, 0, 10, 10).contains_box(BBox(1, 1, 11, 9))

    def test_center_and_dims(self):
        box = BBox(0, 0, 4, 2)
        assert box.center == Point(2, 1)
        assert box.width == 4
        assert box.height == 2
        assert box.area == 8

    def test_around(self):
        box = BBox.around(Point(5, 5), 2)
        assert box == BBox(3, 3, 7, 7)
        with pytest.raises(ConfigurationError):
            BBox.around(Point(0, 0), -1)

    def test_from_points(self):
        box = BBox.from_points([Point(1, 5), Point(3, 2)])
        assert box == BBox(1, 2, 3, 5)
        with pytest.raises(ConfigurationError):
            BBox.from_points([])

    def test_min_distance(self):
        box = BBox(0, 0, 10, 10)
        assert box.min_distance_to(Point(5, 5)) == 0.0
        assert box.min_distance_to(Point(13, 14)) == 5.0

    @given(x0=finite, y0=finite, w=st.floats(0, 1e3), h=st.floats(0, 1e3))
    def test_union_is_commutative_and_covering(self, x0, y0, w, h):
        a = BBox(x0, y0, x0 + w, y0 + h)
        b = BBox(x0 - 1, y0 - 1, x0 + 1, y0 + 1)
        assert a.union(b) == b.union(a)
        assert a.union(b).contains_box(a)
        assert a.union(b).contains_box(b)


class TestMotion:
    def test_velocity_speed(self):
        assert Velocity(3, 4).speed == 5.0

    def test_predicted_position(self):
        pos = predicted_position(Point(0, 0), Velocity(1, 2), dt=3.0)
        assert pos == Point(3, 6)

    def test_prediction_backwards_in_time(self):
        pos = predicted_position(Point(10, 10), Velocity(1, 0), dt=-2.0)
        assert pos == Point(8, 10)

"""Determinism regression: the experiment suite reproduces itself.

Everything the benchmarks *claim* derives from seeded streams and the
simulated clock, so two ``run_experiments.py --smoke`` runs with the same
seeds must emit byte-identical JSON metrics artifacts — the only
legitimate differences are wall-clock measurements (runtime gauges,
elapsed/throughput readings), which this test strips before comparing.
A diff in anything else means a benchmark picked up hidden state
(dict-order, RNG leakage, real time) and its recorded tables can no
longer be trusted to reproduce.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = [pytest.mark.slow, pytest.mark.cluster]

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Name fragments that mark a metric as wall-clock-derived (legitimately
#: different between runs).  Everything else must match exactly.
WALL_CLOCK_TOKENS = ("runtime", "elapsed", "throughput_rps", "slowdown", "wall")


def run_smoke(artifacts_dir: Path) -> None:
    result = subprocess.run(
        [sys.executable, "benchmarks/run_experiments.py", "--smoke",
         "--artifacts-dir", str(artifacts_dir)],
        cwd=REPO_ROOT, capture_output=True, text=True, timeout=600,
    )
    assert result.returncode == 0, (
        f"smoke run failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )


def strip_wall_clock(snapshot: dict) -> dict:
    """Drop wall-clock-derived metrics; keep every simulated/seeded one."""

    def keep(name: str) -> bool:
        return not any(token in name for token in WALL_CLOCK_TOKENS)

    return {
        section: {
            name: value for name, value in metrics.items() if keep(name)
        }
        for section, metrics in snapshot.items()
    }


def canonical_bytes(path: Path) -> bytes:
    snapshot = strip_wall_clock(json.loads(path.read_text()))
    return json.dumps(snapshot, sort_keys=True).encode()


def test_smoke_artifacts_are_byte_identical_across_runs(tmp_path):
    dir_a, dir_b = tmp_path / "run_a", tmp_path / "run_b"
    run_smoke(dir_a)
    run_smoke(dir_b)

    names_a = sorted(p.name for p in dir_a.glob("*.json"))
    names_b = sorted(p.name for p in dir_b.glob("*.json"))
    assert names_a == names_b and names_a, "runs emitted different artifacts"
    # the elasticity loop (E29) must be part of the reproducible set —
    # a controller that scales on hidden state would drop out here
    assert "e29_elasticity.json" in names_a
    # likewise the geo deployment (E30): partitions, hints, anti-entropy,
    # and per-mode read latencies all ride the simulated clock
    assert "e30_geo.json" in names_a
    # and semantic retrieval (E31): embeddings, HNSW levels, and the
    # tie-break jitter are all pure functions of (key, payload)
    assert "e31_semantic.json" in names_a

    diverged = [
        name for name in names_a
        if canonical_bytes(dir_a / name) != canonical_bytes(dir_b / name)
    ]
    assert diverged == [], (
        f"nondeterministic artifacts (after wall-clock strip): {diverged}"
    )


@pytest.mark.elasticity
def test_e29_elasticity_run_is_byte_identical(tmp_path):
    """Two elasticity-enabled smoke runs: every scale action, salt
    decision, and shed count derives from the simulated clock, so the
    E29 payloads and JSON artifacts must agree byte-for-byte once the
    wall-clock gauges are stripped."""
    import io

    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    bench_elasticity = __import__("bench_elasticity")

    payloads = []
    for run in ("a", "b"):
        artifacts = tmp_path / run
        payload = bench_elasticity.report(
            file=io.StringIO(), smoke=True, artifacts_dir=str(artifacts)
        )
        payloads.append(payload)
    assert payloads[0]["deterministic"] == payloads[1]["deterministic"]
    assert payloads[0]["meta"] == payloads[1]["meta"]
    assert (
        canonical_bytes(tmp_path / "a" / "e29_elasticity.json")
        == canonical_bytes(tmp_path / "b" / "e29_elasticity.json")
    )


@pytest.mark.geo
def test_e30_geo_run_is_byte_identical(tmp_path):
    """Two geo smoke runs: every replication ship, hint, anti-entropy
    round, partition drill, and consistency-mode latency derives from
    the simulated clock and seeded workloads, so the E30 payloads and
    JSON artifacts must agree byte-for-byte once the wall-clock gauges
    are stripped."""
    import io

    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    bench_geo = __import__("bench_geo")

    payloads = []
    for run in ("a", "b"):
        artifacts = tmp_path / run
        payload = bench_geo.report(
            file=io.StringIO(), smoke=True, artifacts_dir=str(artifacts)
        )
        payloads.append(payload)
    assert payloads[0]["deterministic"] == payloads[1]["deterministic"]
    assert payloads[0]["meta"] == payloads[1]["meta"]
    assert (
        canonical_bytes(tmp_path / "a" / "e30_geo.json")
        == canonical_bytes(tmp_path / "b" / "e30_geo.json")
    )


@pytest.mark.semantic
def test_e31_semantic_run_is_byte_identical(tmp_path):
    """Two semantic smoke runs: stored vectors, graph levels, link sets,
    and distance-eval counts are pure functions of (key, payload) and
    the seeded corpus, so the E31 payloads and JSON artifacts must
    agree byte-for-byte once the wall-clock gauges are stripped."""
    import io

    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    bench_semantic = __import__("bench_semantic")

    payloads = []
    for run in ("a", "b"):
        artifacts = tmp_path / run
        payload = bench_semantic.report(
            file=io.StringIO(), smoke=True, artifacts_dir=str(artifacts)
        )
        payloads.append(payload)
    assert payloads[0]["deterministic"] == payloads[1]["deterministic"]
    assert payloads[0]["meta"] == payloads[1]["meta"]
    assert (
        canonical_bytes(tmp_path / "a" / "e31_semantic.json")
        == canonical_bytes(tmp_path / "b" / "e31_semantic.json")
    )


def test_strip_keeps_simulated_metrics_and_drops_wall_clock():
    snapshot = {
        "gauges": {
            "e24.shards_4.throughput": 78125.0,     # simulated — must survive
            "e23.clean.throughput_rps": 52326.8,    # wall-clock — stripped
            "experiments.bench_sync.runtime_s": 0.9,
            "e24.baskets.local": 94.0,
        },
        "counters": {"experiments.regenerated": 23.0},
    }
    stripped = strip_wall_clock(snapshot)
    assert "e24.shards_4.throughput" in stripped["gauges"]
    assert "e24.baskets.local" in stripped["gauges"]
    assert "e23.clean.throughput_rps" not in stripped["gauges"]
    assert "experiments.bench_sync.runtime_s" not in stripped["gauges"]
    assert stripped["counters"] == {"experiments.regenerated": 23.0}

"""Cross-shard invariants: conservation through rebalancing and faults.

Two families:

* **entity conservation** — every ingested entity (and every catalog
  product, stock included) is readable on exactly one shard before and
  after live shard joins/leaves; rebalancing moves keys, never loses or
  duplicates them;
* **exactly-once under chaos** — the 4-shard flash sale holds the same
  inventory-conservation bar as the single-node chaos tier
  (``tests/test_resilience_chaos.py``) with a 5% uniform fault plan live
  across every shard's fault sites;
* **exactly-once, disaggregated** — the same bar on 4 compute nodes over
  2 shared storage nodes with 5% ``storage.rpc`` faults firing on every
  compute↔storage round trip, through a mid-sale compute kill and
  re-mount recovery.
"""

import pytest

from repro.cluster import PlatformCluster
from repro.core import DataKind, DataRecord, Space
from repro.resilience import FaultInjector, FaultPlan
from repro.resilience.faults import FaultRule
from repro.workloads import FlashSaleConfig, MarketplaceWorkload

pytestmark = pytest.mark.cluster


def record(key, payload, timestamp=0.0):
    return DataRecord(
        key=key, payload=payload, space=Space.VIRTUAL,
        timestamp=timestamp, kind=DataKind.STRUCTURED, source="test",
    )


def seeded_cluster(n_shards=4, n_entities=60):
    cluster = PlatformCluster(n_shards=n_shards)
    for i in range(n_entities):
        cluster.ingest(record(f"entity/{i:03d}", {"v": i}))
    cluster.flush()
    return cluster


def assert_exactly_one_home(cluster, expected_keys):
    locations = cluster.entity_locations()
    assert set(locations) == set(expected_keys)
    multi = {key: homes for key, homes in locations.items() if len(homes) != 1}
    assert multi == {}, f"keys not on exactly one shard: {multi}"


class TestEntityConservation:
    KEYS = [f"entity/{i:03d}" for i in range(60)]

    def test_shard_join_conserves_every_entity(self):
        cluster = seeded_cluster()
        assert_exactly_one_home(cluster, self.KEYS)
        moved = cluster.add_shard("joiner")
        assert moved > 0  # the new arc is non-empty for 60 keys x 64 vnodes
        assert_exactly_one_home(cluster, self.KEYS)
        for i, key in enumerate(self.KEYS):
            assert cluster.read(key)["payload"] == {"v": i}  # values intact
        assert cluster.metrics.counter(
            "cluster.rebalance.moved_keys"
        ).value == moved

    def test_shard_leave_conserves_every_entity(self):
        cluster = seeded_cluster()
        victim = "shard-2"
        orphans = [
            key for key in self.KEYS if cluster.router.owner_of(key) == victim
        ]
        moved = cluster.remove_shard(victim)
        assert moved == len(orphans)
        assert victim not in cluster.shards
        assert_exactly_one_home(cluster, self.KEYS)
        for i, key in enumerate(self.KEYS):
            assert cluster.read(key)["payload"] == {"v": i}

    def test_join_then_leave_round_trips_ownership(self):
        cluster = seeded_cluster()
        before = {key: cluster.router.owner_of(key) for key in self.KEYS}
        cluster.add_shard("joiner")
        cluster.remove_shard("joiner")
        assert {key: cluster.router.owner_of(key) for key in self.KEYS} == before
        assert_exactly_one_home(cluster, self.KEYS)

    def test_rebalance_preserves_catalog_stock(self):
        """Products migrate through the MVCC catalog with stock intact,
        and purchases keep resolving after the topology change."""
        workload = MarketplaceWorkload(
            FlashSaleConfig(n_products=20, initial_stock=10), seed=1
        )
        cluster = PlatformCluster(n_shards=4)
        cluster.load_catalog(workload.catalog_records())
        pids = [workload.product_id(i) for i in range(20)]
        cluster.add_shard("joiner")
        cluster.remove_shard("shard-0")
        assert all(cluster.get_stock(pid) == 10 for pid in pids)
        outcomes = cluster.process_purchases(
            workload.requests_between(0.0, 2.0)
        )
        sold = sum(o.success for o in outcomes)
        left = sum(cluster.get_stock(pid) for pid in pids)
        assert sold + left == 20 * 10

    def test_buffered_records_survive_membership_changes(self):
        """add/remove flush the ingest buffer first, so records buffered
        under the old ring never route to a stale owner."""
        cluster = seeded_cluster(n_entities=0)
        for i in range(20):
            cluster.ingest(record(f"late/{i}", {"v": i}))
        cluster.add_shard("joiner")
        assert cluster.pending_count == 0
        assert_exactly_one_home(cluster, [f"late/{i}" for i in range(20)])


class TestFlashSaleChaosOnCluster:
    """The E23 chaos bar, held by the 4-shard cluster path."""

    pytestmark = pytest.mark.chaos

    def run_chaotic_cluster_sale(self, fault_seed):
        config = FlashSaleConfig(
            n_products=20, n_shoppers=100, initial_stock=10,
            burst_rate=200.0, burst_start=0.0, burst_end=5.0, zipf_skew=1.0,
        )
        workload = MarketplaceWorkload(config, seed=1)
        injector = FaultInjector(FaultPlan.uniform(0.05, seed=fault_seed))
        cluster = PlatformCluster(n_shards=4, faults=injector)
        cluster.load_catalog(workload.catalog_records())
        outcomes = cluster.process_purchases(workload.requests_between(0.0, 5.0))
        # Post-sale audit sweep: ingest stock snapshots and scan them back,
        # driving the storage/ingest/query fault sites the sale itself
        # doesn't touch (the purchase path lives in MVCC).
        for i in range(20):
            pid = workload.product_id(i)
            cluster.ingest(
                record(f"audit/{pid}", {"stock": cluster.get_stock(pid)}, 5.0)
            )
        cluster.tick(1.0)
        cluster.scan_prefix("audit/")
        return cluster, workload, outcomes, injector

    @pytest.mark.parametrize("fault_seed", [7, 23, 101])
    def test_exactly_once_inventory_conservation(self, fault_seed):
        cluster, workload, outcomes, injector = self.run_chaotic_cluster_sale(
            fault_seed
        )
        sold_by_product = {}
        for outcome in outcomes:
            if outcome.success:
                pid = outcome.request.product_id
                sold_by_product[pid] = sold_by_product.get(pid, 0) + 1
        for i in range(20):
            pid = workload.product_id(i)
            assert sold_by_product.get(pid, 0) + cluster.get_stock(pid) == 10
            assert cluster.get_stock(pid) >= 0  # no double-spend / oversell
        assert injector.injected > 0  # the plan actually fired

    @pytest.mark.parametrize("fault_seed", [7, 23])
    def test_entities_conserved_under_chaotic_rebalance(self, fault_seed):
        """Membership changes while the 5% plan fires: retries absorb the
        injected storage faults and no entity is lost or duplicated."""
        injector = FaultInjector(FaultPlan.uniform(0.05, seed=fault_seed))
        cluster = PlatformCluster(n_shards=4, faults=injector)
        keys = [f"entity/{i:03d}" for i in range(60)]
        for i, key in enumerate(keys):
            cluster.ingest(record(key, {"v": i}))
        cluster.flush()
        dropped = cluster.metrics.counter("cluster.dropped_records").value
        stored = set(cluster.entity_locations())
        assert len(stored) + dropped == len(keys)  # drops are counted, not lost
        cluster.add_shard("joiner")
        cluster.remove_shard("shard-1")
        assert_exactly_one_home(cluster, stored)


@pytest.mark.disagg
@pytest.mark.chaos
class TestFlashSaleChaosDisaggregated:
    """Exactly-once on 4 compute / 2 storage nodes under storage.rpc faults.

    Every compute↔storage round trip consults the injector: 5% of RPCs
    crash outright and 2% vanish (surfacing as client timeouts); the
    platform retry budget absorbs what it can.  Mid-sale one compute node
    is killed and recovered by re-mounting the tier — conservation must
    hold across the crash because committed stock lives in the tier, not
    on the dead node.
    """

    N_PRODUCTS = 20
    INITIAL_STOCK = 10

    def run_disagg_sale(self, fault_seed):
        config = FlashSaleConfig(
            n_products=self.N_PRODUCTS, n_shoppers=100,
            initial_stock=self.INITIAL_STOCK,
            burst_rate=200.0, burst_start=0.0, burst_end=5.0, zipf_skew=1.0,
        )
        workload = MarketplaceWorkload(config, seed=1)
        plan = FaultPlan(
            rules=(
                FaultRule(site="storage.rpc", kind="crash", rate=0.05),
                FaultRule(site="storage.rpc", kind="drop", rate=0.02),
            ),
            seed=fault_seed,
        )
        injector = FaultInjector(plan)
        cluster = PlatformCluster(
            n_shards=4, n_storage_nodes=2, faults=injector
        )
        cluster.load_catalog(workload.catalog_records())
        requests = workload.requests_between(0.0, 5.0)
        half = len(requests) // 2
        outcomes = cluster.process_purchases(requests[:half])
        cluster.kill_shard("shard-1")
        outcomes += cluster.process_purchases(requests[half:half + half // 2])
        cluster.tick(0.1)  # re-mounts the killed compute node
        outcomes += cluster.process_purchases(requests[half + half // 2:])
        return cluster, workload, outcomes, injector

    @pytest.mark.parametrize("fault_seed", [7, 23, 101])
    def test_exactly_once_with_storage_rpc_faults(self, fault_seed):
        cluster, workload, outcomes, injector = self.run_disagg_sale(fault_seed)
        sold_by_product = {}
        for outcome in outcomes:
            if outcome.success:
                pid = outcome.request.product_id
                sold_by_product[pid] = sold_by_product.get(pid, 0) + 1
        for i in range(self.N_PRODUCTS):
            pid = workload.product_id(i)
            assert (
                sold_by_product.get(pid, 0) + cluster.get_stock(pid)
                == self.INITIAL_STOCK
            )
            assert cluster.get_stock(pid) >= 0
        assert injector.injected > 0  # the plan actually fired
        assert cluster.metrics.counter("cluster.disagg.remounts").value == 1.0
        assert cluster.metrics.counter("storage.rpc.faults").value > 0

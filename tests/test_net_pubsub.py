"""Tests for the content-based + spatial pub/sub broker."""

import pytest

from repro.core import ConfigurationError
from repro.net import (
    AttributePredicate,
    Broker,
    Publication,
    Region,
    Subscription,
)


def pub(topic="shop.sale", **payload):
    return Publication(topic=topic, payload=payload)


class TestAttributePredicate:
    @pytest.mark.parametrize(
        "op,value,payload_value,expected",
        [
            ("==", 5, 5, True),
            ("==", 5, 6, False),
            ("!=", 5, 6, True),
            ("<", 5, 4, True),
            ("<=", 5, 5, True),
            (">", 5, 6, True),
            (">=", 5, 5, True),
            ("in", ("a", "b"), "a", True),
            ("in", ("a", "b"), "c", False),
        ],
    )
    def test_ops(self, op, value, payload_value, expected):
        predicate = AttributePredicate("f", op, value)
        assert predicate.matches({"f": payload_value}) is expected

    def test_missing_field_never_matches(self):
        assert not AttributePredicate("f", "==", 1).matches({})

    def test_type_mismatch_is_false_not_error(self):
        assert not AttributePredicate("f", "<", 5).matches({"f": "str"})

    def test_unknown_op_rejected(self):
        with pytest.raises(ConfigurationError):
            AttributePredicate("f", "~=", 1)


class TestRegion:
    def test_contains(self):
        region = Region(0, 0, 10, 10)
        assert region.contains(5, 5)
        assert region.contains(0, 10)
        assert not region.contains(11, 5)

    def test_invalid_region_rejected(self):
        with pytest.raises(ConfigurationError):
            Region(10, 0, 0, 10)


class TestMatching:
    def test_topic_wildcard(self):
        broker = Broker()
        broker.subscribe(Subscription(subscriber="s", topic_pattern="shop.*"))
        assert len(broker.publish(pub("shop.sale"))) == 1
        assert len(broker.publish(pub("game.move"))) == 0

    def test_attribute_equality_uses_index(self):
        broker = Broker()
        for i in range(100):
            broker.subscribe(
                Subscription(
                    subscriber=f"s{i}",
                    predicates=(AttributePredicate("product", "==", f"p{i}"),),
                )
            )
        matched = broker.publish(pub(product="p7"))
        assert [s.subscriber for s in matched] == ["s7"]
        # Index means far fewer probes than subscribers.
        assert broker.metrics.counter("pubsub.probes").value < 10

    def test_range_predicate(self):
        broker = Broker()
        broker.subscribe(
            Subscription(
                subscriber="cheap",
                predicates=(AttributePredicate("price", "<", 10),),
            )
        )
        assert len(broker.publish(pub(price=5))) == 1
        assert len(broker.publish(pub(price=50))) == 0

    def test_spatial_subscription(self):
        broker = Broker(grid_cell=10)
        broker.subscribe(
            Subscription(subscriber="near", region=Region(0, 0, 20, 20))
        )
        assert len(broker.publish(pub(x=5, y=5))) == 1
        assert len(broker.publish(pub(x=50, y=50))) == 0

    def test_spatial_requires_location(self):
        broker = Broker()
        broker.subscribe(Subscription(subscriber="s", region=Region(0, 0, 1, 1)))
        assert broker.publish(pub(price=1)) == []

    def test_conjunctive_predicates(self):
        broker = Broker()
        broker.subscribe(
            Subscription(
                subscriber="s",
                topic_pattern="shop.*",
                predicates=(
                    AttributePredicate("price", "<", 10),
                    AttributePredicate("category", "==", "pastry"),
                ),
            )
        )
        assert len(broker.publish(pub(price=5, category="pastry"))) == 1
        assert len(broker.publish(pub(price=5, category="tools"))) == 0

    def test_callback_invoked(self):
        broker = Broker()
        got = []
        broker.subscribe(Subscription(subscriber="s", callback=got.append))
        broker.publish(pub(x=1))
        assert len(got) == 1

    def test_unsubscribe(self):
        broker = Broker()
        sub_id = broker.subscribe(Subscription(subscriber="s"))
        broker.unsubscribe(sub_id)
        assert len(broker) == 0
        assert broker.publish(pub()) == []

    def test_unsubscribe_unknown_is_noop(self):
        Broker().unsubscribe(99999)


class TestBroadcastBaseline:
    def test_broadcast_same_matches_more_cost(self):
        broker = Broker()
        for i in range(50):
            broker.subscribe(
                Subscription(
                    subscriber=f"s{i}",
                    predicates=(AttributePredicate("k", "==", i),),
                )
            )
        indexed = broker.publish(pub(k=3))
        broadcast = broker.publish_broadcast(pub(k=3))
        assert {s.subscriber for s in indexed} == {s.subscriber for s in broadcast}
        assert broker.metrics.counter("pubsub.broadcast_deliveries").value == 50


class TestContainsPredicate:
    def test_keyword_in_text(self):
        predicate = AttributePredicate("review", "contains", "pastry")
        assert predicate.matches({"review": "Best PASTRY shop in the mall"})
        assert not predicate.matches({"review": "great coffee"})

    def test_membership_in_collection(self):
        predicate = AttributePredicate("tags", "contains", "sale")
        assert predicate.matches({"tags": ["new", "sale"]})
        assert not predicate.matches({"tags": []})

    def test_geo_textual_subscription(self):
        """[21]-style: keyword + region in one standing subscription."""
        broker = Broker(grid_cell=10)
        broker.subscribe(
            Subscription(
                subscriber="foodie",
                predicates=(AttributePredicate("text", "contains", "bakery"),),
                region=Region(0, 0, 100, 100),
            )
        )
        inside_match = pub(text="new bakery opening!", x=50, y=50)
        inside_miss = pub(text="shoe store", x=50, y=50)
        outside = pub(text="bakery", x=500, y=500)
        assert len(broker.publish(inside_match)) == 1
        assert len(broker.publish(inside_miss)) == 0
        assert len(broker.publish(outside)) == 0


class TestMatchingProperty:
    def test_indexed_matches_equal_brute_force(self):
        """Property: the candidate indexes never lose a match."""
        import random

        rng = random.Random(0)
        broker = Broker(grid_cell=25)
        subs = []
        for i in range(120):
            kind = i % 3
            if kind == 0:
                sub = Subscription(
                    subscriber=f"s{i}",
                    predicates=(
                        AttributePredicate("category", "==", f"c{rng.randrange(10)}"),
                    ),
                )
            elif kind == 1:
                x, y = rng.uniform(0, 500), rng.uniform(0, 500)
                sub = Subscription(
                    subscriber=f"s{i}", region=Region(x, y, x + 60, y + 60)
                )
            else:
                sub = Subscription(
                    subscriber=f"s{i}",
                    predicates=(
                        AttributePredicate("price", "<", rng.uniform(1, 100)),
                    ),
                )
            subs.append(sub)
            broker.subscribe(sub)
        for trial in range(300):
            publication = pub(
                category=f"c{rng.randrange(10)}",
                price=rng.uniform(0, 120),
                x=rng.uniform(0, 500),
                y=rng.uniform(0, 500),
            )
            indexed = {s.subscriber for s in broker.publish(publication)}
            brute = {s.subscriber for s in subs if s.matches(publication)}
            assert indexed == brute, f"trial {trial}"

"""Tests for the buffer pool and its eviction policies."""

import pytest

from repro.core import ConfigurationError, DataKind, Space
from repro.storage import (
    BufferPool,
    LRUKPolicy,
    LRUPolicy,
    PageMeta,
    SpaceAwarePolicy,
)


def counting_loader(meta_by_key=None):
    """A loader that records fetches; returns (value, meta)."""
    fetches = []

    def loader(key):
        fetches.append(key)
        meta = (meta_by_key or {}).get(key, PageMeta())
        return f"page:{key}", meta

    return loader, fetches


class TestBasicCaching:
    def test_miss_then_hit(self):
        loader, fetches = counting_loader()
        pool = BufferPool(capacity=4, loader=loader)
        assert pool.get("a") == "page:a"
        assert pool.get("a") == "page:a"
        assert fetches == ["a"]
        assert pool.hits == 1
        assert pool.misses == 1

    def test_capacity_enforced(self):
        loader, _ = counting_loader()
        pool = BufferPool(capacity=2, loader=loader)
        for key in "abc":
            pool.get(key)
        assert len(pool) == 2
        assert pool.evictions == 1

    def test_invalidate(self):
        loader, fetches = counting_loader()
        pool = BufferPool(capacity=4, loader=loader)
        pool.get("a")
        pool.invalidate("a")
        pool.get("a")
        assert fetches == ["a", "a"]

    def test_hit_rate(self):
        loader, _ = counting_loader()
        pool = BufferPool(capacity=4, loader=loader)
        pool.get("a")
        pool.get("a")
        pool.get("a")
        pool.get("b")
        assert pool.hit_rate() == 0.5

    def test_capacity_validated(self):
        loader, _ = counting_loader()
        with pytest.raises(ConfigurationError):
            BufferPool(capacity=0, loader=loader)


class TestLRU:
    def test_evicts_least_recent(self):
        loader, _ = counting_loader()
        pool = BufferPool(capacity=2, loader=loader, policy=LRUPolicy())
        pool.get("a")
        pool.get("b")
        pool.get("a")  # refresh a
        pool.get("c")  # evicts b
        assert "a" in pool
        assert "b" not in pool
        assert "c" in pool


class TestLRUK:
    def test_scan_resistance(self):
        """Pages accessed twice outlive a one-shot scan under LRU-2."""
        loader, _ = counting_loader()
        pool = BufferPool(capacity=3, loader=loader, policy=LRUKPolicy(k=2))
        pool.get("hot")
        pool.get("hot")  # two accesses: finite K-distance
        pool.get("scan1")
        pool.get("scan2")
        pool.get("scan3")  # scans evict each other, not 'hot'
        assert "hot" in pool

    def test_k_validated(self):
        with pytest.raises(ConfigurationError):
            LRUKPolicy(k=0)

    def test_degenerates_to_lru_with_k1(self):
        loader, _ = counting_loader()
        pool = BufferPool(capacity=2, loader=loader, policy=LRUKPolicy(k=1))
        pool.get("a")
        pool.get("b")
        pool.get("a")
        pool.get("c")
        assert "b" not in pool
        assert "a" in pool


class TestSpaceAware:
    def test_physical_location_outlives_virtual_media(self):
        meta = {
            "phys-loc": PageMeta(space=Space.PHYSICAL, kind=DataKind.LOCATION),
            "virt-media-1": PageMeta(space=Space.VIRTUAL, kind=DataKind.MEDIA),
            "virt-media-2": PageMeta(space=Space.VIRTUAL, kind=DataKind.MEDIA),
        }
        loader, _ = counting_loader(meta)
        pool = BufferPool(capacity=2, loader=loader, policy=SpaceAwarePolicy())
        pool.get("phys-loc")
        pool.get("virt-media-1")
        pool.get("virt-media-2")  # must evict the other media page, not phys-loc
        assert "phys-loc" in pool
        assert "virt-media-1" not in pool

    def test_lru_within_same_class(self):
        meta = {
            k: PageMeta(space=Space.VIRTUAL, kind=DataKind.MEDIA)
            for k in ["m1", "m2", "m3"]
        }
        loader, _ = counting_loader(meta)
        pool = BufferPool(capacity=2, loader=loader, policy=SpaceAwarePolicy())
        pool.get("m1")
        pool.get("m2")
        pool.get("m1")
        pool.get("m3")
        assert "m2" not in pool

    def test_custom_weights(self):
        weights = {(Space.VIRTUAL, DataKind.MEDIA): 100.0}
        meta = {
            "media": PageMeta(space=Space.VIRTUAL, kind=DataKind.MEDIA),
            "loc": PageMeta(space=Space.PHYSICAL, kind=DataKind.LOCATION),
        }
        loader, _ = counting_loader(meta)
        pool = BufferPool(
            capacity=1, loader=loader, policy=SpaceAwarePolicy(weights)
        )
        pool.get("media")
        pool.get("loc")  # unlisted -> weight 1.0 < 100 so media stays? capacity 1
        # 'media' was resident; inserting 'loc' evicts by weight: victim is the
        # one resident page regardless, so 'loc' is now resident.
        assert "loc" in pool

    def test_eviction_class_accounting(self):
        meta = {
            "v1": PageMeta(space=Space.VIRTUAL, kind=DataKind.MEDIA),
            "v2": PageMeta(space=Space.VIRTUAL, kind=DataKind.MEDIA),
        }
        loader, _ = counting_loader(meta)
        pool = BufferPool(capacity=1, loader=loader, policy=SpaceAwarePolicy())
        pool.get("v1")
        pool.get("v2")
        assert pool.evicted_by_class[(Space.VIRTUAL, DataKind.MEDIA)] == 1

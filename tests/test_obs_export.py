"""Tests for metrics export (Prometheus text + JSON) and @timed profiling."""

import json
import re

import pytest

from repro.core import ConfigurationError, MetricsRegistry
from repro.core.metrics import Histogram
from repro.obs import (
    profiled,
    render_json,
    render_prometheus,
    sanitize_metric_name,
    snapshot_dict,
    timed,
    write_snapshot,
)

# One Prometheus exposition line: name, optional {labels}, numeric value.
PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_]+=\"[^\"]*\"(,[a-zA-Z0-9_]+=\"[^\"]*\")*\})? "
    r"-?[0-9.e+-]+(inf|nan)?$"
)


def loaded_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("kv.puts").inc(12)
    reg.counter("pubsub.deliveries").inc(3)
    reg.gauge("pool.resident").set(7)
    for v in range(1, 101):
        reg.histogram("txn.latency_s").observe(v / 100.0)
    return reg


class TestPrometheusFormat:
    def test_every_line_parses(self):
        text = render_prometheus(loaded_registry())
        for line in text.strip().splitlines():
            if line.startswith("#"):
                assert re.match(r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* \w+$", line)
            else:
                assert PROM_LINE.match(line), f"unparseable line: {line!r}"

    def test_names_are_sanitized(self):
        text = render_prometheus(loaded_registry())
        assert "kv_puts 12" in text
        assert "kv.puts" not in text

    def test_counter_gauge_and_summary_types(self):
        text = render_prometheus(loaded_registry())
        assert "# TYPE kv_puts counter" in text
        assert "# TYPE pool_resident gauge" in text
        assert "# TYPE txn_latency_s summary" in text
        assert "txn_latency_s_count 100" in text

    def test_quantiles_match_histogram(self):
        reg = loaded_registry()
        hist = reg.histogram("txn.latency_s")
        text = render_prometheus(reg)
        for q in (0.5, 0.9, 0.95, 0.99):
            match = re.search(
                rf'txn_latency_s{{quantile="{q}"}} ([0-9.e+-]+)', text
            )
            assert match, f"missing quantile {q}"
            assert float(match.group(1)) == pytest.approx(hist.quantile(q))

    def test_empty_histogram_exports_count_but_no_quantiles(self):
        reg = MetricsRegistry()
        reg.histogram("never.observed")
        text = render_prometheus(reg)
        assert "never_observed_count 0" in text
        assert "quantile" not in text

    def test_prefix(self):
        text = render_prometheus(loaded_registry(), prefix="repro")
        assert "repro_kv_puts 12" in text

    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("kv.puts") == "kv_puts"
        assert sanitize_metric_name("a-b c/d") == "a_b_c_d"
        assert sanitize_metric_name("0leading") == "_0leading"


class TestJsonSnapshot:
    def test_structure(self):
        snap = snapshot_dict(loaded_registry())
        assert snap["counters"]["kv.puts"] == 12
        assert snap["gauges"]["pool.resident"] == 7
        hist = snap["histograms"]["txn.latency_s"]
        assert hist["count"] == 100
        assert hist["p50"] == pytest.approx(0.505)

    def test_render_json_round_trips(self):
        snap = json.loads(render_json(loaded_registry()))
        assert snap["counters"]["pubsub.deliveries"] == 3

    def test_empty_histogram_quantiles_are_null(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        snap = snapshot_dict(reg)
        assert snap["histograms"]["h"]["count"] == 0
        assert snap["histograms"]["h"]["p99"] is None

    def test_write_snapshot(self, tmp_path):
        prom_path, json_path = write_snapshot(
            loaded_registry(), tmp_path / "artifacts", basename="run1"
        )
        assert prom_path.name == "run1.prom"
        assert "kv_puts 12" in prom_path.read_text()
        assert json.loads(json_path.read_text())["counters"]["kv.puts"] == 12


class TestHistogramEmptyQuantile:
    def test_raises_configuration_error(self):
        with pytest.raises(ConfigurationError):
            Histogram().quantile(0.5)

    def test_export_paths_never_raise_on_empty(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        render_prometheus(reg)
        render_json(reg)
        reg.snapshot()


class TestTimedDecorator:
    def test_free_function_lands_in_profile_registry(self):
        @timed("test.op")
        def op(x):
            return x * 2

        with profiled() as reg:
            assert op(21) == 42
        hist = reg.histogram("test.op")
        assert hist.count == 1
        assert hist.samples[0] >= 0.0

    def test_method_uses_owner_metrics(self):
        class Component:
            def __init__(self):
                self.metrics = MetricsRegistry()

            @timed("component.work")
            def work(self):
                return "done"

        comp = Component()
        with profiled() as global_reg:
            comp.work()
            comp.work()
        assert comp.metrics.histogram("component.work").count == 2
        assert global_reg.histogram("component.work").count == 0

    def test_explicit_registry_wins(self):
        reg = MetricsRegistry()

        @timed("explicit.op", registry=reg)
        def op():
            pass

        op()
        assert reg.histogram("explicit.op").count == 1

    def test_records_duration_even_on_exception(self):
        @timed("failing.op")
        def boom():
            raise RuntimeError

        with profiled() as reg:
            with pytest.raises(RuntimeError):
                boom()
        assert reg.histogram("failing.op").count == 1

    def test_instrumented_subsystems_report(self):
        """The shipped @timed hooks actually record on real operators."""
        from repro.core import DataKind, DataRecord, Space
        from repro.query import Scan, execute

        records = [
            DataRecord(
                key=f"r{i}", payload={"v": float(i)}, space=Space.VIRTUAL,
                timestamp=float(i), kind=DataKind.STRUCTURED, source="t",
            )
            for i in range(10)
        ]
        with profiled() as reg:
            execute(Scan(records))
        assert reg.histogram("query.execute").count == 1

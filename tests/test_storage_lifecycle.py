"""Data-lifecycle invariants: checkpointing, compaction, tiering (PR: E28).

Three property suites guard the lifecycle machinery's one non-negotiable
contract — managing data volume must never change what recovery or reads
observe:

* **checkpoint + truncate + recover ≡ full replay** — a KV store restored
  from snapshot + WAL suffix is byte-identical (JSON-canonical) to one
  that replayed the whole history;
* **replica-log compaction preserves the LSN-union fold** — for any op
  stream, any per-copy hole pattern, and any torn tail, replaying the
  union with compacted copies yields exactly the state of the uncompacted
  union;
* **tier demotion/promotion round-trips bitwise** — a value demoted to
  the cold object tier and promoted back compares equal, and its
  canonical encoding is byte-identical.

Plus deterministic regression tests for the WAL truncation-floor fix (the
satellite bugfix: ``corrupt_tail`` + append after a checkpoint truncated
the prefix must not resurrect LSN accounting from 0).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError, KeyNotFoundError, StorageError
from repro.storage import (
    CheckpointManager,
    KVStore,
    LifecyclePolicy,
    ObjectStore,
    TieredStorageEngine,
    WalEntry,
    WriteAheadLog,
)
from repro.cluster.failover import compact_entries

pytestmark = [pytest.mark.lifecycle]

# -- strategies --------------------------------------------------------------

keys = st.integers(0, 12).map(lambda i: f"k{i:02d}")
values = st.recursive(
    st.one_of(
        st.integers(-(10**9), 10**9),
        st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
        st.text(max_size=8),
        st.booleans(),
        st.none(),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(st.text(max_size=4), children, max_size=3),
    ),
    max_leaves=6,
)

kv_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), keys, values),
        st.tuples(st.just("delete"), keys, st.none()),
    ),
    min_size=1,
    max_size=60,
)


def kv_state(kv: KVStore) -> str:
    """Canonical JSON of everything a reader can observe."""
    return json.dumps(list(kv.scan("", "￿")), sort_keys=True)


def apply_ops(kv: KVStore, ops) -> None:
    for op, key, value in ops:
        if op == "put":
            kv.put(key, value)
        else:
            try:
                kv.delete(key)
            except KeyNotFoundError:
                pass


# -- property: checkpoint + truncate + recover ≡ full replay ------------------


class TestCheckpointRecovery:
    @settings(max_examples=60, deadline=None)
    @given(ops=kv_ops, split=st.integers(0, 60))
    def test_recover_matches_full_replay(self, ops, split):
        """Snapshot + suffix replay observes exactly what full replay does."""
        split = min(split, len(ops))
        # Reference: full history, no checkpointing.
        ref = KVStore()
        apply_ops(ref, ops)
        # Checkpointed: snapshot mid-stream, truncate, keep writing.
        kv = KVStore()
        ckpt = CheckpointManager(kv, ObjectStore(), keep=2)
        apply_ops(kv, ops[:split])
        ckpt.checkpoint()
        apply_ops(kv, ops[split:])
        # Crash: fresh store sharing the WAL, restored via the manager.
        fresh = KVStore(wal=kv.wal)
        ckpt.recover(fresh)
        assert kv_state(fresh) == kv_state(ref)

    @settings(max_examples=30, deadline=None)
    @given(ops=kv_ops, splits=st.lists(st.integers(0, 60), max_size=3))
    def test_repeated_checkpoints(self, ops, splits):
        """Multiple checkpoints (with pruning) still recover exactly."""
        ref = KVStore()
        apply_ops(ref, ops)
        kv = KVStore()
        ckpt = CheckpointManager(kv, ObjectStore(), keep=1)
        cuts = sorted(min(s, len(ops)) for s in splits)
        prev = 0
        for cut in cuts:
            apply_ops(kv, ops[prev:cut])
            ckpt.checkpoint()
            prev = cut
        apply_ops(kv, ops[prev:])
        fresh = KVStore(wal=kv.wal)
        ckpt.recover(fresh)
        assert kv_state(fresh) == kv_state(ref)

    def test_recovery_work_bounded_by_live_state(self):
        """After a checkpoint, recovery replays suffix only — not history."""
        kv = KVStore()
        ckpt = CheckpointManager(kv, ObjectStore())
        for round_ in range(50):
            for i in range(4):
                kv.put(f"k{i}", {"round": round_})
        lsn = ckpt.checkpoint()
        assert lsn == kv.wal.last_valid_lsn
        assert kv.wal.entry_count == 0
        kv.put("k0", {"round": "post"})
        fresh = KVStore(wal=kv.wal)
        snapshot_entries, wal_entries = ckpt.recover(fresh)
        assert snapshot_entries == 4  # live keys, not 200 historical writes
        assert wal_entries == 1  # the suffix
        assert fresh.get("k0") == {"round": "post"}
        assert fresh.get("k3") == {"round": 49}

    def test_recover_without_checkpoint_degrades_to_replay(self):
        kv = KVStore()
        ckpt = CheckpointManager(kv, ObjectStore())
        kv.put("a", 1)
        fresh = KVStore(wal=kv.wal)
        assert ckpt.recover(fresh) == (0, 1)
        assert fresh.get("a") == 1

    def test_checkpoint_chain_is_pruned(self):
        kv = KVStore()
        objects = ObjectStore()
        ckpt = CheckpointManager(kv, objects, keep=2)
        for i in range(5):
            kv.put("k", i)
            ckpt.checkpoint()
        assert len(objects.versions(ckpt.name)) == 2


# -- property: compaction preserves the LSN-union fold ------------------------


def _encode(op: dict) -> bytes:
    return json.dumps(op, sort_keys=True).encode("utf-8")


def _fold(entries):
    """Reference replay fold — mirrors FailoverManager._replay exactly."""
    entities: dict[str, object] = {}
    products: dict[str, dict] = {}
    for entry in sorted(entries, key=lambda e: e.lsn):
        op = json.loads(entry.payload.decode("utf-8"))
        kind = op["op"]
        if kind == "entity":
            entities[op["k"]] = op["v"]
        elif kind == "drop_entity":
            entities.pop(op["k"], None)
        elif kind == "product":
            products[op["k"]] = dict(op["v"])
        elif kind == "drop_product":
            products.pop(op["k"], None)
        elif kind == "stock":
            products.setdefault(op["k"], {})["stock"] = int(op["stock"])
    return json.dumps({"e": entities, "p": products}, sort_keys=True)


def _union(copies):
    merged = {}
    for copy in copies:
        for entry in copy:
            merged.setdefault(entry.lsn, entry)
    return [merged[lsn] for lsn in sorted(merged)]


replica_ops = st.lists(
    st.one_of(
        st.tuples(st.just("entity"), keys, values),
        st.tuples(st.just("drop_entity"), keys, st.none()),
        st.tuples(
            st.just("product"),
            keys,
            st.fixed_dictionaries(
                {"name": st.text(max_size=6), "stock": st.integers(0, 99)}
            ),
        ),
        st.tuples(st.just("stock"), keys, st.integers(0, 99)),
    ),
    min_size=1,
    max_size=50,
)


def _materialize(ops):
    """Primary log entries (LSNs 1..n) for the generated op stream."""
    entries = []
    for lsn, (kind, key, value) in enumerate(ops, start=1):
        if kind in ("entity", "product"):
            op = {"op": kind, "k": key, "v": value}
        elif kind == "stock":
            op = {"op": "stock", "k": key, "stock": value}
        else:
            op = {"op": kind, "k": key}
        entries.append(WalEntry(lsn=lsn, payload=_encode(op)))
    return entries


class TestCompactionPreservesUnion:
    @settings(max_examples=80, deadline=None)
    @given(
        ops=replica_ops,
        hole_seed=st.lists(st.booleans(), max_size=50),
        torn=st.integers(0, 10),
        data=st.data(),
    )
    def test_union_fold_identical(self, ops, hole_seed, torn, data):
        """Compacting any subset of copies never changes the union fold."""
        primary = _materialize(ops)
        # Replica copy: primary minus a hole pattern (dropped replication).
        holes = (hole_seed + [False] * len(primary))[: len(primary)]
        replica = [e for e, drop in zip(primary, holes) if not drop]
        # Torn tail on the primary: only its valid prefix survives.
        primary_prefix = primary[: max(0, len(primary) - torn)]
        copies = [primary_prefix, replica]
        baseline = _fold(_union(copies))
        # Compact every subset of copies; the fold must never move.
        for mask in range(1, 4):
            compacted = [
                compact_entries(copy) if (mask >> i) & 1 else copy
                for i, copy in enumerate(copies)
            ]
            assert _fold(_union(compacted)) == baseline
        # Compaction is idempotent and only ever shrinks.
        once = compact_entries(primary_prefix)
        assert compact_entries(once) == once
        assert len(once) <= len(primary_prefix)

    def test_superseded_stock_collapses(self):
        entries = _materialize(
            [("product", "p", {"name": "x", "stock": 9})]
            + [("stock", "p", i) for i in range(20)]
        )
        compacted = compact_entries(entries)
        # Last product op + last stock op survive, nothing else.
        assert len(compacted) == 2
        assert compacted[0].lsn == 1 and compacted[1].lsn == 21
        assert _fold(compacted) == _fold(entries)

    def test_product_newer_than_stock_stands_alone(self):
        entries = _materialize(
            [("stock", "p", 5), ("product", "p", {"name": "x", "stock": 3})]
        )
        compacted = compact_entries(entries)
        assert [e.lsn for e in compacted] == [2]

    def test_unknown_ops_kept_verbatim(self):
        alien = WalEntry(lsn=7, payload=_encode({"op": "future", "k": "z"}))
        entries = _materialize([("entity", "a", 1)]) + [alien]
        assert alien in compact_entries(entries)


# -- property: tier round trips are bitwise -----------------------------------


class TestTieredEngine:
    @settings(max_examples=40, deadline=None)
    @given(key=keys, value=values)
    def test_demote_promote_roundtrip_bitwise(self, key, value):
        engine = TieredStorageEngine(
            policy=LifecyclePolicy(hot_ttl_s=1.0, warm_ttl_s=2.0)
        )
        engine.put(key, value)
        canonical = json.dumps(value, sort_keys=True, separators=(",", ":"))
        engine.clock.advance(10.0)
        report = engine.maintain()
        assert report["demoted"] == 1
        assert engine.describe()["cold"] == 1
        promoted = engine.get(key)  # cold hit promotes transparently
        assert promoted == value
        assert (
            json.dumps(promoted, sort_keys=True, separators=(",", ":"))
            == canonical
        )
        assert engine.describe()["cold"] == 0

    def test_scan_merges_cold_without_promoting(self):
        engine = TieredStorageEngine(
            policy=LifecyclePolicy(hot_ttl_s=1.0, warm_ttl_s=2.0)
        )
        engine.put("a", {"v": 1})
        engine.clock.advance(10.0)
        engine.maintain()
        engine.put("b", {"v": 2})
        assert engine.scan("", "￿") == [("a", {"v": 1}), ("b", {"v": 2})]
        assert engine.describe()["cold"] == 1  # scan did not promote
        assert engine.keys() == ["a", "b"]

    def test_overwrite_and_delete_clear_cold_copies(self):
        engine = TieredStorageEngine(
            policy=LifecyclePolicy(hot_ttl_s=1.0, warm_ttl_s=2.0)
        )
        engine.put("a", 1)
        engine.put("b", 2)
        engine.clock.advance(10.0)
        engine.maintain()
        engine.put("a", 3)  # overwrite un-demotes
        engine.delete("b")
        assert engine.get("a") == 3
        with pytest.raises(KeyNotFoundError):
            engine.get("b")
        assert engine.describe()["cold"] == 0

    def test_recover_restores_all_tiers(self):
        engine = TieredStorageEngine(
            policy=LifecyclePolicy(
                hot_ttl_s=1.0, warm_ttl_s=2.0, checkpoint_interval_ops=4
            )
        )
        engine.put("cold-key", {"v": "cold"})
        engine.clock.advance(10.0)
        engine.maintain()  # demotes cold-key, checkpoints the WAL
        for i in range(6):
            engine.put(f"warm-{i}", {"v": i})
        engine.recover()  # crash-restart in place
        assert engine.get("cold-key") == {"v": "cold"}
        for i in range(6):
            assert engine.get(f"warm-{i}") == {"v": i}

    def test_hot_capacity_lru_eviction(self):
        engine = TieredStorageEngine(policy=LifecyclePolicy(hot_capacity=2))
        for i in range(4):
            engine.put(f"k{i}", i)
        assert engine.describe()["hot"] == 2
        assert engine.get("k0") == 0  # still warm — a cache miss, not a loss

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            LifecyclePolicy(hot_capacity=0).validate()
        with pytest.raises(ConfigurationError):
            LifecyclePolicy(hot_ttl_s=5.0, warm_ttl_s=1.0).validate()
        with pytest.raises(ConfigurationError):
            LifecyclePolicy(checkpoint_interval_ops=0).validate()


# -- the WAL truncation-floor bugfix ------------------------------------------


class TestTruncationFloor:
    def test_last_valid_lsn_survives_empty_body(self):
        wal = WriteAheadLog()
        for i in range(5):
            wal.append(f"op{i}".encode())
        wal.truncate_before(6)  # checkpoint covered everything
        assert wal.entry_count == 0
        assert wal.last_valid_lsn == 5  # not 0: prefix is in the snapshot
        assert wal.truncated_lsn == 5

    def test_append_after_torn_tail_with_truncated_prefix(self):
        """The satellite bugfix: torn-tail trim + truncated prefix must
        not restart LSN accounting at 0."""
        wal = WriteAheadLog()
        for i in range(5):
            wal.append(f"op{i}".encode())
        wal.truncate_before(5)  # log now starts at LSN 5
        wal.corrupt_tail(3)  # tear the only remaining entry
        assert wal.last_valid_lsn == 4  # floor holds with a torn body
        lsn = wal.append(b"after")
        assert lsn == 6  # next_lsn never regressed
        entries, last = wal.recover_prefix()
        assert [e.lsn for e in entries] == [6]
        assert last == 6

    def test_replay_return_value_is_floored(self):
        wal = WriteAheadLog()
        for i in range(3):
            wal.append(f"op{i}".encode())
        wal.truncate_before(4)
        gen = wal.replay()
        assert list(gen) == []
        # The generator's return value carries the high-water mark.
        wal2 = WriteAheadLog()
        for i in range(3):
            wal2.append(f"op{i}".encode())
        wal2.truncate_before(4)
        it = wal2.replay()
        try:
            while True:
                next(it)
        except StopIteration as stop:
            assert stop.value == 3

    def test_truncate_keeps_suffix_verbatim(self):
        wal = WriteAheadLog()
        for i in range(6):
            wal.append(f"op{i}".encode())
        wal.truncate_before(4)
        entries, last = wal.recover_prefix()
        assert [e.lsn for e in entries] == [4, 5, 6]
        assert [e.payload for e in entries] == [b"op3", b"op4", b"op5"]
        assert last == 6
        assert wal.truncated_lsn == 3


# -- object-store retention ---------------------------------------------------


class TestPruneVersions:
    def test_prune_keeps_newest_and_version_numbers(self):
        store = ObjectStore()
        for i in range(5):
            store.put("obj", f"v{i}".encode())
        assert store.prune_versions("obj", keep=2) == 3
        refs = store.versions("obj")
        assert [r.version for r in refs] == [4, 5]
        assert store.get("obj", version=4) == b"v3"
        with pytest.raises(KeyNotFoundError):
            store.get("obj", version=1)

    def test_put_after_prune_does_not_collide(self):
        store = ObjectStore()
        for i in range(3):
            store.put("obj", f"v{i}".encode())
        store.prune_versions("obj", keep=1)
        ref = store.put("obj", b"new")
        assert ref.version == 4  # continues numbering, no reuse
        assert store.get("obj", version=4) == b"new"

    def test_pruned_blobs_are_garbage_collected(self):
        store = ObjectStore()
        store.put("obj", b"unique-payload-one")
        store.put("obj", b"unique-payload-two")
        before = store.physical_bytes()
        store.prune_versions("obj", keep=1)
        assert store.physical_bytes() < before

    def test_prune_validation(self):
        store = ObjectStore()
        with pytest.raises(KeyNotFoundError):
            store.prune_versions("missing", keep=1)
        store.put("obj", b"x")
        with pytest.raises(StorageError):
            store.prune_versions("obj", keep=0)
        assert store.prune_versions("obj", keep=5) == 0

"""Integration: military exercise across twin sync, fusion, and continuous
queries.

The ground truth drives GPS-noised observations; an outlier filter cleans
them; the command center tracks units through the coherency-bounded mirror
and runs a moving range query ("all units near the advancing recon team");
a virtual air-raid's consequences propagate and the mirror reflects them.
"""

import pytest

from repro.fusion import Observation, OutlierFilter
from repro.query import (
    ContinuousQueryEngine,
    GridStrategy,
    MovingObject,
    MovingRangeQuery,
)
from repro.spatial import BBox, Point, Velocity
from repro.workloads import MilitaryConfig, MilitaryExercise
from repro.world import MetaverseWorld

AREA = BBox(0, 0, 2000, 2000)


def build(seed=3, n_units=50, epsilon=10.0):
    world = MetaverseWorld(position_epsilon=epsilon)
    exercise = MilitaryExercise(
        world, MilitaryConfig(physical_area=AREA, n_units=n_units), seed=seed
    )
    return world, exercise


class TestCommandPicture:
    def test_mirror_tracks_all_units_within_bound(self):
        world, exercise = build()
        for _ in range(60):
            exercise.tick(1.0)
        for unit_id in world.physical.entities:
            assert world.staleness(unit_id) <= 10.0

    def test_sensed_stream_cleaning_rejects_glitches(self):
        world, exercise = build(n_units=10)
        exercise.tick(1.0)
        outliers = OutlierFilter(window=10, z_max=4.0)
        unit_id = next(iter(world.physical.entities))
        accepted = 0
        for t in range(30):
            exercise.tick(1.0)
            position = exercise.noisy_position(unit_id)
            observation = Observation(unit_id, "x", position.x, "gps", float(t))
            accepted += outliers.accept(observation)
        # Inject a glitch far outside the noise envelope.
        glitch = Observation(unit_id, "x", 1e7, "gps", 99.0)
        assert not outliers.accept(glitch)
        assert accepted >= 28  # honest readings pass

    def test_moving_query_over_mirrored_units(self):
        """Track mirrored units around a moving recon anchor."""
        world, exercise = build(n_units=40, epsilon=5.0)
        exercise.tick(1.0)
        engine = ContinuousQueryEngine(strategy=GridStrategy(cell_size=100))
        for entity_id, mirrored in world.virtual.mirror.items():
            engine.add_object(
                MovingObject(entity_id, mirrored.position, Velocity(0, 0))
            )
        engine.add_query(
            MovingRangeQuery("recon", Point(200, 1000), Velocity(50, 0),
                             half_extent=300)
        )
        coverage = set()
        for _ in range(30):
            results = engine.tick(1.0)
            coverage |= results["recon"].matches
        # The sweeping query should encounter a good share of the force.
        assert len(coverage) >= 10


class TestConsequences:
    def test_airstrike_consequences_reach_mirror(self):
        world, exercise = build(n_units=30)
        exercise.tick(1.0)
        before = exercise.active_units()
        exercise.order_airstrike(BBox(0, 0, 2000, 1000))  # south half
        after = exercise.active_units()
        assert after < before
        # Down units freeze: their mirror stops changing, survivors keep moving.
        down = [
            uid for uid, e in world.physical.entities.items()
            if e.attributes["status"] == "down"
        ]
        frozen_positions = {
            uid: world.physical.entities[uid].position for uid in down
        }
        for _ in range(20):
            exercise.tick(1.0)
        for uid in down:
            assert world.physical.entities[uid].position == frozen_positions[uid]
            assert world.staleness(uid) <= 10.0

    def test_event_bus_audit_trail(self):
        world, exercise = build(n_units=10)
        exercise.tick(1.0)
        exercise.order_airstrike(BBox(0, 0, 2000, 2000))
        strikes = world.bus.events_on("command.airstrike")
        perishes = world.bus.events_on("ground.perish")
        assert len(strikes) == 1
        assert len(perishes) == 10
        assert {e.attributes["unit"] for e in perishes} == exercise.casualties

    @pytest.mark.parametrize("epsilon,expected_fewer", [(25.0, True)])
    def test_looser_bound_less_sync_traffic(self, epsilon, expected_fewer):
        _, tight_exercise = build(epsilon=5.0, seed=4)
        _, loose_exercise = build(epsilon=epsilon, seed=4)
        tight_updates = sum(tight_exercise.tick(1.0) for _ in range(60))
        loose_updates = sum(loose_exercise.tick(1.0) for _ in range(60))
        assert (loose_updates < tight_updates) is expected_fewer

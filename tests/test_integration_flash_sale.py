"""Integration: flash sale end-to-end across platform, pub/sub, and ledger.

Exercises the marketplace scenario through every layer at once: the
workload generator drives MVCC purchases on the platform, sale events flow
through the broker to subscribers, every successful purchase is recorded in
the verifiable ledger, and an auditor checkpoint confirms the history.
"""

from repro.core import Space
from repro.ledger import Auditor, LedgerDB
from repro.net import AttributePredicate, Publication, Subscription
from repro.platform import MetaversePlatform
from repro.workloads import FlashSaleConfig, MarketplaceWorkload


def run_sale(seed=1):
    config = FlashSaleConfig(
        n_products=20, n_shoppers=100, initial_stock=10,
        burst_rate=200.0, burst_start=0.0, burst_end=5.0, zipf_skew=1.0,
    )
    workload = MarketplaceWorkload(config, seed=seed)
    platform = MetaversePlatform(n_executors=4)
    platform.load_catalog(workload.catalog_records())
    ledger = LedgerDB(block_size=8)
    auditor = Auditor(ledger)

    notifications = []
    platform.broker.subscribe(
        Subscription(
            subscriber="promo-board",
            topic_pattern="sale.*",
            predicates=(AttributePredicate("space", "==", "physical"),),
            callback=notifications.append,
        )
    )

    requests = workload.requests_between(0.0, 5.0)
    outcomes = platform.process_purchases(requests)
    for outcome in outcomes:
        if outcome.success:
            ledger.put(
                f"sale/{outcome.request.shopper_id}/{outcome.request.product_id}",
                {"space": outcome.request.space.value},
                timestamp=outcome.request.timestamp,
            )
            platform.broker.publish(
                Publication(
                    topic="sale.completed",
                    payload={
                        "product": outcome.request.product_id,
                        "space": outcome.request.space.value,
                    },
                    timestamp=outcome.request.timestamp,
                )
            )
    ledger.seal_block()
    return platform, ledger, auditor, outcomes, notifications, workload


class TestFlashSaleEndToEnd:
    def test_inventory_conservation(self):
        """Units sold + units left == initial stock for every product."""
        platform, _, _, outcomes, _, workload = run_sale()
        sold_by_product = {}
        for outcome in outcomes:
            if outcome.success:
                pid = outcome.request.product_id
                sold_by_product[pid] = sold_by_product.get(pid, 0) + 1
        for i in range(20):
            pid = workload.product_id(i)
            assert sold_by_product.get(pid, 0) + platform.get_stock(pid) == 10

    def test_no_oversell(self):
        platform, _, _, outcomes, _, workload = run_sale()
        for i in range(20):
            assert platform.get_stock(workload.product_id(i)) >= 0

    def test_ledger_records_every_sale(self):
        _, ledger, _, outcomes, _, _ = run_sale()
        sold = sum(o.success for o in outcomes)
        assert len(ledger.entries) == sold
        assert ledger.verify_chain()

    def test_ledger_receipts_verify(self):
        _, ledger, _, _, _, _ = run_sale()
        for index in range(0, len(ledger.entries), 7):
            assert LedgerDB.verify_receipt(ledger.receipt(index))

    def test_auditor_accepts_honest_history(self):
        _, ledger, auditor, _, _, _ = run_sale()
        assert auditor.checkpoint()
        ledger.put("post-audit-sale", {"space": "virtual"})
        assert auditor.checkpoint()
        assert auditor.failures == 0

    def test_subscribers_see_only_matching_space(self):
        _, _, _, outcomes, notifications, _ = run_sale()
        physical_sales = sum(
            o.success for o in outcomes if o.request.space is Space.PHYSICAL
        )
        assert len(notifications) == physical_sales
        assert all(n.payload["space"] == "physical" for n in notifications)

    def test_deterministic_given_seed(self):
        _, _, _, outcomes_a, _, _ = run_sale(seed=9)
        _, _, _, outcomes_b, _, _ = run_sale(seed=9)
        assert [o.success for o in outcomes_a] == [o.success for o in outcomes_b]

"""Tests for the simulated network."""

import pytest

from repro.core import EventScheduler, NetworkError, PartitionedError
from repro.net import Link, SimulatedNetwork


def make_net(**kwargs):
    sched = EventScheduler()
    return sched, SimulatedNetwork(sched, **kwargs)


class TestTopology:
    def test_add_and_lookup_node(self):
        _, net = make_net()
        net.add_node("a")
        assert net.node("a").name == "a"

    def test_duplicate_node_rejected(self):
        from repro.core import ConfigurationError

        _, net = make_net()
        net.add_node("a")
        with pytest.raises(ConfigurationError):
            net.add_node("a")

    def test_unknown_node_raises(self):
        _, net = make_net()
        with pytest.raises(NetworkError):
            net.node("ghost")


class TestDelivery:
    def test_message_delivered_after_latency(self):
        sched, net = make_net(default_link=Link(latency_s=0.5, bandwidth_bps=1e12))
        net.add_node("a")
        b = net.add_node("b")
        got = []
        b.on("hello", lambda m: got.append(m.payload))
        net.send("a", "b", "hello", {"v": 1}, size_bytes=10)
        sched.run_until(0.4)
        assert got == []
        sched.run_until(0.6)
        assert got == [{"v": 1}]

    def test_bandwidth_adds_serialization_delay(self):
        # 1 MB over 8 Mbps = 1 second of transfer on top of zero latency.
        sched, net = make_net(default_link=Link(latency_s=0.0, bandwidth_bps=8e6))
        net.add_node("a")
        b = net.add_node("b")
        got = []
        b.on("blob", lambda m: got.append(sched.clock.now))
        net.send("a", "b", "blob", None, size_bytes=1_000_000)
        sched.run_all()
        assert got[0] == pytest.approx(1.0)

    def test_wildcard_handler(self):
        sched, net = make_net()
        net.add_node("a")
        b = net.add_node("b")
        got = []
        b.on("*", lambda m: got.append(m.topic))
        net.send("a", "b", "anything", None)
        sched.run_all()
        assert got == ["anything"]

    def test_per_link_override(self):
        sched, net = make_net(default_link=Link(latency_s=10.0))
        net.add_node("a")
        b = net.add_node("b")
        net.set_link("a", "b", Link(latency_s=0.1, bandwidth_bps=1e12))
        got = []
        b.on("x", lambda m: got.append(sched.clock.now))
        net.send("a", "b", "x", None, size_bytes=1)
        sched.run_until(0.2)
        assert len(got) == 1

    def test_send_to_unknown_destination(self):
        _, net = make_net()
        net.add_node("a")
        with pytest.raises(NetworkError):
            net.send("a", "ghost", "x", None)

    def test_metrics_accumulate(self):
        sched, net = make_net()
        net.add_node("a")
        net.add_node("b")
        net.send("a", "b", "x", None, size_bytes=100)
        sched.run_all()
        assert net.metrics.counter("net.messages_sent").value == 1
        assert net.metrics.counter("net.bytes_sent").value == 100
        assert net.metrics.counter("net.messages_delivered").value == 1


class TestPartitions:
    def test_partition_blocks_send(self):
        _, net = make_net()
        net.add_node("a")
        net.add_node("b")
        net.partition("a", "b")
        with pytest.raises(PartitionedError):
            net.send("a", "b", "x", None)

    def test_heal_restores(self):
        sched, net = make_net()
        net.add_node("a")
        b = net.add_node("b")
        got = []
        b.on("x", lambda m: got.append(True))
        net.partition("a", "b")
        net.heal("a", "b")
        net.send("a", "b", "x", None)
        sched.run_all()
        assert got == [True]

    def test_partition_is_symmetric(self):
        _, net = make_net()
        net.add_node("a")
        net.add_node("b")
        net.partition("a", "b")
        with pytest.raises(PartitionedError):
            net.send("b", "a", "x", None)

    def test_mid_flight_partition_drops(self):
        sched, net = make_net(default_link=Link(latency_s=1.0))
        net.add_node("a")
        b = net.add_node("b")
        got = []
        b.on("x", lambda m: got.append(True))
        net.send("a", "b", "x", None)
        net.partition("a", "b")
        sched.run_all()
        assert got == []


class TestGroupPartitions:
    """Region-granularity splits: ``partition_group`` + ``heal_all``."""

    def make_five(self):
        sched, net = make_net(default_link=Link(latency_s=0.01))
        for name in ("a", "b", "c", "d", "e"):
            net.add_node(name)
        return sched, net

    def test_cross_group_pairs_are_severed(self):
        _, net = self.make_five()
        net.partition_group([["a", "b"], ["c", "d"], ["e"]])
        for src, dst in (("a", "c"), ("b", "d"), ("a", "e"), ("d", "e")):
            assert net.is_partitioned(src, dst)
            with pytest.raises(PartitionedError):
                net.send(src, dst, "x", None)

    def test_intra_group_pairs_stay_connected(self):
        sched, net = self.make_five()
        net.partition_group([["a", "b"], ["c", "d"], ["e"]])
        got = []
        net.node("b").on("x", lambda m: got.append("ab"))
        net.node("d").on("x", lambda m: got.append("cd"))
        net.send("a", "b", "x", None)
        net.send("c", "d", "x", None)
        sched.run_all()
        assert sorted(got) == ["ab", "cd"]

    def test_single_group_is_a_no_op(self):
        _, net = self.make_five()
        net.partition_group([["a", "b", "c", "d", "e"]])
        assert not any(
            net.is_partitioned(x, y)
            for x in "abcde" for y in "abcde" if x != y
        )

    def test_empty_group_rejected(self):
        from repro.core import ConfigurationError

        _, net = self.make_five()
        with pytest.raises(ConfigurationError):
            net.partition_group([["a"], []])

    def test_duplicate_member_rejected(self):
        from repro.core import ConfigurationError

        _, net = self.make_five()
        with pytest.raises(ConfigurationError):
            net.partition_group([["a", "b"], ["b", "c"]])

    def test_heal_all_restores_group_split(self):
        sched, net = self.make_five()
        net.partition_group([["a"], ["b", "c", "d", "e"]])
        net.heal_all()
        got = []
        net.node("b").on("x", lambda m: got.append(True))
        net.send("a", "b", "x", None)
        sched.run_all()
        assert got == [True]

    def test_heal_all_also_clears_pairwise_partitions(self):
        _, net = self.make_five()
        net.partition("a", "b")
        net.partition_group([["a", "b"], ["c", "d", "e"]])
        net.heal_all()
        assert not net.is_partitioned("a", "b")
        assert not net.is_partitioned("a", "c")


class TestLoss:
    def test_lossy_link_drops_some(self):
        sched, net = make_net(
            default_link=Link(latency_s=0.0, bandwidth_bps=1e12, loss_rate=0.5),
            seed=42,
        )
        net.add_node("a")
        b = net.add_node("b")
        got = []
        b.on("x", lambda m: got.append(True))
        for _ in range(200):
            net.send("a", "b", "x", None, size_bytes=1)
        sched.run_all()
        assert 50 < len(got) < 150  # roughly half with seed 42

    def test_loss_is_deterministic_per_seed(self):
        counts = []
        for _ in range(2):
            sched, net = make_net(
                default_link=Link(loss_rate=0.3), seed=7
            )
            net.add_node("a")
            b = net.add_node("b")
            got = []
            b.on("x", lambda m: got.append(True))
            for _ in range(100):
                net.send("a", "b", "x", None, size_bytes=1)
            sched.run_all()
            counts.append(len(got))
        assert counts[0] == counts[1]

"""Tests for windows and the parallel stream pipeline."""

import pytest

from repro.core import ConfigurationError, DataRecord, QueryError
from repro.query import SlidingWindow, StreamPipeline, TumblingWindow


def rec(key, t, v):
    return DataRecord(key=key, payload={"v": v}, timestamp=t)


class TestTumblingWindow:
    def test_window_closes_on_advance(self):
        win = TumblingWindow(size=10.0, field="v", agg="sum")
        assert win.add(rec("k", 1.0, 5.0)) == []
        assert win.add(rec("k", 5.0, 5.0)) == []
        results = win.add(rec("k", 12.0, 1.0))
        assert len(results) == 1
        assert results[0].value == 10.0
        assert results[0].window_start == 0.0
        assert results[0].window_end == 10.0

    def test_flush_emits_open_windows(self):
        win = TumblingWindow(size=10.0, field="v", agg="count")
        win.add(rec("k", 1.0, 1.0))
        win.add(rec("j", 2.0, 1.0))
        results = win.flush()
        assert len(results) == 2
        assert all(r.value == 1.0 for r in results)

    def test_keys_are_independent(self):
        win = TumblingWindow(size=10.0, field="v", agg="sum")
        win.add(rec("a", 1.0, 1.0))
        win.add(rec("b", 1.0, 100.0))
        results = {r.key: r.value for r in win.flush()}
        assert results == {"a": 1.0, "b": 100.0}

    @pytest.mark.parametrize(
        "agg,expected", [("sum", 6.0), ("avg", 2.0), ("min", 1.0), ("max", 3.0), ("count", 3.0)]
    )
    def test_aggregates(self, agg, expected):
        win = TumblingWindow(size=10.0, field="v", agg=agg)
        for i, v in enumerate([1.0, 2.0, 3.0]):
            win.add(rec("k", float(i), v))
        assert win.flush()[0].value == expected

    def test_gap_emits_only_populated_windows(self):
        win = TumblingWindow(size=10.0, field="v", agg="sum")
        win.add(rec("k", 1.0, 1.0))
        results = win.add(rec("k", 35.0, 2.0))  # skips windows 1 and 2
        assert len(results) == 1  # only window 0 had data

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TumblingWindow(size=0, field="v")
        with pytest.raises(QueryError):
            TumblingWindow(size=1, field="v", agg="median")

    def test_missing_field_ignored(self):
        win = TumblingWindow(size=10.0, field="v")
        record = DataRecord(key="k", payload={"other": 1}, timestamp=0.0)
        assert win.add(record) == []
        assert win.flush() == []


class TestSlidingWindow:
    def test_overlapping_windows(self):
        win = SlidingWindow(size=10.0, slide=5.0, field="v", agg="sum")
        win.add(rec("k", 2.0, 1.0))   # pane 0
        win.add(rec("k", 7.0, 2.0))   # pane 1
        win.add(rec("k", 12.0, 4.0))  # pane 2
        results = {
            (r.window_start, r.window_end): r.value for r in win.results()
        }
        assert results[(0.0, 10.0)] == 3.0
        assert results[(5.0, 15.0)] == 6.0

    def test_avg(self):
        win = SlidingWindow(size=10.0, slide=5.0, field="v", agg="avg")
        win.add(rec("k", 1.0, 10.0))
        win.add(rec("k", 6.0, 20.0))
        results = {(r.window_start, r.window_end): r.value for r in win.results()}
        assert results[(0.0, 10.0)] == 15.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SlidingWindow(size=10, slide=0, field="v")
        with pytest.raises(ConfigurationError):
            SlidingWindow(size=10, slide=3, field="v")  # not a multiple
        with pytest.raises(QueryError):
            SlidingWindow(size=10, slide=5, field="v", agg="max")


class TestStreamPipeline:
    def records(self, n, keys=100):
        return [rec(f"key-{i % keys}", float(i), 1.0) for i in range(n)]

    def test_parallelism_validated(self):
        with pytest.raises(ConfigurationError):
            StreamPipeline(parallelism=0)

    def test_all_records_processed(self):
        seen = []
        pipe = StreamPipeline(parallelism=4, handler=seen.append)
        pipe.process(self.records(100))
        assert len(seen) == 100
        assert sum(r.records for r in pipe.replicas) == 100

    def test_routing_is_deterministic_by_key(self):
        pipe = StreamPipeline(parallelism=4)
        route_a = pipe._route(rec("alpha", 0, 0))
        assert all(pipe._route(rec("alpha", t, 0)) == route_a for t in range(5))

    def test_parallel_speedup(self):
        """E18 shape: more replicas -> smaller makespan, near-linear."""
        work = lambda r: 1e-3
        single = StreamPipeline(parallelism=1, work_fn=work)
        quad = StreamPipeline(parallelism=4, work_fn=work)
        records = self.records(4000, keys=1000)
        t1 = single.process(list(records))
        t4 = quad.process(list(records))
        assert t1 / t4 > 3.0  # near-linear scaling with many keys

    def test_skew_limits_scaling(self):
        work = lambda r: 1e-3
        skewed = [rec("hot", float(i), 1.0) for i in range(1000)]
        pipe = StreamPipeline(parallelism=8, work_fn=work)
        makespan = pipe.process(skewed)
        # One key -> one replica: no speedup.
        assert makespan == pytest.approx(1.0, rel=0.01)
        assert pipe.imbalance() > 4.0

    def test_throughput(self):
        pipe = StreamPipeline(parallelism=2, work_fn=lambda r: 1e-3)
        throughput = pipe.throughput(self.records(1000))
        assert throughput > 1000 / 1.0  # better than serial
